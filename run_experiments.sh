#!/bin/sh
# Run every reconstructed table/figure experiment (quick mode by default;
# pass --full for paper-scale settings), then sweep the full problem zoo.
set -e
for bin in t1_accuracy t2_eigen t3_arch t4_ablation t5_solvers t6_hybrid t7_inverse \
           f1_convergence f2_slices f3_collocation f4_norm_drift f5_scaling f6_tdse2d; do
  echo "=== $bin ==="
  ./target/release/$bin "$@"
  echo
done

# The zoo sweep enumerates from the registry itself (sweep
# --list-problems), so newly registered families join the run without
# touching this script.
./target/release/sweep --list-problems | while read -r key; do
  echo "=== sweep: $key ==="
  ./target/release/sweep --problem "$key" "$@"
  echo
done
