#!/bin/sh
# Run every reconstructed table/figure experiment (quick mode by default;
# pass --full for paper-scale settings).
set -e
for bin in t1_accuracy t2_eigen t3_arch t4_ablation t5_solvers t6_hybrid t7_inverse \
           f1_convergence f2_slices f3_collocation f4_norm_drift f5_scaling f6_tdse2d; do
  echo "=== $bin ==="
  ./target/release/$bin "$@"
  echo
done
