//! End-to-end request tracing through the serve plane: every request —
//! success, shed, and error — lands in the `qpinn-access-v1` access log
//! exactly once with a latency decomposition that sums below the
//! end-to-end total; trace ids round-trip through the `x-qpinn-trace`
//! header; `/v1/traces` exposes the ring; and with tracing disabled the
//! response bytes are bit-identical and header-free.

use qpinn::core::model::{FieldNet, FieldNetConfig};
use qpinn::core::report::Json;
use qpinn::nn::ParamSet;
use qpinn::serve::{BatchConfig, ServeConfig, ServeServer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// The access ring and trace switch are process-global (configured by
/// `ServeServer::start`), so the servers in this file must not overlap.
static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-serve-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP request with optional extra headers; returns (header block,
/// raw body text) so bodies can be compared byte-for-byte.
fn http_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let extras: String = extra_headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    match body {
        Some(b) => write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\n{extras}Content-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        )
        .unwrap(),
        None => write!(s, "{method} {path} HTTP/1.1\r\nHost: t\r\n{extras}\r\n").unwrap(),
    }
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Case-insensitive response-header lookup inside a raw header block.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim()
            .eq_ignore_ascii_case(name)
            .then(|| v.trim().to_string())
    })
}

/// Publish a deterministic untrained model directly through the
/// registry, so tracing tests don't pay for an HTTP training job.
fn publish_model(server: &ServeServer, id: &str) {
    let spec = qpinn::serve::ModelSpec {
        name: "tdse".into(),
        seed: 3,
        problem: String::new(),
        net: FieldNetConfig::standard_wave(12.0, 1.0, 8, 1),
    };
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let _ = FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
    server
        .registry()
        .publish(id, &spec, &params, Default::default(), 1, 0.0)
        .unwrap();
}

const EVAL_BODY: &str = r#"{"model":"traced","points":[[0.5,0.1],[-1.0,0.2],[2.0,0.0]]}"#;

/// Tentpole acceptance: 100% of requests (success, client error,
/// unknown model) appear exactly once in the access log, with a
/// decomposition that sums to ≤ the end-to-end total, and the ring
/// behind `/v1/traces` mirrors the same records.
#[test]
fn every_request_lands_in_the_access_log_exactly_once() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("coverage");
    let log_path = dir.join("access.jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = ServeConfig::new(dir.join("models"));
    cfg.trace.access_log = Some(log_path.clone());
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    publish_model(&server, "traced");

    fn collect(head: &str, trace_ids: &mut Vec<String>) {
        let id = header_value(head, "x-qpinn-trace")
            .unwrap_or_else(|| panic!("response missing x-qpinn-trace:\n{head}"));
        assert!(
            id.len() == 16 && id.chars().all(|c| c.is_ascii_hexdigit()),
            "malformed trace id {id:?}"
        );
        trace_ids.push(id);
    }
    let mut trace_ids: Vec<String> = Vec::new();

    // A mixed workload: health check, successful evals, a malformed
    // body (400), and an unknown model (404).
    let (head, _) = http_raw(addr, "GET", "/healthz", None, &[]);
    assert!(head.contains("200 OK"), "{head}");
    collect(&head, &mut trace_ids);
    for _ in 0..6 {
        let (head, body) = http_raw(addr, "POST", "/v1/eval", Some(EVAL_BODY), &[]);
        assert!(head.contains("200 OK"), "{head} {body}");
        collect(&head, &mut trace_ids);
    }
    let (head, _) = http_raw(addr, "POST", "/v1/eval", Some("not json"), &[]);
    assert!(head.contains("400"), "{head}");
    collect(&head, &mut trace_ids);
    let (head, _) = http_raw(addr, "POST", "/v1/eval", Some(r#"{"model":"ghost","points":[[0,0]]}"#), &[]);
    assert!(head.contains("404"), "{head}");
    collect(&head, &mut trace_ids);

    // Inbound trace ids are adopted, not replaced.
    let (head, _) = http_raw(
        addr,
        "POST",
        "/v1/eval",
        Some(EVAL_BODY),
        &[("x-qpinn-trace", "deadbeefcafe1234")],
    );
    assert_eq!(
        header_value(&head, "x-qpinn-trace").as_deref(),
        Some("deadbeefcafe1234"),
        "inbound trace id was not adopted:\n{head}"
    );
    collect(&head, &mut trace_ids);

    // The ring endpoint mirrors the same records (the in-flight GET
    // itself is only logged after its response is written).
    let (head, body) = http_raw(addr, "GET", "/v1/traces?n=100", None, &[]);
    assert!(head.contains("200 OK"), "{head}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("qpinn-traces-v1"));
    assert_eq!(doc.get("enabled").unwrap(), &Json::Bool(true));
    let Json::Arr(ring) = doc.get("traces").unwrap() else {
        panic!("traces is not an array: {body}")
    };
    assert_eq!(
        doc.get("count").unwrap().as_num(),
        Some(ring.len() as f64)
    );
    let ring_ids: Vec<&str> = ring
        .iter()
        .map(|r| r.get("trace").unwrap().as_str().unwrap())
        .collect();
    for id in &trace_ids {
        assert_eq!(
            ring_ids.iter().filter(|r| *r == id).count(),
            1,
            "trace {id} not exactly-once in /v1/traces: {ring_ids:?}"
        );
    }
    collect(&head, &mut trace_ids);

    // Stop flushes the JSONL access log; coverage check on disk.
    server.stop();
    let text = std::fs::read_to_string(&log_path).unwrap();
    let records: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(
        records.len(),
        trace_ids.len(),
        "access log line count != requests made:\n{text}"
    );
    let mut logged: Vec<&str> = records
        .iter()
        .map(|r| r.get("trace").unwrap().as_str().unwrap())
        .collect();
    let mut expected: Vec<&str> = trace_ids.iter().map(String::as_str).collect();
    logged.sort_unstable();
    expected.sort_unstable();
    assert_eq!(logged, expected, "access log ids != client-observed ids");

    // Schema + decomposition invariants per record.
    let num = |r: &Json, k: &str| r.get(k).and_then(Json::as_num).unwrap() as u64;
    let mut served_evals = 0;
    for r in &records {
        assert_eq!(r.get("v").unwrap().as_str(), Some("qpinn-access-v1"));
        let status = num(r, "status");
        let total = num(r, "total_ns");
        assert!(total > 0, "zero total_ns: {}", r.to_string());
        let decomposed = num(r, "queue_ns") + num(r, "batch_ns") + num(r, "compute_ns");
        assert!(
            decomposed <= total,
            "stage sum {decomposed} exceeds total {total}: {}",
            r.to_string()
        );
        if r.get("route").unwrap().as_str() == Some("/v1/eval") && status == 200 {
            served_evals += 1;
            assert_eq!(r.get("model").unwrap().as_str(), Some("traced@1"));
            assert!(num(r, "compute_ns") > 0, "no compute time: {}", r.to_string());
            assert!(num(r, "batch") >= 1);
            assert_eq!(num(r, "points"), 3);
        }
    }
    assert_eq!(served_evals, 7, "expected 7 successful eval records");

    // CI's live-capture SLO gate sets QPINN_KEEP_ACCESS_LOG to keep this
    // test's real access log around for `qpinn-obs slo` after the test
    // process (and its temp dir) are gone.
    if let Ok(keep) = std::env::var("QPINN_KEEP_ACCESS_LOG") {
        if !keep.is_empty() {
            std::fs::copy(&log_path, &keep).expect("QPINN_KEEP_ACCESS_LOG copy failed");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /v1/traces?route=` filters on the exact access-record route key,
/// composing with `?n=K`; an unmatched route yields an empty (not
/// erroneous) trace list.
#[test]
fn traces_route_filter_returns_only_matching_records() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("route-filter");
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(dir.join("models"))).unwrap();
    let addr = server.local_addr();
    publish_model(&server, "traced");

    for _ in 0..3 {
        let (head, _) = http_raw(addr, "POST", "/v1/eval", Some(EVAL_BODY), &[]);
        assert!(head.contains("200 OK"), "{head}");
    }
    let (head, _) = http_raw(addr, "GET", "/healthz", None, &[]);
    assert!(head.contains("200 OK"), "{head}");

    let traces = |query: &str| -> Vec<Json> {
        let (head, body) = http_raw(addr, "GET", &format!("/v1/traces{query}"), None, &[]);
        assert!(head.contains("200 OK"), "{head}");
        match Json::parse(&body).unwrap().get("traces") {
            Some(Json::Arr(v)) => v.clone(),
            other => panic!("traces is not an array: {other:?}"),
        }
    };

    let evals = traces("?route=/v1/eval");
    assert_eq!(evals.len(), 3, "expected exactly the 3 eval records");
    assert!(evals
        .iter()
        .all(|r| r.get("route").unwrap().as_str() == Some("/v1/eval")));

    // n=K composes: the last K *matching* records come back.
    assert_eq!(traces("?route=/v1/eval&n=2").len(), 2);
    assert_eq!(traces("?n=2&route=/v1/eval").len(), 2);

    let health = traces("?route=/healthz");
    assert_eq!(health.len(), 1);
    assert_eq!(
        health[0].get("route").unwrap().as_str(),
        Some("/healthz")
    );

    // Exact match only — no prefix matching, and unknown routes are empty.
    assert!(traces("?route=/v1").is_empty());
    assert!(traces("?route=/v1/evict").is_empty());

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The access ring under concurrent writers at widths 1 and 4: after a
/// wraparound-forcing burst, the ring holds exactly its capacity of
/// records, and the JSONL log has every exchanged record exactly once —
/// no loss, no duplication, no torn lines.
#[test]
fn access_ring_is_exactly_once_under_concurrent_writers() {
    use qpinn::telemetry::{access, AccessRecord};
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("ring-writers");
    std::fs::create_dir_all(&dir).unwrap();

    for writers in [1usize, 4] {
        let cap = 8; // far below the record count, forcing wraparound
        let per_writer = 200usize;
        access::configure(cap);
        let log_path = dir.join(format!("ring-{writers}.jsonl"));
        access::log_to(&log_path).unwrap();

        std::thread::scope(|scope| {
            for w in 0..writers {
                scope.spawn(move || {
                    for i in 0..per_writer {
                        access::record(AccessRecord {
                            trace: format!("{w:08x}{i:08x}"),
                            status: 200,
                            route: "/v1/eval".into(),
                            total_ns: 1,
                            ..AccessRecord::default()
                        });
                    }
                });
            }
        });
        access::flush();

        // Ring: wraparound leaves exactly `cap` records, all distinct.
        let ring = access::last(10_000);
        assert_eq!(ring.len(), cap, "ring not at capacity (writers={writers})");
        let mut ring_ids: Vec<&str> = ring.iter().map(|r| r.trace.as_str()).collect();
        ring_ids.sort_unstable();
        ring_ids.dedup();
        assert_eq!(ring_ids.len(), cap, "duplicate records in ring (writers={writers})");

        // Log: every record exactly once, each line intact JSON.
        let text = std::fs::read_to_string(&log_path).unwrap();
        let mut logged: Vec<String> = text
            .lines()
            .map(|l| {
                Json::parse(l)
                    .unwrap_or_else(|e| panic!("torn log line (writers={writers}): {e}: {l}"))
                    .get("trace")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            logged.len(),
            writers * per_writer,
            "log line count (writers={writers})"
        );
        logged.sort_unstable();
        logged.dedup();
        assert_eq!(
            logged.len(),
            writers * per_writer,
            "duplicated log records (writers={writers})"
        );
    }

    access::disable();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sheds are first-class traced requests: with a zero-slot queue the
/// 429 carries both `Retry-After` and a trace id, and the access record
/// names the shed reason.
#[test]
fn shed_requests_are_traced_with_their_reason() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("shed");
    let mut cfg = ServeConfig::new(dir.join("models"));
    cfg.batch = BatchConfig {
        queue_cap: 0,
        ..BatchConfig::default()
    };
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    publish_model(&server, "traced");

    let (head, _) = http_raw(addr, "POST", "/v1/eval", Some(EVAL_BODY), &[]);
    assert!(head.contains("429"), "{head}");
    assert!(head.contains("Retry-After:"), "missing Retry-After:\n{head}");
    let id = header_value(&head, "x-qpinn-trace").expect("shed response must carry a trace id");

    let (_, body) = http_raw(addr, "GET", "/v1/traces?n=10", None, &[]);
    let doc = Json::parse(&body).unwrap();
    let Json::Arr(ring) = doc.get("traces").unwrap() else { panic!("{body}") };
    let rec = ring
        .iter()
        .find(|r| r.get("trace").unwrap().as_str() == Some(id.as_str()))
        .unwrap_or_else(|| panic!("shed trace {id} not in ring: {body}"));
    assert_eq!(rec.get("status").unwrap().as_num(), Some(429.0));
    assert_eq!(rec.get("shed").unwrap().as_str(), Some("queue_full"));
    assert_eq!(rec.get("route").unwrap().as_str(), Some("/v1/eval"));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dormant-path contract: with `trace.ring = 0` responses carry no
/// trace header, `/v1/traces` reports disabled, and eval bodies are
/// byte-identical to a traced server's — tracing never perturbs results.
#[test]
fn tracing_off_is_header_free_and_bit_identical() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Reference body from a traced server.
    let dir_on = tmp_dir("bits-on");
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(dir_on.join("models"))).unwrap();
    publish_model(&server, "traced");
    let (head_on, body_on) = http_raw(server.local_addr(), "POST", "/v1/eval", Some(EVAL_BODY), &[]);
    assert!(head_on.contains("200 OK"), "{head_on}");
    assert!(header_value(&head_on, "x-qpinn-trace").is_some());
    server.stop();

    // Same model, tracing disabled.
    let dir_off = tmp_dir("bits-off");
    let mut cfg = ServeConfig::new(dir_off.join("models"));
    cfg.trace.ring = 0;
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    publish_model(&server, "traced");
    let addr = server.local_addr();
    let (head_off, body_off) = http_raw(addr, "POST", "/v1/eval", Some(EVAL_BODY), &[]);
    assert!(head_off.contains("200 OK"), "{head_off}");
    assert!(
        header_value(&head_off, "x-qpinn-trace").is_none(),
        "tracing off must not add the header:\n{head_off}"
    );
    assert_eq!(body_on, body_off, "response bytes differ with tracing on vs off");

    let (head, body) = http_raw(addr, "GET", "/v1/traces", None, &[]);
    assert!(head.contains("200 OK"), "{head}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("enabled").unwrap(), &Json::Bool(false));
    assert_eq!(doc.get("count").unwrap().as_num(), Some(0.0));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
}
