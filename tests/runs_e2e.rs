//! End-to-end `qpinn-run-v1` experiment tracking: real training runs
//! write durable run records, and the cross-run forensics (`runs diff`,
//! `runs regress`) read them back with the contracts the CLI and CI
//! rely on — identical config+seed reproduces bit-for-bit (zero metric
//! delta), a perturbed learning rate shows up in the config delta and
//! fails the regression gate.

use qpinn::core::runs::{list_runs, load_run, RunConfig, RunRecord};
use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::obs::runs::{diff, regress};
use qpinn::optim::LrSchedule;
use qpinn::problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};
use std::path::{Path, PathBuf};

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-runs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Train a small TDSE run recording into `store`, returning its run id.
/// Sequential calls with the same `(seed, lr)` must be bit-identical:
/// construction, sampling, and ordered reductions are all deterministic
/// at a fixed thread count.
fn train_recorded(store: &Path, seed: u64, lr: f64, epochs: usize) -> String {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 12, 2);
    cfg.n_collocation = 96;
    cfg.n_ic = 24;
    cfg.conservation_grid = (2, 12);
    cfg.reference = (128, 100, 8);
    cfg.eval_grid = (16, 4);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    let train = TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr },
        log_every: 5,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: Some(
            RunConfig::new(store, "e2e/free-packet", seed).config(
                qpinn::core::report::Json::obj(vec![(
                    "problem",
                    qpinn::core::report::Json::Str("free-packet".into()),
                )]),
            ),
        ),
    };
    let log = Trainer::new(train).train(&mut task, &mut params);
    log.run_id.expect("run recording was configured")
}

fn load(store: &Path, id: &str) -> RunRecord {
    load_run(store, id).unwrap_or_else(|e| panic!("loading {id}: {e}"))
}

#[test]
fn identical_seed_and_config_diff_to_zero_metric_delta() {
    let store = tmp_store("identical");
    let a = train_recorded(&store, 7, 2e-3, 40);
    let b = train_recorded(&store, 7, 2e-3, 40);
    assert_ne!(a, b, "each run must get its own id");

    // Both runs are listed, finalized, and converged.
    let listed = list_runs(&store).unwrap();
    assert_eq!(listed.len(), 2);
    assert!(listed.iter().all(|s| s.outcome == "converged"), "{listed:?}");

    let ra = load(&store, &a);
    let rb = load(&store, &b);
    assert_eq!(ra.manifest.config_hash, rb.manifest.config_hash);
    assert!(!ra.series_of("loss").is_empty());

    let report = diff(&ra, &rb);
    assert!(report.identical_setup, "same config hash + seed expected");
    assert!(report.config.is_empty(), "config delta: {:?}", report.config);
    assert!(
        report.zero_metric_delta,
        "identical runs must be bit-identical, got {:?}",
        report.metrics
    );
    assert!(report.aligned_epochs > 0);
    assert!(report.render().contains("reproducible"));

    // And the regression gate passes trivially against itself.
    assert!(regress(&rb, &ra, 20.0).passed());
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn perturbed_lr_changes_config_hash_and_fails_the_regression_gate() {
    let store = tmp_store("perturbed");
    let baseline = train_recorded(&store, 7, 2e-3, 40);
    // 100× the learning rate: unmistakably worse after the same budget.
    let perturbed = train_recorded(&store, 7, 0.2, 40);

    let rb = load(&store, &baseline);
    let rp = load(&store, &perturbed);
    assert_ne!(rb.manifest.config_hash, rp.manifest.config_hash);

    let d = diff(&rb, &rp);
    assert!(!d.identical_setup);
    assert!(
        d.config.iter().any(|c| c.key.contains("lr0")),
        "lr change missing from config delta: {:?}",
        d.config
    );
    assert!(!d.zero_metric_delta);

    let gate = regress(&rp, &rb, 20.0);
    assert!(
        !gate.passed(),
        "100x lr must regress the gate:\n{}",
        gate.render()
    );
    assert!(gate.render().contains("FAIL"));
    let _ = std::fs::remove_dir_all(&store);
}
