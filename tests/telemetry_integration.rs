//! End-to-end observability: a real training run with a JSONL sink
//! installed must produce a parseable event stream with the documented
//! schema — versioned header, nested phase spans, checkpoint events, a
//! final metrics snapshot — and the divergence guard must stop a run
//! whose learning rate makes the loss explode.

use qpinn::core::report::Json;
use qpinn::core::task::{NlsTask, NlsTaskConfig};
use qpinn::core::trainer::{CheckpointConfig, DivergenceGuard, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::NlsProblem;
use qpinn::telemetry;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Mutex;

/// Telemetry sinks are process-global; tests that install one must not
/// overlap with each other.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny NLS task + config that trains in well under a second.
fn tiny_nls(epochs: usize) -> (NlsTask, ParamSet, TrainConfig) {
    let problem = NlsProblem::bright_soliton(1.0);
    let mut cfg = NlsTaskConfig::standard(&problem, 8, 2);
    cfg.n_collocation = 48;
    cfg.n_ic = 16;
    cfg.reference = (64, 100, 8);
    cfg.eval_grid = (16, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let mut params = ParamSet::new();
    let task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
    let train = TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        log_every: 2,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    };
    (task, params, train)
}

#[test]
fn jsonl_stream_has_stable_schema_and_phase_spans() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("jsonl");
    let jsonl_path = dir.join("run.jsonl");

    let (mut task, mut params, mut train) = tiny_nls(6);
    train.checkpoint = Some(CheckpointConfig::new(dir.join("ckpt")).every(3).run_id("itest"));

    telemetry::shutdown();
    telemetry::install(std::sync::Arc::new(
        telemetry::JsonlSink::create(&jsonl_path).unwrap(),
    ));
    let log = Trainer::new(train).train(&mut task, &mut params);
    telemetry::shutdown();

    assert!(!log.diverged);
    let text = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "expected a real event stream, got {} lines", lines.len());

    // Every line is valid JSON with exactly the documented top-level keys.
    let mut parsed = Vec::new();
    for line in &lines {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        for key in ["v", "ts_ns", "kind", "name", "thread", "fields"] {
            assert!(j.get(key).is_some(), "line missing {key:?}: {line}");
        }
        assert_eq!(j.get("v").and_then(Json::as_num), Some(1.0), "schema version");
        parsed.push(j);
    }

    // Header mark comes first and records the schema version.
    assert_eq!(parsed[0].get("kind").and_then(Json::as_str), Some("mark"));
    assert_eq!(
        parsed[0].get("name").and_then(Json::as_str),
        Some("telemetry_start")
    );

    // Nested phase spans under `epoch` — the exact paths the trainer and
    // the task promise.
    let span_paths: Vec<&str> = parsed
        .iter()
        .filter(|j| j.get("kind").and_then(Json::as_str) == Some("span"))
        .filter_map(|j| j.get("fields").and_then(|f| f.get("path")).and_then(Json::as_str))
        .collect();
    for want in [
        "epoch",
        "epoch/loss",
        "epoch/loss/sample",
        "epoch/loss/forward",
        "epoch/loss/residual",
        "epoch/backward",
        "epoch/step",
        "epoch/checkpoint",
    ] {
        assert!(
            span_paths.iter().any(|p| *p == want),
            "missing span path {want:?}; saw {span_paths:?}"
        );
    }
    // Spans carry a non-negative duration.
    for j in &parsed {
        if j.get("kind").and_then(Json::as_str) == Some("span") {
            let dur = j
                .get("fields")
                .and_then(|f| f.get("dur_ns"))
                .and_then(Json::as_num)
                .expect("span without dur_ns");
            assert!(dur >= 0.0);
        }
    }

    // Checkpoint lifecycle and training progress marks.
    let names: Vec<&str> = parsed
        .iter()
        .filter_map(|j| j.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"checkpoint_saved"), "saw {names:?}");
    assert!(names.contains(&"train_progress"));
    assert!(names.contains(&"pool_stats"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_counts_training_work() {
    // Counters are always on (no sink required) and only ever increase.
    let grad_before = telemetry::counter("train.grad_evals").get();
    let coll_before = telemetry::counter("train.collocation_points").get();
    let (mut task, mut params, train) = tiny_nls(4);
    let log = Trainer::new(train).train(&mut task, &mut params);
    assert!(log.final_loss.is_finite());
    assert!(telemetry::counter("train.grad_evals").get() >= grad_before + 4);
    // 4 epochs × 48 collocation points.
    assert!(telemetry::counter("train.collocation_points").get() >= coll_before + 4 * 48);
}

#[test]
fn divergence_guard_stops_exploding_run() {
    // An absurd learning rate with no clipping blows the loss up within a
    // few epochs; the guard must stop the run early and say so.
    let (mut task, mut params, mut train) = tiny_nls(400);
    train.schedule = LrSchedule::Constant { lr: 1e6 };
    train.clip = None;
    train.log_every = 1;
    train.divergence = Some(DivergenceGuard {
        factor: 1e3,
        patience: 2,
    });
    let log = Trainer::new(train).train(&mut task, &mut params);
    assert!(log.diverged, "guard did not fire; final loss {}", log.final_loss);
    let stop = log.stop_epoch.expect("stop_epoch recorded");
    assert!(stop < 399, "stopped at {stop}, not early");
    assert!(
        log.epochs.len() < 400,
        "recorded {} log points for a run that should have stopped early",
        log.epochs.len()
    );
    assert!(
        log.warnings.iter().any(|w| w.contains("diverged")),
        "warnings: {:?}",
        log.warnings
    );
}

#[test]
fn divergence_guard_off_by_default_runs_full_budget() {
    let (mut task, mut params, train) = tiny_nls(5);
    assert!(train.divergence.is_none());
    let log = Trainer::new(train).train(&mut task, &mut params);
    assert!(!log.diverged);
    assert_eq!(log.stop_epoch, None);
}

#[test]
fn metrics_snapshot_round_trips_through_json_parser() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::counter("itest.snapshot.counter").add(3);
    telemetry::histogram("itest.snapshot.hist").record(1500);
    let snap = telemetry::global().snapshot();
    let j = Json::parse(&snap.to_json()).expect("snapshot is valid JSON");
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some("qpinn-metrics-v1")
    );
    let ctr = j
        .get("counters")
        .and_then(|c| c.get("itest.snapshot.counter"))
        .and_then(Json::as_num)
        .unwrap();
    assert!(ctr >= 3.0);
    let hist = j
        .get("histograms")
        .and_then(|h| h.get("itest.snapshot.hist"))
        .expect("histogram in snapshot");
    assert!(hist.get("count").and_then(Json::as_num).unwrap() >= 1.0);
}
