//! Gate-fusion and SIMD-dispatch correctness at the integration level.
//!
//! PR 7 introduced two families of shortcuts that must be *invisible* to
//! every consumer:
//!
//! * **gate fusion** — consecutive single-qubit gates pre-multiplied into
//!   one 2×2 before touching the state (re-uploading embeds fused into
//!   each layer's leading rotations; cross-layer fusion for the
//!   product-state ansatz);
//! * **runtime SIMD dispatch** — the tensor kernels pick a vector width
//!   at startup (`QPINN_SIMD` override) but promise bit-identical results
//!   at every width.
//!
//! The unit suites check each kernel in isolation; this file checks the
//! composed paths end to end: fused ansatz application against the
//! gate-at-a-time reference on random 2–10-qubit states, a
//! parameter-shift gradient oracle through the fused re-uploading
//! circuit, and a short training run under forced-scalar dispatch.

use qpinn::qcircuit::gates;
use qpinn::qcircuit::shift::parameter_shift_gradient;
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer, State};
use qpinn::tensor::simd;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_angles(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
        .collect()
}

/// A generic (entangled, non-axis-aligned) state to apply layers to.
fn random_state(nq: usize, seed: u64) -> State<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s: State<f64> = State::zero(nq);
    for q in 0..nq {
        let p = random_angles(3, &mut rng);
        s.apply_1q(q, &gates::rot(p[0], p[1], p[2]));
    }
    for q in 1..nq {
        s.apply_cnot(q - 1, q);
    }
    s
}

fn max_amp_diff(a: &State<f64>, b: &State<f64>) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).norm_sqr().sqrt())
        .fold(0.0, f64::max)
}

#[test]
fn fused_pre_gate_layer_matches_gate_at_a_time() {
    // apply_layer_fused(state, layer, params, pre) must equal "apply every
    // pre[q] as its own gate, then apply the layer" — for every ansatz
    // template and across the full 2–10 qubit range.
    for nq in [2usize, 3, 5, 7, 10] {
        for ansatz in Ansatz::all() {
            let mut rng = StdRng::seed_from_u64(1000 + nq as u64);
            let params = random_angles(ansatz.params_per_layer(nq), &mut rng);
            let embed_angles = random_angles(nq, &mut rng);
            let embed: Vec<_> = embed_angles.iter().map(|&a| gates::rx(a)).collect();

            let mut fused = random_state(nq, 7 * nq as u64);
            let mut reference = fused.clone();

            // layer index 1 exercises the layer-dependent entangler wiring
            ansatz.apply_layer_fused(&mut fused, 1, &params, &embed);
            for (q, g) in embed.iter().enumerate() {
                reference.apply_1q(q, g);
            }
            ansatz.apply_layer(&mut reference, 1, &params);

            let diff = max_amp_diff(&fused, &reference);
            assert!(
                diff < 1e-12,
                "{} at {nq} qubits: fused pre-gate diverged by {diff:e}",
                ansatz.name()
            );
        }
    }
}

#[test]
fn cross_layer_fusion_matches_layer_at_a_time() {
    // For the product-state ansatz, Ansatz::apply collapses all layers
    // into one 2×2 product per qubit. It must match applying the layers
    // one by one.
    let layers = 4;
    for nq in [2usize, 4, 6, 8, 10] {
        let a = Ansatz::NoEntangling;
        let mut rng = StdRng::seed_from_u64(2000 + nq as u64);
        let params = random_angles(a.n_params(nq, layers), &mut rng);
        let per = a.params_per_layer(nq);

        let mut fused = random_state(nq, 11 * nq as u64);
        let mut reference = fused.clone();

        a.apply(&mut fused, layers, &params);
        for layer in 0..layers {
            a.apply_layer(&mut reference, layer, &params[layer * per..(layer + 1) * per]);
        }

        let diff = max_amp_diff(&fused, &reference);
        assert!(
            diff < 1e-12,
            "cross-layer fusion at {nq} qubits diverged by {diff:e}"
        );
    }
}

#[test]
fn parameter_shift_oracle_agrees_through_fused_reupload_path() {
    // The re-uploading circuit routes every layer after the first through
    // the fused embed·rotation product. The parameter-shift rule is an
    // independent mathematical identity (two shifted circuit evaluations
    // per parameter); its gradient must match the dual-number Jacobian
    // computed through the same fused code to near machine precision.
    for ansatz in [Ansatz::BasicEntangling, Ansatz::NoEntangling] {
        let l = QuantumLayer {
            n_qubits: 3,
            layers: 3,
            ansatz,
            scaling: InputScaling::Pi,
            reupload: true,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let theta = l.init_params(&mut rng);
        let a = [0.35, -0.6, 0.15];
        let cot = [0.8, -1.1, 0.4];

        let f = |th: &[f64]| -> f64 {
            l.forward_sample(&a, th)
                .iter()
                .zip(&cot)
                .map(|(e, c)| e * c)
                .sum()
        };
        let shift_grad = parameter_shift_gradient(&f, &theta);

        let (_, _, jt) = l.jacobians_sample(&a, &theta);
        for p in 0..theta.len() {
            let dual: f64 = jt[p].iter().zip(&cot).map(|(d, c)| d * c).sum();
            assert!(
                (shift_grad[p] - dual).abs() < 1e-10,
                "{}: θ[{p}] parameter-shift {} vs dual {}",
                ansatz.name(),
                shift_grad[p],
                dual
            );
        }
    }
}

#[test]
fn forward_batch_bit_identical_under_forced_scalar_dispatch() {
    // The full batched circuit forward (embedding, fused layers, Z
    // readout) must not care which SIMD path the tensor kernels take.
    let l = QuantumLayer {
        n_qubits: 4,
        layers: 3,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: true,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let theta = l.init_params(&mut rng);
    let batch = 32;
    let inputs: Vec<f64> = (0..batch * 4).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let dispatched = simd::width();
    let reference: Vec<u64> = l
        .forward_batch(&inputs, batch, &theta)
        .iter()
        .map(|x| x.to_bits())
        .collect();

    simd::set_width(1);
    let scalar: Vec<u64> = l
        .forward_batch(&inputs, batch, &theta)
        .iter()
        .map(|x| x.to_bits())
        .collect();
    simd::set_width(dispatched);

    assert_eq!(
        scalar, reference,
        "circuit forward diverged between scalar and width-{dispatched} dispatch"
    );
}
