//! Chaos suite: drive the persistence, telemetry, and pool layers through
//! their failure paths *on purpose* via the `qpinn-testkit` fail plane,
//! and assert the recovery invariants the stack advertises:
//!
//! - a crash at any injected persist point never loses the last durable
//!   checkpoint;
//! - `Trainer::resume` stays bit-exact even when the latest snapshot is
//!   silently corrupted and the store falls back;
//! - sink write failures surface as `telemetry.write_errors` + a
//!   `TrainLog::warnings` entry without panicking training;
//! - a stalled pool worker neither deadlocks a parallel operation nor
//!   changes ordered-reduction results by a single bit.
//!
//! The fail plane is process-global, so every test here serializes on one
//! mutex (this file is its own test binary; it only contends with
//! itself). CI runs the suite twice with a fixed `QPINN_FAILPOINTS` spec
//! and `--test-threads=1` and diffs the output to pin determinism.

use qpinn::autodiff::Var;
use qpinn::core::report::Json;
use qpinn::core::trainer::{CheckpointConfig, PinnTask, TrainConfig, Trainer};
use qpinn::nn::{GraphCtx, ParamSet};
use qpinn::optim::LrSchedule;
use qpinn::persist::{PersistError, RetentionPolicy, Snapshot, SnapshotStore};
use qpinn::tensor::Tensor;
use qpinn::testkit::{self, Trigger};
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serialize every test in this binary: the fail plane and the telemetry
/// registry are process-global.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    testkit::disarm_all();
    // Clear process-global telemetry residue (installed sinks, the pending
    // write-error side channel) left by whichever test ran before.
    qpinn::telemetry::shutdown();
    let _ = qpinn::telemetry::take_write_error();
    guard
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic single-parameter quadratic task: no RNG anywhere, so two
/// runs from the same initial state have bit-identical trajectories.
struct Quad {
    id: qpinn::nn::ParamId,
    target: f64,
}

fn quad_fixture() -> (Quad, ParamSet) {
    let mut params = ParamSet::new();
    let id = params.add("w", Tensor::from_vec([1, 1], vec![0.25]));
    (Quad { id, target: 3.0 }, params)
}

impl PinnTask for Quad {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let w = ctx.param(self.id);
        let d = ctx.g.add_scalar(w, -self.target);
        ctx.g.mse(d)
    }
    fn eval_error(&self, params: &ParamSet) -> f64 {
        (params.tensors()[0].item() - self.target).abs()
    }
}

fn quad_cfg(epochs: usize, ckpt: Option<CheckpointConfig>) -> TrainConfig {
    TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 0.05 },
        log_every: 5,
        eval_every: 0,
        clip: None,
        lbfgs_polish: None,
        checkpoint: ckpt,
        divergence: None,
        progress: None,
        run: None,
    }
}

fn sample_snap(epoch: u64) -> Snapshot {
    let (task, params) = quad_fixture();
    Snapshot {
        meta: qpinn::persist::RunMeta {
            run_id: "chaos".into(),
            next_epoch: epoch,
            planned_epochs: 1000,
            eval_error: 0.5,
        },
        params: params.clone(),
        optim: qpinn::optim::Adam::new(1e-3).export_state(),
        log: Default::default(),
        task_state: task.export_state(),
    }
}

fn bits(params: &ParamSet) -> Vec<u64> {
    params.flatten().iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Invariant 1: no injected persist fault loses the last durable checkpoint.
// ---------------------------------------------------------------------------

#[test]
fn no_injected_persist_fault_loses_the_last_durable_checkpoint() {
    let _g = serial();
    let erroring_points = ["fs.enospc", "persist.write_short", "persist.rename_torn"];
    for point in erroring_points {
        let dir = test_dir(&format!("durable-{}", point.replace('.', "-")));
        let store = SnapshotStore::open(&dir).unwrap();
        let keep = RetentionPolicy::keep_all();
        store.save(&sample_snap(100), &keep).unwrap();

        {
            let _arm = testkit::arm(point, Trigger::Always);
            let err = store
                .save(&sample_snap(200), &keep)
                .expect_err("armed fault must surface as an error");
            assert!(
                err.to_string().contains(point),
                "{point}: error must name the injection point, got {err}"
            );
            assert_eq!(testkit::fired(point), 1, "{point} must have fired once");
        }

        // The durable epoch-100 snapshot must still load, whatever debris
        // the fault left behind.
        let (snap, _) = store.load_latest().unwrap();
        assert_eq!(snap.meta.next_epoch, 100, "{point} lost the durable checkpoint");

        // And a re-opened store (the crash-recovery path) sweeps tmp
        // debris and still serves the same snapshot.
        let reopened = SnapshotStore::open(&dir).unwrap();
        let (snap, _) = reopened.load_latest().unwrap();
        assert_eq!(snap.meta.next_epoch, 100);
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .all(|e| e.path().extension().and_then(|x| x.to_str()) != Some("tmp")),
            "{point}: reopen must sweep tmp debris"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Silent post-publish corruption: save reports Ok, yet load must fall
    // back to the previous intact snapshot.
    let dir = test_dir("durable-bitflip");
    let store = SnapshotStore::open(&dir).unwrap();
    let keep = RetentionPolicy::keep_all();
    store.save(&sample_snap(100), &keep).unwrap();
    {
        let _arm = testkit::arm("persist.bitflip", Trigger::Once);
        store
            .save(&sample_snap(200), &keep)
            .expect("bitflip is silent: save must report success");
    }
    let (snap, _) = store.load_latest().unwrap();
    assert_eq!(
        snap.meta.next_epoch, 100,
        "CRC check must reject the rotted epoch-200 snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trainer_survives_checkpoint_faults_with_identical_trajectory() {
    let _g = serial();

    // Reference: fault-free run.
    let (mut task_a, mut params_a) = quad_fixture();
    let log_a = Trainer::new(quad_cfg(40, None)).train(&mut task_a, &mut params_a);
    assert!(log_a.warnings.is_empty(), "{:?}", log_a.warnings);

    // Same run, but the second checkpoint save hits a full disk.
    let dir = test_dir("trainer-enospc");
    let (mut task_b, mut params_b) = quad_fixture();
    let ckpt = CheckpointConfig::new(&dir)
        .every(10)
        .retention(RetentionPolicy::keep_all());
    let log_b = {
        let _arm = testkit::arm("fs.enospc", Trigger::Nth(2));
        Trainer::new(quad_cfg(40, Some(ckpt))).train(&mut task_b, &mut params_b)
    };

    // Training must finish, warn, and stay on the exact same trajectory.
    assert!(
        log_b.warnings.iter().any(|w| w.contains("checkpoint save failed")),
        "missing checkpoint_save_failed warning: {:?}",
        log_b.warnings
    );
    assert_eq!(bits(&params_a), bits(&params_b), "faults must not perturb training");
    assert_eq!(log_a.final_loss.to_bits(), log_b.final_loss.to_bits());

    // Saves 1, 3, 4 landed; save 2 (epoch 20) was eaten by the fault.
    let store = SnapshotStore::open(&dir).unwrap();
    let epochs: Vec<u64> = store.list().into_iter().map(|(e, _)| e).collect();
    assert_eq!(epochs, vec![10, 30, 40]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Invariant 1b: a torn run-record finalize degrades to `incomplete`,
// never to corrupt JSON or a crashed trainer.
// ---------------------------------------------------------------------------

/// Tear the `qpinn-run-v1` manifest rewrite at finalize (the atomic
/// tmp+rename is interrupted mid-tmp-write): training still completes,
/// warns, and leaves behind the *intact* begin-time manifest — so
/// `runs list` reports the run as `incomplete` and every JSON artifact
/// on disk still parses.
#[test]
fn torn_run_manifest_finalize_lists_as_incomplete() {
    use qpinn::core::runs::{list_runs, load_run, RunConfig};
    let _g = serial();
    let dir = test_dir("runs-torn");

    let (mut task, mut params) = quad_fixture();
    let mut cfg = quad_cfg(20, None);
    cfg.run = Some(RunConfig::new(&dir, "chaos/quad", 0));
    let log = {
        // Hit 1 is begin's manifest write (must land intact); hit 2 is
        // the finalize rewrite, torn halfway through the tmp file.
        let _arm = testkit::arm("runs.manifest_torn", Trigger::Nth(2));
        Trainer::new(cfg).train(&mut task, &mut params)
    };

    // Training itself is unharmed and the failure is surfaced.
    assert!(log.final_loss.is_finite());
    assert!(
        log.warnings.iter().any(|w| w.contains("finalize failed")),
        "missing finalize-failed warning: {:?}",
        log.warnings
    );
    let run_id = log.run_id.clone().expect("run id assigned at begin");

    // The store still lists the run — as incomplete, from the intact
    // begin-time manifest.
    let listed = list_runs(&dir).unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].run_id, run_id);
    assert_eq!(listed[0].outcome, "incomplete");
    assert_eq!(listed[0].final_loss, None);

    // Every byte on disk is still valid: the manifest parses (schema
    // intact, no finals), and the epoch series has no torn lines.
    let rec = load_run(&dir, &run_id).unwrap();
    assert_eq!(rec.manifest.task, "chaos/quad");
    assert_eq!(rec.manifest.end_unix_ms, None);
    assert!(!rec.series.is_empty(), "epoch series should have landed");
    let manifest_text =
        std::fs::read_to_string(dir.join(&run_id).join("manifest.json")).unwrap();
    Json::parse(&manifest_text).expect("manifest must never be torn");

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Invariant 2: resume stays bit-exact under corrupted-latest fallback.
// ---------------------------------------------------------------------------

#[test]
fn resume_is_bit_exact_under_corrupted_latest_fallback() {
    let _g = serial();

    // Reference: one uninterrupted 40-epoch run.
    let (mut task_ref, mut params_ref) = quad_fixture();
    let log_ref = Trainer::new(quad_cfg(40, None)).train(&mut task_ref, &mut params_ref);

    // Interrupted run checkpointing at 10 and 20 — with silent bit rot
    // injected into the *second* (latest) snapshot as it is published.
    let dir = test_dir("resume-bitflip");
    let ckpt = CheckpointConfig::new(&dir)
        .every(10)
        .retention(RetentionPolicy::keep_all());
    let (mut task_b, mut params_b) = quad_fixture();
    {
        let _arm = testkit::arm("persist.bitflip", Trigger::Nth(2));
        let _ = Trainer::new(quad_cfg(20, Some(ckpt))).train(&mut task_b, &mut params_b);
        assert_eq!(testkit::fired("persist.bitflip"), 1);
    }

    // Resume in a fresh-process equivalent: the corrupt epoch-20 snapshot
    // must be skipped, training restarts from the intact epoch-10 state,
    // and the final parameters match the uninterrupted run bit for bit.
    let (mut task_c, _) = quad_fixture();
    let mut params_c = ParamSet::new();
    let log_c = Trainer::new(quad_cfg(40, None))
        .resume(&dir, &mut task_c, &mut params_c)
        .expect("fallback resume must succeed");

    assert_eq!(bits(&params_ref), bits(&params_c), "fallback resume must be bit-exact");
    assert_eq!(log_ref.final_loss.to_bits(), log_c.final_loss.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_all_snapshots_corrupt_fails_cleanly() {
    let _g = serial();
    let dir = test_dir("resume-allbad");
    let store = SnapshotStore::open(&dir).unwrap();
    {
        let _arm = testkit::arm("persist.bitflip", Trigger::Always);
        store.save(&sample_snap(10), &RetentionPolicy::keep_all()).unwrap();
        store.save(&sample_snap(20), &RetentionPolicy::keep_all()).unwrap();
    }
    match store.load_latest() {
        Err(PersistError::NoIntactSnapshot { corrupt_skipped, .. }) => {
            assert_eq!(corrupt_skipped, 2)
        }
        other => panic!("expected NoIntactSnapshot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Invariant 3: sink failures surface without panicking training.
// ---------------------------------------------------------------------------

#[test]
fn sink_failures_surface_as_write_errors_without_panicking_training() {
    let _g = serial();
    let path = std::env::temp_dir().join(format!(
        "qpinn-chaos-sink-{}.jsonl",
        std::process::id()
    ));
    let before = qpinn::telemetry::counter("telemetry.write_errors").get();
    let _ = qpinn::telemetry::take_write_error(); // clear residue

    let log = {
        let _arm = testkit::arm("telemetry.sink_err", Trigger::Always);
        let sink = qpinn::telemetry::JsonlSink::create(&path).unwrap();
        qpinn::telemetry::install(std::sync::Arc::new(sink));
        let (mut task, mut params) = quad_fixture();
        let log = Trainer::new(quad_cfg(20, None)).train(&mut task, &mut params);
        qpinn::telemetry::shutdown();
        log
    };

    let after = qpinn::telemetry::counter("telemetry.write_errors").get();
    assert!(after > before, "every failed write must bump telemetry.write_errors");
    assert!(
        log.warnings.iter().any(|w| w.contains("telemetry sink writes failed")),
        "trainer must surface the sink failure: {:?}",
        log.warnings
    );
    // Every event write failed, so only nothing-or-header can be on disk.
    let written = std::fs::read_to_string(&path).unwrap_or_default();
    assert!(written.is_empty(), "failed writes must not reach the file: {written:?}");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Invariant 4: pool stalls never deadlock or change ordered reductions.
// ---------------------------------------------------------------------------

#[test]
fn pool_stall_neither_deadlocks_nor_changes_ordered_reductions() {
    let _g = serial();
    let n = 200_000usize;
    let reduce = || {
        (0..n)
            .into_par_iter()
            .map(|i| ((i as f64) * 1e-3).sin() / ((i + 1) as f64).sqrt())
            .sum::<f64>()
    };

    // Width-1 reference (sequential fast path) and an unstalled parallel run.
    let seq = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(reduce);
    let par = reduce();
    assert_eq!(seq.to_bits(), par.to_bits(), "ordered reduction must be width-invariant");

    // Stall workers on half their ticket pops: the set must still drain
    // (launcher + unstalled workers absorb the tail) with identical bits.
    let stalled = {
        let _arm = testkit::arm("pool.steal_stall", Trigger::Every(2));
        reduce()
    };
    assert_eq!(
        par.to_bits(),
        stalled.to_bits(),
        "a stalled worker must not change ordered-reduction results"
    );

    // And a stall armed during nested join/install traffic must not
    // deadlock either (completion of this call is the assertion).
    let nested = {
        let _arm = testkit::arm("pool.steal_stall", Trigger::Always);
        rayon::join(reduce, reduce)
    };
    assert_eq!(nested.0.to_bits(), par.to_bits());
    assert_eq!(nested.1.to_bits(), par.to_bits());
}

// ---------------------------------------------------------------------------
// Invariant 5: a stalled serve flush is visible in the latency split but
// never loses, duplicates, or perturbs a response — and admission control
// keeps shedding with Retry-After while the dispatcher is stuck.
// ---------------------------------------------------------------------------

#[test]
fn serve_flush_stall_shows_in_queue_latency_without_losing_requests() {
    use qpinn::serve::{ServeConfig, ServeServer};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let _g = serial();

    fn http(addr: std::net::SocketAddr, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(120))).unwrap();
        write!(
            s,
            "POST /v1/eval HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn publish(server: &ServeServer) {
        let spec = qpinn::serve::ModelSpec {
            name: "tdse".into(),
            seed: 3,
            problem: String::new(),
            net: qpinn::core::model::FieldNetConfig::standard_wave(12.0, 1.0, 8, 1),
        };
        let mut params = ParamSet::new();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(spec.seed);
        let _ = qpinn::core::model::FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
        server
            .registry()
            .publish("stall", &spec, &params, Default::default(), 1, 0.0)
            .unwrap();
    }

    let dir = test_dir("flush-stall");
    let mut cfg = ServeConfig::new(dir.join("models"));
    cfg.workers = 8;
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    publish(&server);

    // Unstalled solo references, one per payload.
    let payloads: Vec<String> = (0..6)
        .map(|i| format!(r#"{{"model":"stall","points":[[{}.5,0.1],[-1.0,0.2]]}}"#, i))
        .collect();
    let solo: Vec<String> = payloads
        .iter()
        .map(|p| {
            let (head, body) = http(addr, p);
            assert!(head.contains("200 OK"), "{head}");
            body
        })
        .collect();

    let before = qpinn::telemetry::histogram(qpinn::telemetry::names::SERVE_LAT_QUEUE_NS).snapshot();

    // Stall every flush, then stagger the clients: the first request's
    // batch stalls 25 ms inside dispatch, so the rest pile up in the
    // queue and their recorded queue wait absorbs the stall.
    let stalled: Vec<String> = {
        let _arm = testkit::arm("serve.flush_stall", Trigger::Always);
        let first = {
            let p = payloads[0].clone();
            std::thread::spawn(move || http(addr, &p))
        };
        std::thread::sleep(std::time::Duration::from_millis(8));
        let rest: Vec<_> = payloads[1..]
            .iter()
            .cloned()
            .map(|p| std::thread::spawn(move || http(addr, &p)))
            .collect();
        let mut out = vec![first.join().unwrap()];
        out.extend(rest.into_iter().map(|c| c.join().unwrap()));
        assert!(testkit::fired("serve.flush_stall") >= 1, "stall never fired");
        out.into_iter()
            .map(|(head, body)| {
                assert!(head.contains("200 OK"), "{head}");
                body
            })
            .collect()
    };

    // No request lost, none double-answered, every byte identical to
    // the unstalled solo answer.
    assert_eq!(stalled.len(), payloads.len());
    for (got, want) in stalled.iter().zip(&solo) {
        assert_eq!(got, want, "stalled flush changed a response");
    }

    // The stall is visible where the design says: queue wait. At least
    // one of the piled-up requests waited ≈ the 25 ms stall.
    let after = qpinn::telemetry::histogram(qpinn::telemetry::names::SERVE_LAT_QUEUE_NS).snapshot();
    assert!(after.count > before.count, "no queue-wait samples recorded");
    assert!(
        after.max >= 10_000_000,
        "queue-wait max {} ns does not show the 25 ms stall",
        after.max
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // Admission control is untouched by a stalled dispatcher: a
    // zero-slot queue still sheds immediately with Retry-After.
    let dir2 = test_dir("flush-stall-shed");
    let mut cfg = ServeConfig::new(dir2.join("models"));
    cfg.batch = qpinn::serve::BatchConfig {
        queue_cap: 0,
        ..Default::default()
    };
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    publish(&server);
    {
        let _arm = testkit::arm("serve.flush_stall", Trigger::Always);
        let (head, _) = http(
            server.local_addr(),
            r#"{"model":"stall","points":[[0.5,0.1]]}"#,
        );
        assert!(head.contains("429"), "{head}");
        assert!(head.contains("Retry-After:"), "shed lost Retry-After under stall:\n{head}");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---------------------------------------------------------------------------
// Determinism of the plane itself, through the public spec syntax.
// ---------------------------------------------------------------------------

#[test]
fn spec_armed_schedules_replay_identically() {
    let _g = serial();
    let spec = "chaos.a=prob(0.3,seed=42);chaos.b=every(3);chaos.c=times(4)";
    let run = || -> Vec<(bool, bool, bool)> {
        let _arm = testkit::arm_spec(spec).unwrap();
        (0..100)
            .map(|_| {
                (
                    testkit::should_fail("chaos.a"),
                    testkit::should_fail("chaos.b"),
                    testkit::should_fail("chaos.c"),
                )
            })
            .collect()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "identical spec must replay identically");
    assert!(first.iter().any(|t| t.0), "prob(0.3) over 100 draws should fire");
    let b_fires: Vec<usize> = first
        .iter()
        .enumerate()
        .filter(|(_, t)| t.1)
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(b_fires, vec![3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60, 63, 66, 69, 72, 75, 78, 81, 84, 87, 90, 93, 96, 99]);
    assert_eq!(first.iter().filter(|t| t.2).count(), 4, "times(4) fires exactly 4x");
}

// ---------------------------------------------------------------------------
// Env-var activation: exercised in a subprocess so the lazy one-shot
// QPINN_FAILPOINTS parse runs from a clean plane.
// ---------------------------------------------------------------------------

/// Helper executed in the child process (skipped when run normally).
#[test]
fn env_probe_subprocess() {
    if std::env::var("QPINN_CHAOS_ENV_PROBE").is_err() {
        return;
    }
    let trace: String = (0..12)
        .map(|_| {
            if testkit::should_fail("chaos.env.probe") {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    println!("env probe trace {trace}");
}

#[test]
fn env_var_arms_points_lazily_and_deterministically() {
    let _g = serial();
    let exe = std::env::current_exe().unwrap();
    let run = || {
        let out = std::process::Command::new(&exe)
            .args(["env_probe_subprocess", "--exact", "--nocapture", "--test-threads=1"])
            .env("QPINN_FAILPOINTS", "chaos.env.probe=every(2)")
            .env("QPINN_CHAOS_ENV_PROBE", "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run();
    assert!(
        first.contains("env probe trace 010101010101"),
        "every(2) via QPINN_FAILPOINTS must fire on exactly the even hits:\n{first}"
    );
    // Identical spec ⇒ identical trigger sequence across runs.
    let second = run();
    let trace = |s: &str| {
        s.lines()
            .find(|l| l.contains("env probe trace"))
            .map(|l| l.to_string())
    };
    assert_eq!(trace(&first), trace(&second));
}
