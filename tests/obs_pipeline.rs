//! End-to-end consumption of telemetry: a real training run's JSONL
//! stream must convert cleanly to a Chrome trace (round-tripping through
//! the strict parser), account into a flame table with the documented
//! phase paths, and yield a pool-balance report — the full
//! `qpinn-obs` pipeline over real data rather than fixtures. Plus the
//! `TrainConfig::progress` hook contract: called with monotonic epochs
//! and a finite loss, with gauges published for live scraping.

use qpinn::core::report::Json;
use qpinn::core::task::{NlsTask, NlsTaskConfig};
use qpinn::core::trainer::{ProgressHook, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::NlsProblem;
use qpinn::telemetry;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Telemetry sinks are process-global; tests that install one must not
/// overlap with each other.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn tiny_nls(epochs: usize) -> (NlsTask, ParamSet, TrainConfig) {
    let problem = NlsProblem::bright_soliton(1.0);
    let mut cfg = NlsTaskConfig::standard(&problem, 8, 2);
    cfg.n_collocation = 48;
    cfg.n_ic = 16;
    cfg.reference = (64, 100, 8);
    cfg.eval_grid = (16, 6);
    let mut rng = StdRng::seed_from_u64(11);
    let mut params = ParamSet::new();
    let task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
    let train = TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        log_every: 2,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    };
    (task, params, train)
}

#[test]
fn real_training_stream_feeds_the_whole_obs_pipeline() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("qpinn-obs-pipeline-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (mut task, mut params, train) = tiny_nls(6);
    telemetry::shutdown();
    telemetry::install(std::sync::Arc::new(
        telemetry::JsonlSink::create(&path).unwrap(),
    ));
    let log = Trainer::new(train).train(&mut task, &mut params);
    telemetry::shutdown();
    assert!(log.final_loss.is_finite());

    let jsonl = std::fs::read_to_string(&path).unwrap();

    // Chrome trace: spans present, strict-parser round trip is lossless.
    let doc = qpinn::obs::trace::chrome_trace(&jsonl).unwrap();
    let reparsed = Json::parse(&doc.to_string()).unwrap();
    assert_eq!(reparsed, doc);
    let events = match doc.get("traceEvents").unwrap() {
        Json::Arr(v) => v,
        other => panic!("traceEvents not an array: {other:?}"),
    };
    let complete = |name: &str| {
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some(name)
        })
    };
    assert!(complete("epoch"), "no epoch spans in trace");
    assert!(complete("loss"), "no loss spans in trace");
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("i")
            && e.get("name").and_then(Json::as_str) == Some("train_progress")
    }));

    // Flame table: the trainer's phase paths, 6 epoch spans, self < total
    // for a parent phase.
    let (stats, n_epochs) = qpinn::obs::flame::phase_stats(&jsonl).unwrap();
    assert_eq!(n_epochs, 6);
    let epoch = stats.iter().find(|s| s.path == "epoch").unwrap();
    assert_eq!(epoch.count, 6);
    assert!(epoch.self_ns < epoch.total_ns, "epoch has child phases");
    assert!(stats.iter().any(|s| s.path == "epoch/loss/forward"));
    let rendered = qpinn::obs::flame::report(&jsonl, 10).unwrap();
    assert!(rendered.contains("epoch/loss"), "{rendered}");

    // Pool balance: the save-time pool_stats sample is parseable.
    let balance = qpinn::obs::pool::last_pool_stats(&jsonl).unwrap();
    if let Some(b) = &balance {
        assert!(b.total_tasks() >= 0.0);
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn progress_hook_sees_monotonic_epochs_and_publishes_gauges() {
    let (mut task, mut params, mut train) = tiny_nls(8);
    let seen: Arc<Mutex<Vec<(usize, f64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    train.progress = Some(ProgressHook::new(move |p| {
        sink.lock().unwrap().push((p.epoch, p.loss, p.epochs_total));
    }));
    let log = Trainer::new(train).train(&mut task, &mut params);
    assert!(log.final_loss.is_finite());

    let seen = seen.lock().unwrap();
    assert!(seen.len() >= 3, "hook fired {} times for 8 epochs at log_every=2", seen.len());
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "epochs not monotonic: {seen:?}");
    assert!(seen.iter().all(|(_, loss, total)| loss.is_finite() && *total == 8));

    // The always-on progress gauges track the last update.
    let snap = telemetry::global().snapshot();
    let j = Json::parse(&snap.to_json()).unwrap();
    let epoch_gauge = j
        .get("gauges")
        .and_then(|g| g.get("train.progress.epoch"))
        .and_then(Json::as_num)
        .expect("train.progress.epoch gauge");
    assert!(epoch_gauge >= 1.0, "gauge {epoch_gauge}");
}
