//! Integration tests for the hybrid quantum-classical stack: the quantum
//! layer inside a full network, trained end-to-end, and cross-checked
//! against the parameter-shift rule.

use qpinn::core::hybrid::{HybridEigenTask, HybridNet};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::EigenProblem;
use qpinn::qcircuit::shift::parameter_shift_gradient;
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer, State};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn hybrid_training_lowers_the_rayleigh_quotient() {
    let problem = EigenProblem::harmonic(1.0);
    let q = QuantumLayer {
        n_qubits: 3,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(4);
    let net = HybridNet::new(&mut params, &mut rng, 10, q, "h");
    let mut task = HybridEigenTask::new(problem, net, 32, 201);
    let e_before = task.energy(&params);
    let _ = Trainer::new(TrainConfig {
        epochs: 120,
        schedule: LrSchedule::Constant { lr: 5e-3 },
        log_every: 60,
        eval_every: 0,
        clip: Some(50.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);
    let e_after = task.energy(&params);
    assert!(
        e_after < e_before,
        "energy should decrease: {e_before} → {e_after}"
    );
    // variational principle: still bounded below by the true ground state
    assert!(e_after > 0.49, "Rayleigh quotient {e_after} below E₀");
}

#[test]
fn dual_number_gradients_agree_with_parameter_shift() {
    // The two independent exact-gradient methods must coincide on a full
    // variational circuit with angle encoding.
    let layer = QuantumLayer {
        n_qubits: 4,
        layers: 3,
        ansatz: Ansatz::StronglyEntangling,
        scaling: InputScaling::Pi,
        reupload: false,
    };
    let mut rng = StdRng::seed_from_u64(8);
    let theta = layer.init_params(&mut rng);
    let a = [0.2, -0.6, 0.4, 0.1];
    let (_, _, jt) = layer.jacobians_sample(&a, &theta);
    // parameter-shift on the summed readout
    let f = |t: &[f64]| -> f64 { layer.forward_sample(&a, t).iter().sum() };
    let shift = parameter_shift_gradient(&f, &theta);
    for p in 0..theta.len() {
        let dual: f64 = jt[p].iter().sum();
        assert!(
            (dual - shift[p]).abs() < 1e-10,
            "param {p}: dual {dual} vs shift {}",
            shift[p]
        );
    }
}

#[test]
fn graph_autodiff_theta_gradient_matches_parameter_shift_on_2q_ansatz() {
    // End-to-end gradcheck through the *reverse-mode graph* (custom quantum
    // ops included), not just the layer-local dual-number jacobians: build
    // the full hybrid net, backprop a summed readout to the quantum
    // parameters, and cross-check every component against the
    // parameter-shift rule evaluated through `predict`.
    //
    // The readout must be a linear functional of the circuit expectation
    // values for parameter shift to be exact — the summed network output
    // qualifies (output layer is affine in ⟨Z_k⟩; the classical front-end
    // does not depend on θ). A nonlinear loss (e.g. the Rayleigh quotient)
    // would NOT satisfy this.
    use qpinn::autodiff::Graph;
    use qpinn::nn::GraphCtx;
    use qpinn::tensor::Tensor;

    let q = QuantumLayer {
        n_qubits: 2,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(21);
    let net = HybridNet::new(&mut params, &mut rng, 6, q, "g");
    let xs = [-0.6, -0.1, 0.3, 0.8];

    // Reverse-mode gradient of f(θ) = Σ_batch ψ(x) through the graph.
    let theta_idx = params
        .iter()
        .position(|(_, name, _)| name == "g.theta")
        .expect("quantum parameter vector registered as g.theta");
    let autodiff: Vec<f64> = {
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&xs));
        let out = net.forward_jet1(&mut ctx, x);
        let s = ctx.g.sum(out.v);
        let mut grads = ctx.g.backward(s);
        ctx.collect_grads(&mut grads)[theta_idx].data().to_vec()
    };

    // Parameter-shift on the same scalar, through the value-only path.
    let theta0 = params.tensors()[theta_idx].data().to_vec();
    let f = |t: &[f64]| -> f64 {
        let mut p = params.clone();
        p.tensors_mut()[theta_idx] = Tensor::from_slice(t);
        net.predict(&p, &xs).iter().sum()
    };
    let shift = parameter_shift_gradient(&f, &theta0);

    assert_eq!(autodiff.len(), shift.len());
    let scale = shift.iter().fold(1.0f64, |m, s| m.max(s.abs()));
    for (p, (a, s)) in autodiff.iter().zip(&shift).enumerate() {
        assert!(
            (a - s).abs() <= 1e-8 * scale,
            "theta[{p}]: graph autodiff {a} vs parameter shift {s}"
        );
    }
    // Guard against the vacuous pass where θ sits at a critical point.
    assert!(scale > 1e-4, "gradcheck is vacuous: all shifts ≈ 0 ({scale:e})");
}

#[test]
fn entanglement_diagnostic_tracks_circuit_structure() {
    use qpinn::qcircuit::entanglement::meyer_wallach;
    let mut rng = StdRng::seed_from_u64(9);
    let make = |ansatz: Ansatz, rng: &mut StdRng| -> f64 {
        let layer = QuantumLayer {
            n_qubits: 4,
            layers: 3,
            ansatz,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        let theta = layer.init_params(rng);
        let mut s: State<f64> = State::zero(4);
        ansatz.apply(&mut s, 3, &theta);
        let _ = layer;
        meyer_wallach(&s)
    };
    let product = make(Ansatz::NoEntangling, &mut rng);
    let entangled = make(Ansatz::StronglyEntangling, &mut rng);
    assert!(product < 1e-10, "product ansatz must have Q ≈ 0: {product}");
    assert!(
        entangled > 0.1,
        "entangling ansatz should create entanglement: {entangled}"
    );
}

#[test]
fn all_scalings_produce_trainable_hybrids() {
    // Smoke over the full scaling ablation: loss finite, gradients finite.
    let problem = EigenProblem::harmonic(1.0);
    for scaling in InputScaling::all() {
        let q = QuantumLayer {
            n_qubits: 2,
            layers: 1,
            ansatz: Ansatz::BasicEntangling,
            scaling,
            reupload: false,
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(10);
        let net = HybridNet::new(&mut params, &mut rng, 6, q, "h");
        let mut task = HybridEigenTask::new(problem.clone(), net, 12, 201);
        let log = Trainer::new(TrainConfig {
            epochs: 5,
            schedule: LrSchedule::Constant { lr: 1e-3 },
            log_every: 1,
            eval_every: 0,
            clip: Some(10.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        })
        .train(&mut task, &mut params);
        assert!(
            log.final_loss.is_finite(),
            "{}: loss not finite",
            scaling.name()
        );
        assert!(params.tensors().iter().all(|t| t.all_finite()));
    }
}

#[test]
fn gradcheck_matrix_every_named_ansatz_at_two_to_six_qubits() {
    // The full template table × qubit widths 2–6: autodiff (dual-number
    // jacobians) and the parameter-shift rule are methodologically
    // independent exact-gradient routes, so any disagreement beyond
    // float noise is a bug in one of them. CrossMeshCrz carries
    // controlled rotations whose generator has a zero eigenvalue — the
    // 2-term rule is wrong there, the 4-term rule is exact for both gate
    // classes, so it covers the mixed circuit.
    for ansatz in Ansatz::all() {
        for nq in 2..=6usize {
            let layer = QuantumLayer {
                n_qubits: nq,
                layers: 2,
                ansatz,
                scaling: InputScaling::Acos,
                reupload: false,
            };
            let mut rng = StdRng::seed_from_u64(31 * nq as u64 + ansatz as u64);
            let theta = layer.init_params(&mut rng);
            // Acos scaling wants inputs in [-1, 1].
            let a: Vec<f64> = (0..nq).map(|i| -0.8 + 1.6 * i as f64 / nq as f64).collect();
            let (_, _, jt) = layer.jacobians_sample(&a, &theta);
            let f = |t: &[f64]| -> f64 { layer.forward_sample(&a, t).iter().sum() };
            let shift = if ansatz == Ansatz::CrossMeshCrz {
                qpinn::qcircuit::shift::controlled_shift_gradient(&f, &theta)
            } else {
                parameter_shift_gradient(&f, &theta)
            };
            assert_eq!(shift.len(), theta.len());
            for p in 0..theta.len() {
                let dual: f64 = jt[p].iter().sum();
                assert!(
                    (dual - shift[p]).abs() < 1e-9,
                    "{}@{nq}q param {p}: dual {dual} vs shift {}",
                    ansatz.name(),
                    shift[p]
                );
            }
        }
    }
}

#[test]
fn gradcheck_matrix_reuploading_variants() {
    // Data re-uploading re-applies the input embedding between layers;
    // the shift rule must still hold because the embedding angles are
    // not differentiated.
    for ansatz in [Ansatz::Cascade, Ansatz::Layered, Ansatz::Farhi, Ansatz::SimCirc15] {
        let layer = QuantumLayer {
            n_qubits: 3,
            layers: 2,
            ansatz,
            scaling: InputScaling::Pi,
            reupload: true,
        };
        let mut rng = StdRng::seed_from_u64(77);
        let theta = layer.init_params(&mut rng);
        let a = [0.3, -0.2, 0.5];
        let (_, _, jt) = layer.jacobians_sample(&a, &theta);
        let f = |t: &[f64]| -> f64 { layer.forward_sample(&a, t).iter().sum() };
        let shift = parameter_shift_gradient(&f, &theta);
        for p in 0..theta.len() {
            let dual: f64 = jt[p].iter().sum();
            assert!(
                (dual - shift[p]).abs() < 1e-9,
                "{}+reupload param {p}: dual {dual} vs shift {}",
                ansatz.name(),
                shift[p]
            );
        }
    }
}
