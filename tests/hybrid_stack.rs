//! Integration tests for the hybrid quantum-classical stack: the quantum
//! layer inside a full network, trained end-to-end, and cross-checked
//! against the parameter-shift rule.

use qpinn::core::hybrid::{HybridEigenTask, HybridNet};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::EigenProblem;
use qpinn::qcircuit::shift::parameter_shift_gradient;
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer, State};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn hybrid_training_lowers_the_rayleigh_quotient() {
    let problem = EigenProblem::harmonic(1.0);
    let q = QuantumLayer {
        n_qubits: 3,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(4);
    let net = HybridNet::new(&mut params, &mut rng, 10, q, "h");
    let mut task = HybridEigenTask::new(problem, net, 32, 201);
    let e_before = task.energy(&params);
    let _ = Trainer::new(TrainConfig {
        epochs: 120,
        schedule: LrSchedule::Constant { lr: 5e-3 },
        log_every: 60,
        eval_every: 0,
        clip: Some(50.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
    })
    .train(&mut task, &mut params);
    let e_after = task.energy(&params);
    assert!(
        e_after < e_before,
        "energy should decrease: {e_before} → {e_after}"
    );
    // variational principle: still bounded below by the true ground state
    assert!(e_after > 0.49, "Rayleigh quotient {e_after} below E₀");
}

#[test]
fn dual_number_gradients_agree_with_parameter_shift() {
    // The two independent exact-gradient methods must coincide on a full
    // variational circuit with angle encoding.
    let layer = QuantumLayer {
        n_qubits: 4,
        layers: 3,
        ansatz: Ansatz::StronglyEntangling,
        scaling: InputScaling::Pi,
        reupload: false,
    };
    let mut rng = StdRng::seed_from_u64(8);
    let theta = layer.init_params(&mut rng);
    let a = [0.2, -0.6, 0.4, 0.1];
    let (_, _, jt) = layer.jacobians_sample(&a, &theta);
    // parameter-shift on the summed readout
    let f = |t: &[f64]| -> f64 { layer.forward_sample(&a, t).iter().sum() };
    let shift = parameter_shift_gradient(&f, &theta);
    for p in 0..theta.len() {
        let dual: f64 = jt[p].iter().sum();
        assert!(
            (dual - shift[p]).abs() < 1e-10,
            "param {p}: dual {dual} vs shift {}",
            shift[p]
        );
    }
}

#[test]
fn entanglement_diagnostic_tracks_circuit_structure() {
    use qpinn::qcircuit::entanglement::meyer_wallach;
    let mut rng = StdRng::seed_from_u64(9);
    let make = |ansatz: Ansatz, rng: &mut StdRng| -> f64 {
        let layer = QuantumLayer {
            n_qubits: 4,
            layers: 3,
            ansatz,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        let theta = layer.init_params(rng);
        let mut s: State<f64> = State::zero(4);
        ansatz.apply(&mut s, 3, &theta);
        let _ = layer;
        meyer_wallach(&s)
    };
    let product = make(Ansatz::NoEntangling, &mut rng);
    let entangled = make(Ansatz::StronglyEntangling, &mut rng);
    assert!(product < 1e-10, "product ansatz must have Q ≈ 0: {product}");
    assert!(
        entangled > 0.1,
        "entangling ansatz should create entanglement: {entangled}"
    );
}

#[test]
fn all_scalings_produce_trainable_hybrids() {
    // Smoke over the full scaling ablation: loss finite, gradients finite.
    let problem = EigenProblem::harmonic(1.0);
    for scaling in InputScaling::all() {
        let q = QuantumLayer {
            n_qubits: 2,
            layers: 1,
            ansatz: Ansatz::BasicEntangling,
            scaling,
            reupload: false,
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(10);
        let net = HybridNet::new(&mut params, &mut rng, 6, q, "h");
        let mut task = HybridEigenTask::new(problem.clone(), net, 12, 201);
        let log = Trainer::new(TrainConfig {
            epochs: 5,
            schedule: LrSchedule::Constant { lr: 1e-3 },
            log_every: 1,
            eval_every: 0,
            clip: Some(10.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
        })
        .train(&mut task, &mut params);
        assert!(
            log.final_loss.is_finite(),
            "{}: loss not finite",
            scaling.name()
        );
        assert!(params.tensors().iter().all(|t| t.all_finite()));
    }
}
