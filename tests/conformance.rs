//! Golden-file conformance suite: freezes the externally observable
//! formats — the `qpinn-snapshot` binary container, the
//! `qpinn-metrics-v1` JSON schema, the Prometheus text exposition, the
//! `qpinn-access-v1` access-log JSONL, the `qpinn-traces-v1`
//! `/v1/traces` document, and the `qpinn-run-v1` run-record manifest +
//! epoch-series line — against fixtures committed under
//! `tests/fixtures/`.
//!
//! A diff in any of these files is a *format break*, not a test fluke:
//! old checkpoints, dashboards, and scrapers all parse these bytes. To
//! change a format deliberately, regenerate the fixtures with
//!
//! ```text
//! QPINN_UPDATE_FIXTURES=1 cargo test --test conformance
//! ```
//!
//! review the diff, bump the relevant format/schema version, and commit
//! the new fixtures together with the code change. CI fails on fixture
//! drift that is not committed.

use qpinn::optim::AdamState;
use qpinn::persist::{RunMeta, Snapshot, TrainLogRecord};
use qpinn::telemetry::{prometheus, Registry};
use qpinn::tensor::Tensor;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `actual` against the committed fixture, regenerating it first
/// when `QPINN_UPDATE_FIXTURES=1` is set.
fn assert_matches_fixture(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("QPINN_UPDATE_FIXTURES").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated fixture {}", path.display());
    }
    let expected = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with QPINN_UPDATE_FIXTURES=1",
            path.display()
        )
    });
    if expected != actual {
        // Byte-precise failure message without dumping binary noise.
        let first_diff = expected
            .iter()
            .zip(actual)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(actual.len()));
        panic!(
            "{name} drifted from its committed fixture: \
             fixture {} bytes, actual {} bytes, first difference at offset {first_diff}. \
             If the format change is deliberate, bump its version and regenerate with \
             QPINN_UPDATE_FIXTURES=1 cargo test --test conformance",
            expected.len(),
            actual.len()
        );
    }
}

/// A fully pinned snapshot: every field fixed, no timestamps, no RNG —
/// `encode()` must be byte-stable across runs, platforms, and PRs.
fn pinned_snapshot() -> Snapshot {
    let mut params = qpinn::nn::ParamSet::new();
    params.add(
        "w1",
        Tensor::from_vec([2, 3], vec![1.0, -2.0, 3.5, 0.25, -0.125, 9.0]),
    );
    params.add("b1", Tensor::from_slice(&[0.1, 0.2, 0.3]));
    Snapshot {
        meta: RunMeta {
            run_id: "conformance-v1".into(),
            next_epoch: 1500,
            planned_epochs: 20_000,
            eval_error: 3.25e-3,
        },
        params,
        optim: AdamState {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 1234,
            m: vec![
                Tensor::from_vec([2, 3], vec![0.01; 6]),
                Tensor::from_slice(&[0.5, -0.5, 0.0]),
            ],
            v: vec![
                Tensor::from_vec([2, 3], vec![0.002; 6]),
                Tensor::from_slice(&[1e-4, 2e-4, 3e-4]),
            ],
        },
        log: TrainLogRecord {
            epochs: vec![0, 500, 1000],
            loss: vec![1.0, 0.1, 0.01],
            grad_norm: vec![10.0, 2.0, 0.3],
            eval_epochs: vec![1000],
            error: vec![4.5e-3],
            wall_s: 12.75,
            final_loss: 0.01,
            final_error: 4.5e-3,
        },
        task_state: vec![1, 2, 3, 255],
    }
}

/// A local (non-global) registry with pinned contents, so the fixture is
/// immune to whatever other tests did to the process-wide registry.
fn pinned_registry() -> Registry {
    let r = Registry::default();
    r.counter("train.grad_evals").add(4321);
    r.counter("persist.checkpoint.writes").add(3);
    r.gauge("train.progress.loss").set(0.015625); // dyadic: exact decimal
    r.gauge("train.progress.epoch").set(1500.0);
    let h = r.histogram("phase.forward_ns");
    for v in [100, 200, 400, 800, 1600, 3200, 6400, 1_000_000] {
        h.record(v);
    }
    r
}

#[test]
fn snapshot_binary_format_is_frozen() {
    let snap = pinned_snapshot();
    let bytes = snap.encode();
    assert_matches_fixture("snapshot_v1.qps", &bytes);

    // The committed fixture must also *decode* losslessly — format
    // stability is meaningless if old bytes stop round-tripping.
    let decoded = Snapshot::decode(&std::fs::read(fixture_path("snapshot_v1.qps")).unwrap())
        .expect("committed fixture must decode");
    assert_eq!(decoded.meta, snap.meta);
    assert_eq!(decoded.log, snap.log);
    assert_eq!(decoded.task_state, snap.task_state);
    let (a, b) = (decoded.params.flatten(), snap.params.flatten());
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert_eq!(decoded.optim.t, snap.optim.t);
    assert_eq!(decoded.optim.m.len(), snap.optim.m.len());
}

#[test]
fn metrics_v1_json_schema_is_frozen() {
    let json = pinned_registry().snapshot().to_json();
    assert!(json.starts_with("{\"schema\":\"qpinn-metrics-v1\""));
    assert_matches_fixture("metrics_v1.json", json.as_bytes());
}

/// Pinned access records covering the three observable request shapes:
/// a batched success, a queue-full shed, and a server error.
fn pinned_access_records() -> Vec<qpinn::telemetry::AccessRecord> {
    use qpinn::telemetry::AccessRecord;
    vec![
        AccessRecord {
            trace: "00c0ffee00c0ffee".into(),
            ts_ns: 1_000_000_000,
            route: "/v1/eval".into(),
            model: "tdse@3".into(),
            status: 200,
            shed: String::new(),
            batch: 4,
            points: 128,
            queue_ns: 150_000,
            batch_ns: 2_000_000,
            compute_ns: 5_500_000,
            serialize_ns: 90_000,
            total_ns: 7_900_000,
        },
        AccessRecord {
            trace: "deadbeefcafe1234".into(),
            ts_ns: 1_500_000_000,
            route: "/v1/eval".into(),
            model: "tdse@3".into(),
            status: 429,
            shed: "queue_full".into(),
            batch: 0,
            points: 16,
            queue_ns: 0,
            batch_ns: 0,
            compute_ns: 0,
            serialize_ns: 12_000,
            total_ns: 85_000,
        },
        AccessRecord {
            trace: "0123456789abcdef".into(),
            ts_ns: 2_000_000_000,
            route: "/v1/train".into(),
            model: String::new(),
            status: 500,
            shed: String::new(),
            batch: 0,
            points: 0,
            queue_ns: 0,
            batch_ns: 0,
            compute_ns: 0,
            serialize_ns: 40_000,
            total_ns: 600_000,
        },
    ]
}

#[test]
fn access_v1_jsonl_schema_is_frozen() {
    let jsonl: String = pinned_access_records()
        .iter()
        .map(|r| r.to_json_line() + "\n")
        .collect();
    // Spot-check the schema contract before byte-freezing: versioned
    // lines, the full latency split, and the shed reason.
    assert!(jsonl.starts_with("{\"v\":\"qpinn-access-v1\""));
    assert!(jsonl.contains("\"shed\":\"queue_full\""));
    for key in ["queue_ns", "batch_ns", "compute_ns", "serialize_ns", "total_ns"] {
        assert!(jsonl.contains(&format!("\"{key}\":")), "missing {key}");
    }
    assert_matches_fixture("access_v1.jsonl", jsonl.as_bytes());
    // The frozen bytes must round-trip through the obs-side parser.
    let entries = qpinn::obs::requests::parse_access_log(
        &String::from_utf8(std::fs::read(fixture_path("access_v1.jsonl")).unwrap()).unwrap(),
    )
    .expect("committed fixture must parse");
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[1].shed, "queue_full");
    assert_eq!(entries[2].status, 500);
}

#[test]
fn traces_v1_document_shape_is_frozen() {
    let doc = qpinn::telemetry::access::render_traces(&pinned_access_records(), true);
    assert!(doc.starts_with("{\"schema\":\"qpinn-traces-v1\""));
    assert_matches_fixture("traces_v1.json", doc.as_bytes());
    // The frozen document must stay machine-readable.
    let parsed = qpinn::core::report::Json::parse(
        &String::from_utf8(std::fs::read(fixture_path("traces_v1.json")).unwrap()).unwrap(),
    )
    .unwrap();
    assert_eq!(parsed.get("count").unwrap().as_num(), Some(3.0));
    assert_eq!(parsed.get("enabled").unwrap(), &qpinn::core::report::Json::Bool(true));
}

#[test]
fn prometheus_exposition_is_frozen() {
    let snap = pinned_registry().snapshot();
    let page = prometheus::render(&snap, "qpinn_", &[("run", "conformance"), ("v", "1")]);
    // Spot-check the exposition contract before byte-freezing it: counters
    // carry `_total`, histograms cumulative `le` buckets with `+Inf`.
    assert!(page.contains("qpinn_train_grad_evals_total"));
    assert!(page.contains("le=\"+Inf\""));
    assert_matches_fixture("prometheus_v1.txt", page.as_bytes());
}

/// A fully pinned `qpinn-run-v1` manifest: fixed id, timestamps, and
/// environment — nothing here touches the clock or RNG.
fn pinned_run_manifest() -> qpinn::core::runs::Manifest {
    use qpinn::core::report::Json;
    use qpinn::core::runs::{fnv1a64, Manifest, RunOutcome};
    let config = Json::obj(vec![
        ("task", Json::obj(vec![("problem", Json::Str("free-packet".into()))])),
        (
            "train",
            Json::obj(vec![
                ("epochs", Json::Num(2000.0)),
                ("lr0", Json::Num(1e-3)),
                ("log_every", Json::Num(50.0)),
            ]),
        ),
    ]);
    let config_hash = format!("{:016x}", fnv1a64(&config.to_string()));
    Manifest {
        run_id: "00c0ffee00c0ffee".into(),
        task: "t1/free-packet".into(),
        seed: 7,
        config,
        config_hash,
        threads: 4,
        simd: 4,
        env: vec![
            ("QPINN_SIMD".into(), "4".into()),
            ("QPINN_TRACE".into(), "1".into()),
        ],
        trace: "deadbeefcafe1234".into(),
        start_unix_ms: 1_700_000_000_000,
        end_unix_ms: Some(1_700_000_120_000),
        outcome: RunOutcome::Converged,
        epochs_planned: 2000,
        epochs_run: Some(2000),
        final_loss: Some(1.25e-4),
        final_error: Some(3.5e-3),
    }
}

#[test]
fn run_manifest_v1_schema_is_frozen() {
    let manifest = pinned_run_manifest();
    let doc = manifest.to_json().to_string() + "\n";
    assert!(doc.starts_with("{\"schema\":\"qpinn-run-v1\""));
    assert_matches_fixture("run_manifest_v1.json", doc.as_bytes());
    // The frozen bytes must round-trip through the manifest parser —
    // `runs list/diff/regress` all read old stores through it.
    let parsed = qpinn::core::report::Json::parse(
        &String::from_utf8(std::fs::read(fixture_path("run_manifest_v1.json")).unwrap()).unwrap(),
    )
    .unwrap();
    let back = qpinn::core::runs::Manifest::from_json(&parsed)
        .expect("committed fixture must parse");
    assert_eq!(back.run_id, manifest.run_id);
    assert_eq!(back.config_hash, manifest.config_hash);
    assert_eq!(back.seed, manifest.seed);
    assert_eq!(back.outcome, manifest.outcome);
    assert_eq!(back.env, manifest.env);
    assert_eq!(back.final_loss, manifest.final_loss);
    assert_eq!(back.end_unix_ms, manifest.end_unix_ms);
}

#[test]
fn run_series_v1_epoch_line_is_frozen() {
    use qpinn::core::runs::{EpochPoint, LayerGrad};
    let point = EpochPoint {
        epoch: 50,
        loss: 0.125,
        grad_norm: 2.5,
        lr: 1e-3,
        epoch_ms: 12.5,
        components: vec![
            ("pde".into(), 0.1),
            ("ic".into(), 0.02),
            ("norm".into(), 0.005),
        ],
        layers: vec![
            LayerGrad { name: "w1".into(), norm: 1.5, var: 0.25 },
            LayerGrad { name: "w2".into(), norm: 0.5, var: 0.0625 },
        ],
    };
    let line = point.to_json().to_string() + "\n";
    // Spot-check the per-layer barren-plateau signal before freezing:
    // every layer entry carries both the norm and the variance.
    assert!(line.contains("\"grad\":{\"w1\":{\"norm\":"));
    assert!(line.contains("\"var\":0.0625"));
    assert_matches_fixture("run_series_v1.jsonl", line.as_bytes());
    // And the frozen line must stay machine-readable.
    let parsed = qpinn::core::report::Json::parse(
        String::from_utf8(std::fs::read(fixture_path("run_series_v1.jsonl")).unwrap())
            .unwrap()
            .trim(),
    )
    .unwrap();
    assert_eq!(parsed.get("kind").and_then(|v| v.as_str()), Some("epoch"));
    assert_eq!(parsed.get("epoch").and_then(|v| v.as_num()), Some(50.0));
}

#[test]
fn problems_doc_matches_fixture() {
    // The `qpinn-problems-v1` listing (served at `/v1/problems` and
    // embedded in experiment records) is pure compile-time data: keys,
    // coordinates, output arities, cross-check methods, tolerances, and
    // the named ansatz table. Freezing the rendered JSON pins the
    // registry's externally visible shape — adding a family regenerates
    // the fixture; *losing* one (or its cross-check flags) is a diff a
    // reviewer must see.
    let doc = qpinn::core::problems_doc();
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some(qpinn::core::PROBLEMS_DOC_VERSION)
    );
    let rendered = doc.to_string() + "\n";
    assert_matches_fixture("problems_v1.json", rendered.as_bytes());
    // The frozen document must stay machine-readable and list every
    // registered key in registry order.
    let parsed = qpinn::core::report::Json::parse(
        String::from_utf8(std::fs::read(fixture_path("problems_v1.json")).unwrap())
            .unwrap()
            .trim(),
    )
    .unwrap();
    let listed: Vec<String> = match parsed.get("problems") {
        Some(qpinn::core::report::Json::Arr(items)) => items
            .iter()
            .map(|p| p.get("key").and_then(|k| k.as_str()).unwrap().to_string())
            .collect(),
        other => panic!("problems must be an array, got {other:?}"),
    };
    assert_eq!(listed, qpinn::problems::keys());
}
