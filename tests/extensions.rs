//! Integration smoke tests for the extension features: the 2D TDSE task,
//! the inverse-problem task, and the data-reuploading quantum layer — all
//! driven through the facade crate.

use qpinn::core::task::{InverseTaskConfig, InverseTdseTask, Tdse2dTask, Tdse2dTaskConfig};
use qpinn::core::trainer::{PinnTask, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::{GraphCtx, ParamSet};
use qpinn::optim::LrSchedule;
use qpinn::problems::{Tdse2dProblem, TdseProblem};
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn tdse2d_trains_and_respects_double_periodicity() {
    let problem = Tdse2dProblem::free_packet_2d();
    let mut cfg = Tdse2dTaskConfig::standard(10, 2);
    cfg.rff_features = 8;
    cfg.n_collocation = 64;
    cfg.n_ic_side = 5;
    cfg.conservation_grid = (2, 5);
    cfg.reference = (32, 40, 4);
    cfg.eval_grid = (6, 3);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(0);
    let mut task = Tdse2dTask::new(problem, &cfg, &mut params, &mut rng);
    let log = Trainer::new(TrainConfig {
        epochs: 25,
        schedule: LrSchedule::Constant { lr: 3e-3 },
        log_every: 5,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);
    assert!(log.final_loss < log.loss[0], "2D loss did not drop");
    // double periodicity survives training
    let (lx, ly) = task.problem().lengths();
    let a = task.net().predict(&params, &[vec![0.3, -0.8, 0.2]]);
    let b = task
        .net()
        .predict(&params, &[vec![0.3 + lx, -0.8 + 2.0 * ly, 0.2]]);
    assert!(a.approx_eq(&b, 1e-12));
}

#[test]
fn inverse_task_reports_consistent_metadata() {
    let problem = TdseProblem::mild_harmonic();
    let mut cfg = InverseTaskConfig::standard(&problem, 8, 1);
    cfg.n_collocation = 64;
    cfg.n_observations = 32;
    cfg.omega0 = 0.7;
    cfg.reference = (128, 100, 16);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut task = InverseTdseTask::new(problem, &cfg, &mut params, &mut rng);
    assert_eq!(task.true_omega(), 1.0);
    assert!((task.omega(&params) - 0.7).abs() < 1e-12);
    // one loss/grad cycle runs cleanly
    let mut g = qpinn::autodiff::Graph::new();
    let mut ctx = GraphCtx::new(&mut g, &params);
    let l = task.build_loss(&mut ctx);
    assert!(ctx.g.value(l).item().is_finite());
    let mut grads = ctx.g.backward(l);
    let collected = ctx.collect_grads(&mut grads);
    assert!(collected.iter().all(|t| t.all_finite()));
}

#[test]
fn reuploading_layer_changes_the_model_but_keeps_param_count() {
    let mk = |reupload: bool| QuantumLayer {
        n_qubits: 2,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload,
    };
    let plain = mk(false);
    let re = mk(true);
    assert_eq!(
        plain.n_params(),
        re.n_params(),
        "re-uploading adds no parameters"
    );
    let mut rng = StdRng::seed_from_u64(2);
    let theta = plain.init_params(&mut rng);
    let a = [0.4, -0.3];
    let e_plain = plain.forward_sample(&a, &theta);
    let e_re = re.forward_sample(&a, &theta);
    let diff: f64 = e_plain.iter().zip(&e_re).map(|(x, y)| (x - y).abs()).sum();
    assert!(diff > 1e-6, "re-uploading must change the function: {diff}");
    // and both are valid expectations
    assert!(e_re.iter().all(|v| (-1.0..=1.0).contains(v)));
}

#[test]
fn reuploading_jvp_matches_finite_differences_through_the_layer() {
    let layer = QuantumLayer {
        n_qubits: 2,
        layers: 2,
        ansatz: Ansatz::StronglyEntangling,
        scaling: InputScaling::Asin,
        reupload: true,
    };
    let mut rng = StdRng::seed_from_u64(3);
    let theta = layer.init_params(&mut rng);
    let a = [0.2, -0.5];
    let t = [0.8, 0.4];
    let (_, jvp) = layer.jvp_sample(&a, &t, &theta);
    let h = 1e-6;
    let ap: Vec<f64> = a.iter().zip(&t).map(|(x, d)| x + h * d).collect();
    let am: Vec<f64> = a.iter().zip(&t).map(|(x, d)| x - h * d).collect();
    let fp = layer.forward_sample(&ap, &theta);
    let fm = layer.forward_sample(&am, &theta);
    for k in 0..2 {
        let fd = (fp[k] - fm[k]) / (2.0 * h);
        assert!((jvp[k] - fd).abs() < 1e-5, "k={k}: {} vs {fd}", jvp[k]);
    }
}
