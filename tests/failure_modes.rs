//! Failure-injection tests: the library must fail loudly and precisely on
//! misuse, and stay numerically sane on adversarial-but-legal inputs.

use qpinn::dual::Complex64;
use qpinn::nn::{GraphCtx, ParamSet};
use qpinn::optim::{Lbfgs, LbfgsOutcome};
use qpinn::sampling::Domain;
use qpinn::solvers::{split_step_evolve, Grid1d, Nonlinearity};
use qpinn::tensor::Tensor;

#[test]
#[should_panic(expected = "matmul")]
fn matmul_dimension_mismatch_names_the_op() {
    let a = Tensor::zeros([2, 3]);
    let b = Tensor::zeros([4, 2]);
    let _ = a.matmul(&b);
}

#[test]
#[should_panic]
fn backward_from_vector_output_is_rejected() {
    let mut g = qpinn::autodiff::Graph::new();
    let x = g.input(Tensor::from_slice(&[1.0, 2.0]));
    let y = g.tanh(x);
    let _ = g.backward(y);
}

#[test]
#[should_panic(expected = "periodicity")]
fn split_step_rejects_dirichlet_grids() {
    let grid = Grid1d::dirichlet(-1.0, 1.0, 65);
    let psi0 = vec![Complex64::zero(); 65];
    let _ = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, 1.0, 10, 10);
}

#[test]
#[should_panic(expected = "2^k")]
fn split_step_rejects_non_power_of_two() {
    let grid = Grid1d::periodic(-1.0, 1.0, 100);
    let psi0 = vec![Complex64::zero(); 100];
    let _ = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, 1.0, 10, 10);
}

#[test]
#[should_panic(expected = "degenerate")]
fn domain_rejects_inverted_intervals() {
    let _ = Domain::new(&[(1.0, 1.0)]);
}

#[test]
#[should_panic(expected = "Halton")]
fn halton_rejects_high_dimensions() {
    let d = Domain::new(&[(0.0, 1.0); 9]);
    let _ = qpinn::sampling::halton_points(&d, 10);
}

#[test]
fn lbfgs_reports_line_search_failure_on_pathological_objective() {
    // A discontinuous staircase objective with a fake gradient breaks the
    // Wolfe conditions; the optimizer must report that rather than loop.
    let res = Lbfgs::default().minimize(
        |x| {
            let f = x[0].floor().abs() + 1.0;
            (f, vec![1.0]) // inconsistent gradient
        },
        vec![5.3],
    );
    assert!(
        matches!(
            res.outcome,
            LbfgsOutcome::LineSearchFailed | LbfgsOutcome::FConverged | LbfgsOutcome::MaxIters
        ),
        "{:?}",
        res.outcome
    );
    assert!(res.f.is_finite());
}

#[test]
fn adam_survives_extreme_gradients_with_clipping() {
    use qpinn::optim::{clip, Adam, Optimizer};
    let mut params = vec![Tensor::from_slice(&[1.0, -1.0])];
    let mut opt = Adam::new(1e-3);
    let mut grads = vec![Tensor::from_slice(&[1e30, -1e30])];
    let pre = clip::clip_global_norm(&mut grads, 1.0);
    assert!(pre > 1e29);
    opt.step(&mut params, &grads);
    assert!(params[0].all_finite());
    assert!(
        (params[0].data()[0] - 1.0).abs() < 2e-3,
        "step stayed bounded"
    );
}

#[test]
fn collect_grads_is_total_even_for_untouched_params() {
    // A loss touching no parameter still yields a full, zero gradient list.
    let mut params = ParamSet::new();
    params.add("w", Tensor::from_slice(&[1.0, 2.0, 3.0]));
    let mut g = qpinn::autodiff::Graph::new();
    let ctx = GraphCtx::new(&mut g, &params);
    let c = ctx.g.constant(Tensor::from_slice(&[5.0]));
    let loss = ctx.g.mse(c);
    let mut grads = ctx.g.backward(loss);
    let collected = ctx.collect_grads(&mut grads);
    assert_eq!(collected.len(), 1);
    assert!(collected[0].data().iter().all(|&x| x == 0.0));
}

#[test]
fn predictions_stay_finite_for_extreme_inputs() {
    // tanh saturation + periodic wrapping must keep outputs finite far
    // outside the training box.
    use qpinn::core::{FieldNet, FieldNetConfig};
    use rand::{rngs::StdRng, SeedableRng};
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(0);
    let net = FieldNet::new(
        &mut params,
        &mut rng,
        &FieldNetConfig::standard_wave(4.0, 1.0, 8, 2),
        "n",
    );
    let out = net.predict(
        &params,
        &[vec![1e6, 1e6], vec![-1e6, -42.0], vec![0.0, 1e3]],
    );
    assert!(out.all_finite());
}
