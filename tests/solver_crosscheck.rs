//! Cross-validation of the independent reference solvers against each
//! other and against closed forms — the numerical ground truth every PINN
//! error in the tables rests on.

use qpinn::dual::Complex64;
use qpinn::problems::{EigenProblem, GaussianPacket, Potential, TdseProblem};
use qpinn::solvers::{
    bound_states, crank_nicolson_tdse, split_step_evolve, Grid1d, Nonlinearity,
};

#[test]
fn crank_nicolson_and_split_step_agree_on_harmonic_evolution() {
    // Same physics, two unrelated discretizations: spectral Strang
    // splitting (periodic) vs 3-point Cayley stepping (Dirichlet). On a
    // domain where the wavefunction never reaches the edges, both must
    // produce the same field.
    let packet = GaussianPacket {
        x0: 1.0,
        sigma: 0.5,
        k0: 0.0,
    };
    let v = Potential::Harmonic { omega: 2.0 };
    let t_end = 1.0;

    let pgrid = Grid1d::periodic(-8.0, 8.0, 256);
    let psi0p: Vec<Complex64> = pgrid.points().iter().map(|&x| packet.eval(x)).collect();
    let fs = split_step_evolve(
        &pgrid,
        &|x| v.eval(x),
        Nonlinearity::None,
        &psi0p,
        t_end,
        2000,
        2000,
    );

    let dgrid = Grid1d::dirichlet(-8.0, 8.0, 1025);
    let psi0d: Vec<Complex64> = dgrid.points().iter().map(|&x| packet.eval(x)).collect();
    let fc = crank_nicolson_tdse(&dgrid, &|x| v.eval(x), &psi0d, t_end, 4000, 4000);

    let mut worst = 0.0f64;
    for i in 0..60 {
        let x = -5.0 + 10.0 * i as f64 / 59.0;
        let a = fs.sample(x, t_end);
        let b = fc.sample(x, t_end);
        worst = worst.max((a - b).abs());
    }
    assert!(worst < 3e-3, "solver disagreement {worst}");
}

#[test]
fn problem_reference_matches_closed_form_free_packet() {
    let problem = TdseProblem::free_packet();
    let f = problem.reference(512, 1000, 32);
    let mut worst = 0.0f64;
    for &t in &[0.3, 0.7, 1.0] {
        for i in 0..40 {
            let x = -4.0 + 8.0 * i as f64 / 39.0;
            let got = f.sample(x, t);
            let want = problem.analytic(x, t).unwrap();
            worst = worst.max((got - want).abs());
        }
    }
    assert!(worst < 5e-4, "worst deviation {worst}");
}

#[test]
fn eigensolver_matches_both_exact_spectra() {
    for problem in [EigenProblem::infinite_well(), EigenProblem::harmonic(1.0)] {
        let exact = problem.exact_energies().unwrap();
        let states = problem.reference(801);
        for (s, e) in states.iter().zip(&exact) {
            assert!(
                (s.energy - e).abs() < 3e-3 * e.max(1.0),
                "{}: {} vs {e}",
                problem.name,
                s.energy
            );
        }
    }
}

#[test]
fn barrier_transmission_increases_with_energy() {
    // Physics sanity across the stack: higher incident momentum → more
    // transmission through the same barrier.
    let barrier = Potential::Barrier {
        height: 2.0,
        width: 0.8,
    };
    let trans = |k0: f64| -> f64 {
        let grid = Grid1d::periodic(-20.0, 20.0, 256);
        let packet = GaussianPacket {
            x0: -8.0,
            sigma: 1.2,
            k0,
        };
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| packet.eval(x)).collect();
        let f = split_step_evolve(
            &grid,
            &|x| barrier.eval(x),
            Nonlinearity::None,
            &psi0,
            16.0 / k0,
            800,
            800,
        );
        let last = f.slice(f.n_slices() - 1);
        let (mut l, mut r) = (0.0, 0.0);
        for (x, c) in grid.points().iter().zip(last) {
            if *x < 0.0 {
                l += c.norm_sqr();
            } else {
                r += c.norm_sqr();
            }
        }
        r / (l + r)
    };
    let t_low = trans(1.2);
    let t_high = trans(3.0);
    assert!(t_low < t_high, "transmission not monotone: {t_low} vs {t_high}");
    assert!(t_high > 0.8, "high-energy packet should mostly pass: {t_high}");
    assert!(t_low < 0.5, "low-energy packet should mostly reflect: {t_low}");
}

#[test]
fn fd_eigenstate_is_stationary_under_cn() {
    // Full-stack consistency: an eigensolver state fed into the CN
    // propagator only rotates its phase.
    let problem = EigenProblem::harmonic(1.0);
    let grid = Grid1d::dirichlet(problem.x0, problem.x1, 401);
    let v = problem.potential;
    let gs = &bound_states(&grid, &move |x| v.eval(x), 1)[0];
    let psi0: Vec<Complex64> = gs.psi.iter().map(|&p| Complex64::new(p, 0.0)).collect();
    let f = crank_nicolson_tdse(&grid, &move |x| v.eval(x), &psi0, 1.0, 500, 500);
    let last = f.slice(f.n_slices() - 1);
    for (a, b) in psi0.iter().zip(last) {
        assert!((a.norm_sqr() - b.norm_sqr()).abs() < 1e-8);
    }
    // and the phase advance matches e^{−iEt}
    let i_mid = 200; // interior point with significant amplitude
    let phase = (last[i_mid] / psi0[i_mid]).arg();
    let want = (-gs.energy * 1.0).rem_euclid(2.0 * std::f64::consts::PI);
    let got = phase.rem_euclid(2.0 * std::f64::consts::PI);
    let diff = (got - want).abs().min(2.0 * std::f64::consts::PI - (got - want).abs());
    assert!(diff < 1e-3, "phase {got} vs {want}");
}
