//! Cross-validation of the independent reference solvers against each
//! other and against closed forms — the numerical ground truth every PINN
//! error in the tables rests on.

use qpinn::dual::Complex64;
use qpinn::problems::{EigenProblem, GaussianPacket, Potential, TdseProblem};
use qpinn::solvers::{
    bound_states, crank_nicolson_tdse, split_step_evolve, Grid1d, Nonlinearity,
};

#[test]
fn crank_nicolson_and_split_step_agree_on_harmonic_evolution() {
    // Same physics, two unrelated discretizations: spectral Strang
    // splitting (periodic) vs 3-point Cayley stepping (Dirichlet). On a
    // domain where the wavefunction never reaches the edges, both must
    // produce the same field.
    let packet = GaussianPacket {
        x0: 1.0,
        sigma: 0.5,
        k0: 0.0,
    };
    let v = Potential::Harmonic { omega: 2.0 };
    let t_end = 1.0;

    let pgrid = Grid1d::periodic(-8.0, 8.0, 256);
    let psi0p: Vec<Complex64> = pgrid.points().iter().map(|&x| packet.eval(x)).collect();
    let fs = split_step_evolve(
        &pgrid,
        &|x| v.eval(x),
        Nonlinearity::None,
        &psi0p,
        t_end,
        2000,
        2000,
    );

    let dgrid = Grid1d::dirichlet(-8.0, 8.0, 1025);
    let psi0d: Vec<Complex64> = dgrid.points().iter().map(|&x| packet.eval(x)).collect();
    let fc = crank_nicolson_tdse(&dgrid, &|x| v.eval(x), &psi0d, t_end, 4000, 4000);

    let mut worst = 0.0f64;
    for i in 0..60 {
        let x = -5.0 + 10.0 * i as f64 / 59.0;
        let a = fs.sample(x, t_end);
        let b = fc.sample(x, t_end);
        worst = worst.max((a - b).abs());
    }
    assert!(worst < 3e-3, "solver disagreement {worst}");
}

#[test]
fn problem_reference_matches_closed_form_free_packet() {
    let problem = TdseProblem::free_packet();
    let f = problem.reference(512, 1000, 32);
    let mut worst = 0.0f64;
    for &t in &[0.3, 0.7, 1.0] {
        for i in 0..40 {
            let x = -4.0 + 8.0 * i as f64 / 39.0;
            let got = f.sample(x, t);
            let want = problem.analytic(x, t).unwrap();
            worst = worst.max((got - want).abs());
        }
    }
    assert!(worst < 5e-4, "worst deviation {worst}");
}

#[test]
fn eigensolver_matches_both_exact_spectra() {
    for problem in [EigenProblem::infinite_well(), EigenProblem::harmonic(1.0)] {
        let exact = problem.exact_energies().unwrap();
        let states = problem.reference(801);
        for (s, e) in states.iter().zip(&exact) {
            assert!(
                (s.energy - e).abs() < 3e-3 * e.max(1.0),
                "{}: {} vs {e}",
                problem.name,
                s.energy
            );
        }
    }
}

#[test]
fn barrier_transmission_increases_with_energy() {
    // Physics sanity across the stack: higher incident momentum → more
    // transmission through the same barrier.
    let barrier = Potential::Barrier {
        height: 2.0,
        width: 0.8,
    };
    let trans = |k0: f64| -> f64 {
        let grid = Grid1d::periodic(-20.0, 20.0, 256);
        let packet = GaussianPacket {
            x0: -8.0,
            sigma: 1.2,
            k0,
        };
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| packet.eval(x)).collect();
        let f = split_step_evolve(
            &grid,
            &|x| barrier.eval(x),
            Nonlinearity::None,
            &psi0,
            16.0 / k0,
            800,
            800,
        );
        let last = f.slice(f.n_slices() - 1);
        let (mut l, mut r) = (0.0, 0.0);
        for (x, c) in grid.points().iter().zip(last) {
            if *x < 0.0 {
                l += c.norm_sqr();
            } else {
                r += c.norm_sqr();
            }
        }
        r / (l + r)
    };
    let t_low = trans(1.2);
    let t_high = trans(3.0);
    assert!(t_low < t_high, "transmission not monotone: {t_low} vs {t_high}");
    assert!(t_high > 0.8, "high-energy packet should mostly pass: {t_high}");
    assert!(t_low < 0.5, "low-energy packet should mostly reflect: {t_low}");
}

#[test]
fn fd_eigenstate_is_stationary_under_cn() {
    // Full-stack consistency: an eigensolver state fed into the CN
    // propagator only rotates its phase.
    let problem = EigenProblem::harmonic(1.0);
    let grid = Grid1d::dirichlet(problem.x0, problem.x1, 401);
    let v = problem.potential;
    let gs = &bound_states(&grid, &move |x| v.eval(x), 1)[0];
    let psi0: Vec<Complex64> = gs.psi.iter().map(|&p| Complex64::new(p, 0.0)).collect();
    let f = crank_nicolson_tdse(&grid, &move |x| v.eval(x), &psi0, 1.0, 500, 500);
    let last = f.slice(f.n_slices() - 1);
    for (a, b) in psi0.iter().zip(last) {
        assert!((a.norm_sqr() - b.norm_sqr()).abs() < 1e-8);
    }
    // and the phase advance matches e^{−iEt}
    let i_mid = 200; // interior point with significant amplitude
    let phase = (last[i_mid] / psi0[i_mid]).arg();
    let want = (-gs.energy * 1.0).rem_euclid(2.0 * std::f64::consts::PI);
    let got = phase.rem_euclid(2.0 * std::f64::consts::PI);
    let diff = (got - want).abs().min(2.0 * std::f64::consts::PI - (got - want).abs());
    assert!(diff < 1e-3, "phase {got} vs {want}");
}

// ---------------------------------------------------------------------------
// Registry-wide cross-checks: every family in the problem zoo must earn
// its reference. These iterate `qpinn::problems::keys()`, so registering
// a family without a working cross-check fails CI here — removing a
// family's check is equally visible because the coverage counters below
// are floors, not snapshots.

use qpinn::problems::{Fidelity, RefSolution};

/// Interior sample points of a reference solution: grid nodes with two
/// boundary nodes skipped per axis, subsampled to at most 4 per axis.
fn interior_nodes(reference: &dyn RefSolution) -> Vec<Vec<f64>> {
    let grids = reference.grids();
    let mut per_axis: Vec<Vec<f64>> = Vec::new();
    for axis in &grids {
        let (lo, hi) = (2usize, axis.len().saturating_sub(2));
        assert!(hi > lo, "reference grid too coarse: {} nodes", axis.len());
        let stride = ((hi - lo) / 4).max(1);
        per_axis.push((lo..hi).step_by(stride).map(|i| axis[i]).collect());
    }
    let mut out: Vec<Vec<f64>> = vec![Vec::new()];
    for axis in &per_axis {
        let mut next = Vec::with_capacity(out.len() * axis.len());
        for tail in &out {
            for &x in axis {
                let mut t = tail.clone();
                t.push(x);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Relative L2 distance between two references sampled at `points`.
fn rel_l2(a: &dyn RefSolution, b: &dyn RefSolution, points: &[Vec<f64>]) -> f64 {
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for p in points {
        for (x, y) in a.sample(p).iter().zip(b.sample(p)) {
            num += (x - y) * (x - y);
            den += y * y;
        }
    }
    (num / den.max(1e-300)).sqrt()
}

#[test]
fn every_family_has_an_analytic_or_independent_cross_check() {
    let mut analytic_families = 0;
    let mut independent_families = 0;
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        let coords = problem.coords();
        let midpoint: Vec<f64> = coords.iter().map(|c| 0.5 * (c.lo + c.hi)).collect();
        let has_analytic = problem.analytic(&midpoint).is_some();
        let has_independent = problem.independent_check().is_some();
        assert!(
            has_analytic || has_independent,
            "{key}: no closed form and no independent solver — \
             the registry requires one of the two"
        );
        assert!(
            !problem.check_method().is_empty(),
            "{key}: check_method must document the cross-check"
        );
        analytic_families += has_analytic as usize;
        independent_families += has_independent as usize;
    }
    // Coverage floors: dropping a cross-check fails here even when the
    // family still has the other kind.
    assert!(analytic_families >= 7, "only {analytic_families} closed forms left");
    assert!(independent_families >= 4, "only {independent_families} independent solvers left");
}

#[test]
fn independent_solvers_agree_with_the_primary_reference() {
    let mut checked = 0;
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        let Some(independent) = problem.independent_check() else {
            continue;
        };
        let reference = problem.reference(Fidelity::Quick);
        let points = interior_nodes(reference.as_ref());
        let rel = rel_l2(reference.as_ref(), independent.as_ref(), &points);
        assert!(
            rel < 0.05,
            "{key}: primary reference and independent solver disagree \
             (rel-L2 {rel:.3e}) — methodologically independent \
             discretizations must converge to the same field"
        );
        checked += 1;
    }
    assert!(checked >= 4, "only {checked} families ran the two-solver check");
}

#[test]
fn quick_and_full_fidelity_references_converge_to_each_other() {
    // Resolution-doubling consistency: Quick and Full are the *same*
    // method at different resolutions, so disagreement means the solver
    // has not converged at Quick fidelity (which every smoke test uses).
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        let quick = problem.reference(Fidelity::Quick);
        let full = problem.reference(Fidelity::Full);
        let points = interior_nodes(quick.as_ref());
        let rel = rel_l2(quick.as_ref(), full.as_ref(), &points);
        assert!(
            rel < 0.05,
            "{key}: Quick-fidelity reference is not converged (rel-L2 {rel:.3e} vs Full)"
        );
    }
}
