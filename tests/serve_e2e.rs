//! End-to-end exercise of the `qpinn-serve` inference plane over real
//! TCP: train a model *through the server*, poll its progress, then
//! check that batched `/v1/eval` responses are bit-identical to direct
//! in-process evaluation — including when many clients overlap and
//! coalesce into shared forward passes — and that admission control and
//! failure injection degrade the way the design promises.

use qpinn::core::report::Json;
use qpinn::core::task::TdseTask;
use qpinn::core::trainer::Trainer;
use qpinn::nn::ParamSet;
use qpinn::serve::{BatchConfig, ServeConfig, ServeServer, TrainRequest};
use qpinn::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `ServeServer::start` installs a progress-tracker telemetry sink, and
/// the coalescing assertions read process-global histograms; keep the
/// tests that do either from overlapping.
static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Send one HTTP request, return (full header block, parsed JSON body).
/// The first line of the header block is the status line.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, Json) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    match body {
        Some(b) => write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        )
        .unwrap(),
        None => write!(s, "{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap(),
    }
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    let json = Json::parse(body).unwrap_or(Json::Null);
    (head.to_string(), json)
}

fn poll_to_completion(addr: SocketAddr, job_id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut saw_progress = false;
    loop {
        let (status, doc) = http(addr, "GET", &format!("/v1/jobs/{job_id}/progress"), None);
        assert!(
            status.contains("200"),
            "progress poll failed: {status} {}",
            doc.to_string()
        );
        let state = doc.get("state").unwrap().as_str().unwrap().to_string();
        if doc.get("epoch").unwrap().as_num().unwrap() > 0.0 {
            saw_progress = true;
        }
        if state == "completed" {
            assert!(saw_progress, "never observed a live epoch count while polling");
            return doc;
        }
        assert_ne!(state, "failed", "job failed: {}", doc.to_string());
        assert!(Instant::now() < deadline, "job did not finish in time");
        std::thread::sleep(Duration::from_millis(25));
    }
}

const TRAIN_BODY: &str = r#"{"model_id":"e2e","problem":"harmonic","width":8,"depth":1,
    "epochs":8,"seed":33,"n_collocation":48}"#;

/// The tentpole acceptance path: train via the server, poll progress to
/// completion, evaluate >1000 points over HTTP, and compare every f64
/// bit-for-bit against the same trainer run in-process.
#[test]
fn train_poll_eval_matches_in_process_training_bitwise() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("train-eval");
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(&dir)).unwrap();
    let addr = server.local_addr();

    let (status, doc) = http(addr, "GET", "/healthz", None);
    assert!(status.contains("200 OK"), "{status}");
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));

    // Submit the train job and follow it to completion.
    let (status, accepted) = http(addr, "POST", "/v1/train", Some(TRAIN_BODY));
    assert!(status.contains("202"), "{status}");
    let job_id = accepted.get("job_id").unwrap().as_str().unwrap().to_string();
    let done = poll_to_completion(addr, &job_id);
    assert_eq!(done.get("version").unwrap().as_num(), Some(1.0));

    // The model shows up in the registry listing.
    let (_, models) = http(addr, "GET", "/v1/models", None);
    let rows = match models.get("models").unwrap() {
        Json::Arr(rows) => rows,
        other => panic!("models is not an array: {}", other.to_string()),
    };
    assert!(rows
        .iter()
        .any(|m| m.get("id").unwrap().as_str() == Some("e2e")));

    // Reference: the identical training run, entirely in-process. The
    // stack is bit-deterministic at any pool width, so equality here is
    // exact, not approximate.
    let req = TrainRequest::from_json(&Json::parse(TRAIN_BODY).unwrap()).unwrap();
    let (problem, cfg) = qpinn::serve::jobs::job_task_config(&req).unwrap();
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(req.seed);
    let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    Trainer::new(qpinn::serve::jobs::job_train_config(&req, None)).train(&mut task, &mut params);

    // 1050 points on a grid over the domain.
    let pts: Vec<(f64, f64)> = (0..1050)
        .map(|i| {
            let x = -6.0 + 12.0 * ((i % 50) as f64 / 49.0);
            let t = 0.5 * ((i / 50) as f64 / 20.0);
            (x, t)
        })
        .collect();
    let coords: Vec<f64> = pts.iter().flat_map(|&(x, t)| [x, t]).collect();
    let expect = task.net().predict_batch(&params, &coords);
    let expect = expect.data();

    let points_json = pts
        .iter()
        .map(|(x, t)| format!("[{x},{t}]"))
        .collect::<Vec<_>>()
        .join(",");
    let (status, reply) = http(
        addr,
        "POST",
        "/v1/eval",
        Some(&format!(
            r#"{{"model":"e2e@latest","points":[{points_json}]}}"#
        )),
    );
    assert!(status.contains("200 OK"), "{status} {}", reply.to_string());
    assert_eq!(reply.get("version").unwrap().as_num(), Some(1.0));
    let values = match reply.get("values").unwrap() {
        Json::Arr(rows) => rows,
        other => panic!("values is not an array: {}", other.to_string()),
    };
    assert_eq!(values.len(), pts.len());
    // JSON carries f64s through Rust's shortest-roundtrip formatting and
    // correctly-rounded parse, so even transport preserves the bits.
    let mut idx = 0usize;
    for row in values {
        let Json::Arr(fields) = row else { panic!("row is not an array") };
        assert_eq!(fields.len(), 2);
        for f in fields {
            let got = f.as_num().unwrap();
            assert_eq!(
                got.to_bits(),
                expect[idx].to_bits(),
                "served value differs from in-process at flat index {idx}"
            );
            idx += 1;
        }
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent clients must coalesce into shared forward passes —
/// observed through the `serve.batch.size` histogram — while every
/// client still gets bit-identical answers to a solo request.
#[test]
fn overlapping_clients_coalesce_and_stay_bit_identical() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("coalesce");
    let mut cfg = ServeConfig::new(&dir);
    // A generous linger window makes coalescing deterministic under load.
    cfg.batch = BatchConfig {
        window: Duration::from_millis(250),
        ..BatchConfig::default()
    };
    cfg.workers = 8;
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let (status, accepted) = http(
        addr,
        "POST",
        "/v1/train",
        Some(r#"{"model_id":"cc","width":8,"depth":1,"epochs":4,"seed":5,"n_collocation":32}"#),
    );
    assert!(status.contains("202"), "{status}");
    let job_id = accepted.get("job_id").unwrap().as_str().unwrap().to_string();
    poll_to_completion(addr, &job_id);

    // Solo references, one request per client payload, sequentially
    // (nothing to coalesce with ⇒ batch of 1).
    let payloads: Vec<String> = (0..6)
        .map(|c| {
            let pts = (0..8)
                .map(|j| format!("[{},{}]", -5.0 + c as f64 + 0.11 * j as f64, 0.02 * j as f64))
                .collect::<Vec<_>>()
                .join(",");
            format!(r#"{{"model":"cc","points":[{pts}]}}"#)
        })
        .collect();
    let solo: Vec<String> = payloads
        .iter()
        .map(|p| {
            let (status, body) = http(addr, "POST", "/v1/eval", Some(p));
            assert!(status.contains("200 OK"), "{status}");
            body.get("values").unwrap().to_string()
        })
        .collect();

    let before = telemetry::histogram(telemetry::names::SERVE_BATCH_SIZE).snapshot();

    // Now all six at once, inside one linger window.
    let clients: Vec<_> = payloads
        .iter()
        .cloned()
        .map(|p| {
            std::thread::spawn(move || {
                let (status, body) = http(addr, "POST", "/v1/eval", Some(&p));
                assert!(status.contains("200 OK"), "{status}");
                body.get("values").unwrap().to_string()
            })
        })
        .collect();
    let concurrent: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (got, want) in concurrent.iter().zip(&solo) {
        assert_eq!(got, want, "coalesced response differs from solo response");
    }

    // The histogram must have recorded a batch of >= 2 requests during
    // the concurrent round (the acceptance criterion for coalescing).
    let after = telemetry::histogram(telemetry::names::SERVE_BATCH_SIZE).snapshot();
    let new_ge2: u64 = after
        .buckets
        .iter()
        .zip(before.buckets.iter())
        .enumerate()
        // log2 buckets: index 0 holds value 1; index >= 1 holds values >= 2.
        .skip(1)
        .map(|(_, (a, b))| a - b)
        .sum();
    assert!(
        new_ge2 >= 1,
        "no eval batch with >=2 coalesced requests was recorded; before={:?} after={:?}",
        before.buckets,
        after.buckets
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: with a zero-slot eval queue every request sheds
/// with `429` and a `Retry-After` header instead of queueing without
/// bound, and unknown models/jobs map to clean 4xx.
#[test]
fn admission_and_error_mapping() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("admission");
    let mut cfg = ServeConfig::new(&dir);
    cfg.batch = BatchConfig {
        queue_cap: 0,
        ..BatchConfig::default()
    };
    let server = ServeServer::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // Publish a model directly through the registry (no training needed
    // to exercise admission).
    {
        use qpinn::core::model::{FieldNet, FieldNetConfig};
        let spec = qpinn::serve::ModelSpec {
            name: "tdse".into(),
            seed: 3,
            problem: String::new(),
            net: FieldNetConfig::standard_wave(12.0, 1.0, 8, 1),
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let _ = FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
        server
            .registry()
            .publish("full", &spec, &params, Default::default(), 1, 0.0)
            .unwrap();
    }
    let (status, _) = http(addr, "POST", "/v1/eval", Some(r#"{"model":"full","points":[[0,0]]}"#));
    assert!(status.contains("429"), "{status}");
    assert!(status.contains("Retry-After:"), "missing Retry-After in:\n{status}");

    let (status, _) = http(addr, "POST", "/v1/eval", Some(r#"{"model":"ghost","points":[[0,0]]}"#));
    assert!(status.contains("404"), "{status}");
    let (status, _) = http(addr, "POST", "/v1/eval", Some(r#"{"model":"bad@ref@","points":[[0,0]]}"#));
    assert!(status.contains("400"), "{status}");
    let (status, _) = http(addr, "POST", "/v1/eval", Some("not json"));
    assert!(status.contains("400"), "{status}");
    let (status, _) = http(addr, "GET", "/v1/jobs/job-77/progress", None);
    assert!(status.contains("404"), "{status}");
    let (status, _) = http(addr, "POST", "/v1/train", Some(r#"{"problem":"harmonic"}"#));
    assert!(status.contains("400"), "{status}");
    let (status, _) = http(addr, "DELETE", "/v1/models", None);
    assert!(status.contains("405"), "{status}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos: arm the `fs.enospc` failpoint during a train job's registry
/// publish. The job must degrade to `503` on its progress route while
/// the previously published model stays intact and servable.
#[test]
fn enospc_during_publish_degrades_without_corrupting_served_models() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("enospc");
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(&dir)).unwrap();
    let addr = server.local_addr();

    // First job publishes version 1 cleanly.
    let body = r#"{"model_id":"dura","width":8,"depth":1,"epochs":3,"seed":9,"n_collocation":32}"#;
    let (_, accepted) = http(addr, "POST", "/v1/train", Some(body));
    let job1 = accepted.get("job_id").unwrap().as_str().unwrap().to_string();
    poll_to_completion(addr, &job1);
    let (status, reply) = http(addr, "POST", "/v1/eval", Some(r#"{"model":"dura","points":[[0.5,0.1]]}"#));
    assert!(status.contains("200 OK"), "{status} {}", reply.to_string());

    // Second job trains fine but hits a full disk at publish time.
    let _fp = qpinn::testkit::arm("fs.enospc", qpinn::testkit::Trigger::Always);
    let (_, accepted) = http(addr, "POST", "/v1/train", Some(body));
    let job2 = accepted.get("job_id").unwrap().as_str().unwrap().to_string();
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, doc) = http(addr, "GET", &format!("/v1/jobs/{job2}/progress"), None);
        let state = doc.get("state").unwrap().as_str().unwrap().to_string();
        if state == "failed" {
            // The failed job is served under 503 with the cause attached.
            assert!(status.contains("503"), "{status}");
            let err = doc.get("error").unwrap().as_str().unwrap();
            assert!(err.contains("publish failed"), "unexpected error: {err}");
            break;
        }
        assert_ne!(state, "completed", "publish should have failed under enospc");
        assert!(Instant::now() < deadline, "job did not fail in time");
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(_fp);

    // Version 1 is still intact, still resolvable, still serving.
    let (status, reply) = http(addr, "POST", "/v1/eval", Some(r#"{"model":"dura@1","points":[[0.5,0.1]]}"#));
    assert!(status.contains("200 OK"), "{status} {}", reply.to_string());
    let (_, models) = http(addr, "GET", "/v1/models", None);
    let Json::Arr(rows) = models.get("models").unwrap() else { panic!() };
    let dura: Vec<_> = rows
        .iter()
        .filter(|m| m.get("id").unwrap().as_str() == Some("dura"))
        .collect();
    assert_eq!(dura.len(), 1, "failed publish must not leave a second version");
    assert_eq!(dura[0].get("intact").unwrap(), &Json::Bool(true));

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

const GS_TRAIN_BODY: &str = r#"{"model_id":"gs-e2e","problem":"gray-scott","width":8,"depth":1,
    "epochs":6,"seed":91,"n_collocation":40}"#;

/// The first vector-valued family through the whole persistence loop:
/// train a 2-component Gray–Scott surrogate via the server, evict it
/// from memory by restarting on the same model directory (so `/v1/eval`
/// must rebuild from the published snapshot), and require every served
/// f64 to match the identical in-process training run bit-for-bit.
#[test]
fn gray_scott_trains_persists_and_serves_bit_exactly() {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("gs-train-eval");
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(&dir)).unwrap();
    let addr = server.local_addr();

    let (status, accepted) = http(addr, "POST", "/v1/train", Some(GS_TRAIN_BODY));
    assert!(status.contains("202"), "{status}");
    let job_id = accepted.get("job_id").unwrap().as_str().unwrap().to_string();
    poll_to_completion(addr, &job_id);
    server.stop();

    // A fresh server over the same directory has only the snapshot on
    // disk — the eval path below exercises decode + spec rebuild, not a
    // warm cache.
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(&dir)).unwrap();
    let addr = server.local_addr();

    // Reference: identical training entirely in-process.
    let req = TrainRequest::from_json(&Json::parse(GS_TRAIN_BODY).unwrap()).unwrap();
    let cfg = qpinn::serve::jobs::job_zoo_config(&req);
    let problem = qpinn::problems::lookup(&req.problem).unwrap();
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(req.seed);
    let mut task = qpinn::core::ZooTask::new(problem, &cfg, &mut params, &mut rng);
    Trainer::new(qpinn::serve::jobs::job_train_config(&req, None)).train(&mut task, &mut params);
    assert_eq!(task.net().n_fields(), 2, "gray-scott must be 2-component");

    // A 40×10 grid over the periodic x interval and the time horizon.
    let pts: Vec<[f64; 2]> = (0..400)
        .map(|i| {
            let x = 2.0 * std::f64::consts::PI * ((i % 40) as f64 / 39.0);
            let t = 4.0 * ((i / 40) as f64 / 9.0);
            [x, t]
        })
        .collect();
    let coords: Vec<f64> = pts.iter().flatten().copied().collect();
    let expect = task.net().predict_batch(&params, &coords);
    let expect = expect.data();

    let points_json = pts
        .iter()
        .map(|p| format!("[{},{}]", p[0], p[1]))
        .collect::<Vec<_>>()
        .join(",");
    let (status, reply) = http(
        addr,
        "POST",
        "/v1/eval",
        Some(&format!(
            r#"{{"model":"gs-e2e@latest","points":[{points_json}]}}"#
        )),
    );
    assert!(status.contains("200 OK"), "{status} {}", reply.to_string());
    let values = match reply.get("values").unwrap() {
        Json::Arr(rows) => rows,
        other => panic!("values is not an array: {}", other.to_string()),
    };
    assert_eq!(values.len(), pts.len());
    let mut idx = 0usize;
    for row in values {
        let Json::Arr(fields) = row else { panic!("row is not an array") };
        assert_eq!(fields.len(), 2, "both u and v components must be served");
        for f in fields {
            let got = f.as_num().unwrap();
            assert_eq!(
                got.to_bits(),
                expect[idx].to_bits(),
                "served value differs from in-process at flat index {idx}"
            );
            idx += 1;
        }
    }

    // The registry listing tags the resident model with its problem key.
    let (_, models) = http(addr, "GET", "/v1/models", None);
    let rows = match models.get("models").unwrap() {
        Json::Arr(rows) => rows,
        other => panic!("models is not an array: {}", other.to_string()),
    };
    let gs = rows
        .iter()
        .find(|m| m.get("id").unwrap().as_str() == Some("gs-e2e"))
        .expect("gray-scott model missing from listing");
    assert_eq!(gs.get("problem").unwrap().as_str(), Some("gray-scott"));

    // And the problem catalog is served alongside the models.
    let (status, doc) = http(addr, "GET", "/v1/problems", None);
    assert!(status.contains("200 OK"), "{status}");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some(qpinn::core::PROBLEMS_DOC_VERSION)
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
