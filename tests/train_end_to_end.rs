//! Cross-crate integration: assemble tasks through the facade and verify
//! that short end-to-end training genuinely improves the solution.

use qpinn::core::task::{NlsTask, NlsTaskConfig, TdseTask, TdseTaskConfig};
use qpinn::core::trainer::{PinnTask, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::{NlsProblem, TdseProblem};
use rand::{rngs::StdRng, SeedableRng};

fn quick_train(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        log_every: (epochs / 4).max(1),
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    }
}

#[test]
fn tdse_training_improves_l2_error() {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 16, 2);
    cfg.n_collocation = 160;
    cfg.n_ic = 48;
    cfg.conservation_grid = (3, 16);
    cfg.reference = (128, 200, 16);
    cfg.eval_grid = (32, 8);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(11);
    let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    let e0 = task.eval_error(&params);
    let log = Trainer::new(quick_train(150)).train(&mut task, &mut params);
    assert!(
        log.final_error < 0.8 * e0,
        "error did not improve: {e0} → {}",
        log.final_error
    );
    assert!(log.final_loss < log.loss[0], "loss did not drop");
}

#[test]
fn nls_training_improves_l2_error() {
    let problem = NlsProblem::bright_soliton(1.0);
    let mut cfg = NlsTaskConfig::standard(&problem, 16, 2);
    cfg.n_collocation = 160;
    cfg.n_ic = 48;
    cfg.conservation_grid = (3, 16);
    cfg.reference = (128, 400, 16);
    cfg.eval_grid = (32, 8);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(13);
    let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
    let e0 = task.eval_error(&params);
    let log = Trainer::new(quick_train(150)).train(&mut task, &mut params);
    assert!(
        log.final_error < 0.8 * e0,
        "error did not improve: {e0} → {}",
        log.final_error
    );
}

#[test]
fn training_is_deterministic_given_a_seed() {
    let run = || {
        let problem = TdseProblem::free_packet();
        let mut cfg = TdseTaskConfig::standard(&problem, 12, 2);
        cfg.n_collocation = 96;
        cfg.n_ic = 24;
        cfg.conservation_grid = (2, 12);
        cfg.reference = (128, 100, 8);
        cfg.eval_grid = (16, 4);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(99);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        let log = Trainer::new(quick_train(30)).train(&mut task, &mut params);
        (log.final_loss, params.flatten())
    };
    let (l1, p1) = run();
    let (l2, p2) = run();
    assert_eq!(l1, l2, "loss must be bit-identical across reruns");
    assert_eq!(p1, p2, "parameters must be bit-identical across reruns");
}

#[test]
fn ic_fit_dominates_early_training() {
    // After a short run the network must already match the initial
    // condition far better than a random net does.
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 16, 2);
    cfg.n_collocation = 128;
    cfg.n_ic = 64;
    cfg.conservation_grid = (2, 16);
    cfg.reference = (128, 100, 8);
    cfg.eval_grid = (16, 4);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);

    let ic_mse = |params: &ParamSet, task: &TdseTask| -> f64 {
        let mut s = 0.0;
        let n = 32;
        for i in 0..n {
            let x = problem.x0 + problem.length() * i as f64 / n as f64;
            let pred = task.net().predict(params, &[vec![x, 0.0]]);
            let want = problem.initial(x);
            s += (pred.get(&[0, 0]) - want.re).powi(2) + (pred.get(&[0, 1]) - want.im).powi(2);
        }
        s / n as f64
    };
    let before = ic_mse(&params, &task);
    let _ = Trainer::new(quick_train(150)).train(&mut task, &mut params);
    let after = ic_mse(&params, &task);
    assert!(
        after < 0.2 * before,
        "IC fit should improve strongly: {before} → {after}"
    );
}
