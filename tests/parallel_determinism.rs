//! Thread-count invariance: every reduction, kernel, training epoch, and
//! checkpoint/resume cycle must be **bit-identical** no matter how many
//! pool threads execute it. This is what lets PR 1's bit-exact resume
//! guarantee and seeded experiment reproducibility survive the real
//! multithreaded runtime: chunk boundaries are fixed, partials combine in
//! chunk-index order, and the scheduler only ever decides *who* runs a
//! chunk, never *what* it computes.
//!
//! The suite pins widths in-process via `ThreadPoolBuilder::install`
//! (covering 1/2/4/8); CI additionally runs the whole test suite under
//! `RAYON_NUM_THREADS=1` and `=4` to cover the env-driven global default.

use qpinn::core::hybrid::{HybridEigenTask, HybridNet};
use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::{CheckpointConfig, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::{EigenProblem, TdseProblem};
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer};
use qpinn::tensor::Tensor;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rayon::ThreadPoolBuilder;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn with_threads<R>(t: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(t)
        .build()
        .expect("pool")
        .install(f)
}

/// FNV-1a over the exact f64 bit patterns of every parameter tensor.
fn param_hash(params: &ParamSet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in params.tensors() {
        for &x in t.data() {
            for b in x.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn awkward_tensor(n: usize, seed: u64) -> Tensor {
    // Mixed magnitudes so floating-point association order matters.
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        [n],
        (0..n)
            .map(|_| rng.gen_range(-1.0..1.0) * 10f64.powi(rng.gen_range(-6..7)))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn reductions_bit_identical_across_thread_counts() {
    // Comfortably above PAR_THRESHOLD so the parallel path actually runs.
    let t = awkward_tensor(100_003, 42);
    let want_sum = with_threads(1, || t.sum()).to_bits();
    let want_sq = with_threads(1, || t.sum_sq()).to_bits();
    for w in WIDTHS {
        assert_eq!(
            with_threads(w, || t.sum()).to_bits(),
            want_sum,
            "Tensor::sum diverged at {w} threads"
        );
        assert_eq!(
            with_threads(w, || t.sum_sq()).to_bits(),
            want_sq,
            "Tensor::sum_sq diverged at {w} threads"
        );
    }
}

#[test]
fn matmul_kernels_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut rand_t = |m: usize, n: usize| {
        Tensor::from_vec(
            [m, n],
            (0..m * n)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect::<Vec<_>>(),
        )
    };
    // 64·96·80 ≈ 491k FLOPs — all three kernels take their parallel path.
    let a = rand_t(64, 96);
    let b = rand_t(96, 80);
    let at = rand_t(96, 64);
    let bt = rand_t(80, 96);
    let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    let want_nn = with_threads(1, || bits(&a.matmul(&b)));
    let want_tn = with_threads(1, || bits(&at.matmul_tn(&b)));
    let want_nt = with_threads(1, || bits(&a.matmul_nt(&bt)));
    for w in WIDTHS {
        assert_eq!(
            with_threads(w, || bits(&a.matmul(&b))),
            want_nn,
            "matmul diverged at {w} threads"
        );
        assert_eq!(
            with_threads(w, || bits(&at.matmul_tn(&b))),
            want_tn,
            "matmul_tn diverged at {w} threads"
        );
        assert_eq!(
            with_threads(w, || bits(&a.matmul_nt(&bt))),
            want_nt,
            "matmul_nt diverged at {w} threads"
        );
    }
}

fn hybrid_fixture() -> (HybridEigenTask, ParamSet) {
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(3);
    let q = QuantumLayer {
        n_qubits: 3,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    let net = HybridNet::new(&mut params, &mut rng, 12, q, "det");
    let task = HybridEigenTask::new(EigenProblem::harmonic(1.0), net, 24, 101);
    (task, params)
}

fn short_cfg(epochs: usize, checkpoint: Option<CheckpointConfig>) -> TrainConfig {
    TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 5e-3 },
        log_every: 1,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint,
        divergence: None,
        progress: None,
        run: None,
    }
}

#[test]
fn training_epoch_loss_bit_identical_across_thread_counts() {
    // The hybrid stack drives every parallel surface at once: quantum
    // batched forward + Jacobian rows (`into_par_iter`), dense matmuls,
    // and MSE reductions.
    let reference = with_threads(1, || {
        let (mut task, mut params) = hybrid_fixture();
        let log = Trainer::new(short_cfg(2, None)).train(&mut task, &mut params);
        (
            log.loss.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            param_hash(&params),
        )
    });
    for w in WIDTHS {
        let got = with_threads(w, || {
            let (mut task, mut params) = hybrid_fixture();
            let log = Trainer::new(short_cfg(2, None)).train(&mut task, &mut params);
            (
                log.loss.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                param_hash(&params),
            )
        });
        assert_eq!(
            got.0, reference.0,
            "epoch loss trajectory diverged at {w} threads"
        );
        assert_eq!(
            got.1, reference.1,
            "post-training parameters diverged at {w} threads"
        );
    }
}

fn tdse_fixture() -> (TdseTask, ParamSet) {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 12, 2);
    cfg.n_collocation = 96;
    cfg.n_ic = 24;
    cfg.conservation_grid = (2, 12);
    cfg.reference = (128, 100, 8);
    cfg.eval_grid = (16, 4);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(99);
    let task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    (task, params)
}

#[test]
fn resumed_run_param_hash_invariant_across_thread_counts() {
    let (half, full) = (5usize, 10usize);
    // Reference: uninterrupted single-thread run.
    let want = with_threads(1, || {
        let (mut task, mut params) = tdse_fixture();
        let _ = Trainer::new(short_cfg(full, None)).train(&mut task, &mut params);
        param_hash(&params)
    });
    for w in [2usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "qpinn-par-det-{}-{w}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let hash = with_threads(w, || {
            // Interrupted: train to the snapshot …
            let (mut task_a, mut params_a) = tdse_fixture();
            let ckpt = CheckpointConfig::new(&dir).every(half).run_id("par-det");
            let _ =
                Trainer::new(short_cfg(half, Some(ckpt))).train(&mut task_a, &mut params_a);
            // … then resume from disk with nothing carried over.
            let (mut task_b, _) = tdse_fixture();
            let mut params_b = ParamSet::new();
            let _ = Trainer::new(short_cfg(full, None))
                .resume(&dir, &mut task_b, &mut params_b)
                .expect("resume succeeds");
            param_hash(&params_b)
        });
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            hash, want,
            "resumed-run final parameters diverged at {w} threads"
        );
    }
}

#[test]
fn nested_install_and_join_inside_pool_work_does_not_deadlock() {
    use rayon::prelude::*;
    let sums = with_threads(4, || {
        (0..6usize)
            .into_par_iter()
            .map(|i| {
                // Nested install with a different width from inside a pool
                // worker, plus a join, plus a parallel tensor reduction.
                with_threads(2, || {
                    let t = awkward_tensor(40_000, i as u64);
                    let (s1, s2) = rayon::join(|| t.sum(), || t.sum_sq());
                    (s1.to_bits(), s2.to_bits())
                })
            })
            .collect::<Vec<_>>()
    });
    let want: Vec<(u64, u64)> = (0..6usize)
        .map(|i| {
            let t = awkward_tensor(40_000, i as u64);
            (t.sum().to_bits(), t.sum_sq().to_bits())
        })
        .collect();
    assert_eq!(sums, want, "nested parallel reductions must stay bit-exact");
}
