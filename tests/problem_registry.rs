//! Registry-wide conformance harness for the problem zoo: every key in
//! `qpinn::problems::keys()` is swept through the same four checks, so a
//! family cannot be registered without earning its cross-check.
//!
//! 1. **Residual-of-reference** — the family's residual operator,
//!    evaluated on jets finite-differenced *node-to-node* from the
//!    reference solution's own grid, must vanish to within
//!    `residual_tol()`. This catches sign and term mistakes in the PDE
//!    right where a PINN would happily train to the wrong equation.
//! 2. **Conditions-of-reference** — the sampled IC/BC targets must agree
//!    with the reference solution at the same points.
//! 3. **Analytic-vs-numeric** — where a closed form exists, the numeric
//!    reference must reproduce it.
//! 4. **Smoke train** — a few Adam epochs on the generic `ZooTask` must
//!    reduce the loss, proving the registry entry is trainable end to
//!    end, vector-valued families included.
//!
//! Plus property tests: unknown keys are an `Err` (never a panic) for
//! arbitrary byte-soup keys, and the key table is sorted and stable.

use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use qpinn::autodiff::jet::Jet;
use qpinn::autodiff::Graph;
use qpinn::core::trainer::{PinnTask, Trainer};
use qpinn::core::{TrainConfig, ZooTask, ZooTaskConfig};
use qpinn::nn::{GraphCtx, ParamSet};
use qpinn::optim::LrSchedule;
use qpinn::problems::{Fidelity, PdeProblem, RefSolution};
use qpinn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Interior node indices along one axis: skip two boundary nodes on each
/// side (one-sided stencils and boundary-layer solver error live there),
/// subsampled to at most `cap` indices.
fn interior_indices(len: usize, cap: usize) -> Vec<usize> {
    if len < 5 {
        return Vec::new();
    }
    let (lo, hi) = (2, len - 2);
    let stride = ((hi - lo) + cap - 1) / cap;
    (lo..hi).step_by(stride.max(1)).collect()
}

/// Cartesian product of per-axis index choices.
fn index_product(per_axis: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for axis in per_axis {
        let mut next = Vec::with_capacity(out.len() * axis.len());
        for tail in &out {
            for &i in axis {
                let mut t = tail.clone();
                t.push(i);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Nonuniform 3-point stencil values `(f', f'')` from samples at
/// `x - h1`, `x`, `x + h2`.
fn fd_stencil(fm: f64, f0: f64, fp: f64, h1: f64, h2: f64) -> (f64, f64) {
    let denom = h1 * h2 * (h1 + h2);
    let d1 = (h1 * h1 * fp - h2 * h2 * fm + (h2 * h2 - h1 * h1) * f0) / denom;
    let d2 = 2.0 * (h1 * fp + h2 * fm - (h1 + h2) * f0) / denom;
    (d1, d2)
}

/// Evaluate the reference solution and its node-to-node finite
/// differences at interior grid nodes, returning `(points, jets)` ready
/// for [`PdeProblem::residuals`]. Jets are assembled from constant tape
/// columns — the trait only sees `Var`s, so the same residual code runs
/// on FD data here and on network outputs in training.
fn reference_jets(
    g: &mut Graph,
    problem: &dyn PdeProblem,
    reference: &dyn RefSolution,
) -> (Vec<Vec<f64>>, Vec<Jet>) {
    let grids = reference.grids();
    let k = grids.len();
    let n_out = problem.n_outputs();
    assert_eq!(
        k,
        problem.coords().len(),
        "{}: reference grids() must match the coordinate count",
        problem.key()
    );
    // ~200 total FD points per problem keeps the sweep fast at any arity.
    let cap = (200f64.powf(1.0 / k as f64).round() as usize).max(3);
    let per_axis: Vec<Vec<usize>> = grids
        .iter()
        .map(|axis| interior_indices(axis.len(), cap))
        .collect();
    for (c, idx) in per_axis.iter().enumerate() {
        assert!(
            !idx.is_empty(),
            "{}: reference grid too coarse on axis {c} for interior FD",
            problem.key()
        );
    }
    let tuples = index_product(&per_axis);

    let mut points = Vec::with_capacity(tuples.len());
    let mut vals = vec![Vec::with_capacity(tuples.len()); n_out];
    let mut d = vec![vec![Vec::with_capacity(tuples.len()); k]; n_out];
    let mut dd = vec![vec![Vec::with_capacity(tuples.len()); k]; n_out];
    for idx in &tuples {
        let point: Vec<f64> = idx.iter().zip(&grids).map(|(&i, axis)| axis[i]).collect();
        let f0 = reference.sample(&point);
        for c in 0..k {
            let axis = &grids[c];
            let i = idx[c];
            let (mut pm, mut pp) = (point.clone(), point.clone());
            pm[c] = axis[i - 1];
            pp[c] = axis[i + 1];
            let (fm, fp) = (reference.sample(&pm), reference.sample(&pp));
            let h1 = axis[i] - axis[i - 1];
            let h2 = axis[i + 1] - axis[i];
            for j in 0..n_out {
                let (d1, d2) = fd_stencil(fm[j], f0[j], fp[j], h1, h2);
                d[j][c].push(d1);
                dd[j][c].push(d2);
            }
        }
        for j in 0..n_out {
            vals[j].push(f0[j]);
        }
        points.push(point);
    }

    let jets = (0..n_out)
        .map(|j| Jet {
            v: g.constant(Tensor::column(&vals[j])),
            d: (0..k).map(|c| g.constant(Tensor::column(&d[j][c]))).collect(),
            dd: (0..k).map(|c| g.constant(Tensor::column(&dd[j][c]))).collect(),
        })
        .collect();
    (points, jets)
}

#[test]
fn every_reference_solution_satisfies_its_own_pde() {
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        // Full fidelity: the FD check differences node-to-node, so the
        // stored-slice spacing bounds its accuracy; Quick grids leak
        // O(Δt²) truncation error above the tolerance on oscillatory
        // families.
        let reference = problem.reference(Fidelity::Full);
        let mut g = Graph::new();
        let (points, jets) = reference_jets(&mut g, problem.as_ref(), reference.as_ref());
        let residuals = problem.residuals(&mut g, &jets, &points);
        assert!(!residuals.is_empty(), "{key}: no residual columns");
        for (r_i, &r) in residuals.iter().enumerate() {
            let data = g.value(r).data();
            let worst = data
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(i, v)| (i, v.abs()))
                .unwrap();
            assert!(
                worst.1 <= problem.residual_tol(),
                "{key}: residual column {r_i} of the reference solution reaches \
                 |r| = {:.3e} at point {:?} (tol {:.1e}) — the residual operator \
                 and the reference solver disagree about the PDE",
                worst.1,
                points[worst.0],
                problem.residual_tol()
            );
        }
    }
}

#[test]
fn every_condition_set_is_satisfied_by_the_reference() {
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        let reference = problem.reference(Fidelity::Quick);
        for cond in problem.conditions(24) {
            assert_eq!(cond.points.len(), cond.targets.len(), "{key}/{}", cond.name);
            assert!(!cond.points.is_empty(), "{key}/{}: empty condition", cond.name);
            // Derivative conditions (e.g. initial velocity) are checked
            // through the residual harness; value targets must match the
            // reference field directly.
            if cond.deriv.is_some() {
                continue;
            }
            for (p, want) in cond.points.iter().zip(&cond.targets) {
                let got = reference.sample(p);
                assert_eq!(got.len(), want.len(), "{key}/{}", cond.name);
                for (a, b) in got.iter().zip(want) {
                    assert!(
                        (a - b).abs() <= problem.residual_tol(),
                        "{key}/{}: reference gives {a:.4} where the condition \
                         demands {b:.4} at {p:?}",
                        cond.name
                    );
                }
            }
        }
    }
}

#[test]
fn analytic_and_numeric_references_agree() {
    let mut checked = 0;
    for key in qpinn::problems::keys() {
        let problem = qpinn::problems::lookup(key).unwrap();
        let reference = problem.reference(Fidelity::Quick);
        let grids = reference.grids();
        let per_axis: Vec<Vec<usize>> = grids
            .iter()
            .map(|axis| interior_indices(axis.len(), 4))
            .collect();
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        let mut any = false;
        for idx in index_product(&per_axis) {
            let point: Vec<f64> = idx.iter().zip(&grids).map(|(&i, a)| a[i]).collect();
            let Some(exact) = problem.analytic(&point) else {
                break;
            };
            any = true;
            let got = reference.sample(&point);
            for (a, b) in got.iter().zip(&exact) {
                num += (a - b) * (a - b);
                den += b * b;
            }
        }
        if !any {
            continue;
        }
        checked += 1;
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(
            rel < 0.02,
            "{key}: numeric reference drifts from the closed form (rel-L2 {rel:.3e})"
        );
    }
    assert!(checked >= 6, "only {checked} families expose a closed form");
}

#[test]
fn every_family_smoke_trains_with_decreasing_loss() {
    for key in qpinn::problems::keys() {
        let cfg = ZooTaskConfig::quick();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mut task = ZooTask::from_key(key, &cfg, &mut params, &mut rng)
            .unwrap_or_else(|e| panic!("{e}"));
        let initial = {
            let mut g = Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let loss = task.build_loss(&mut ctx);
            g.value(loss).data()[0]
        };
        assert!(initial.is_finite(), "{key}: initial loss not finite");
        let train = TrainConfig {
            epochs: 60,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            log_every: 1000,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        };
        let log = Trainer::new(train).train(&mut task, &mut params);
        assert!(
            log.final_loss.is_finite() && log.final_loss < initial,
            "{key}: loss did not decrease ({initial:.4e} -> {:.4e})",
            log.final_loss
        );
    }
}

#[test]
fn keys_are_sorted_unique_and_stable() {
    let ks = qpinn::problems::keys();
    assert!(ks.len() >= 9, "registry shrank to {} families", ks.len());
    assert!(
        ks.windows(2).all(|w| w[0] < w[1]),
        "keys must be sorted and unique: {ks:?}"
    );
    assert_eq!(ks, qpinn::problems::keys(), "keys() must be stable");
    for k in &ks {
        assert_eq!(qpinn::problems::lookup(k).unwrap().key(), *k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup fed to `lookup` must yield `Err` (never a
    /// panic), and the error must name the offending key and list the
    /// registered alternatives.
    #[test]
    fn unknown_keys_error_and_never_panic(bytes in prop_vec(0u8..=255, 0..32)) {
        let key = String::from_utf8_lossy(&bytes).into_owned();
        match qpinn::problems::lookup(&key) {
            Ok(p) => prop_assert_eq!(p.key(), key.as_str()),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains("helmholtz"), "error must list keys: {}", msg);
                prop_assert!(msg.contains("gray-scott"), "error must list keys: {}", msg);
            }
        }
    }

    /// Near-miss mutations of real keys (case flips, suffixes, separator
    /// swaps) never resolve to a different family.
    #[test]
    fn mutated_keys_never_resolve_to_another_family(
        which in 0usize..10,
        mutation in 0usize..4,
    ) {
        let ks = qpinn::problems::keys();
        let key = ks[which % ks.len()];
        let mutated = match mutation {
            0 => key.to_uppercase(),
            1 => format!("{key} "),
            2 => format!("{key}2"),
            _ => key.replace('-', "_"),
        };
        if mutated != key {
            prop_assert!(qpinn::problems::lookup(&mutated).is_err());
        }
    }
}
