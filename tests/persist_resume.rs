//! End-to-end checkpoint/resume: training N epochs, snapshotting, and
//! resuming for N more must be *bit-exact* against one uninterrupted 2N-epoch
//! run — same f64 parameters, same loss trajectory, one continuous log.
//! Also exercises corruption fallback and retention through the facade.

use qpinn::autodiff::Var;
use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::{CheckpointConfig, PinnTask, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::{GraphCtx, ParamSet};
use qpinn::optim::LrSchedule;
use qpinn::persist::{RetentionPolicy, SnapshotStore};
use qpinn::problems::TdseProblem;
use qpinn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tdse_fixture() -> (TdseTask, ParamSet) {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 12, 2);
    cfg.n_collocation = 96;
    cfg.n_ic = 24;
    cfg.conservation_grid = (2, 12);
    cfg.reference = (128, 100, 8);
    cfg.eval_grid = (16, 4);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(99);
    let task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    (task, params)
}

fn cfg_epochs(epochs: usize, checkpoint: Option<CheckpointConfig>) -> TrainConfig {
    TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 2e-3,
            factor: 0.85,
            every: 15,
        },
        log_every: 10,
        eval_every: 10,
        clip: Some(100.0),
        // L-BFGS runs after the final snapshot, so bit-exact resume
        // guarantees only hold for the Adam phase.
        lbfgs_polish: None,
        checkpoint,
        divergence: None,
        progress: None,
        run: None,
    }
}

#[test]
fn resume_is_bit_exact_against_uninterrupted_run() {
    let dir = test_dir("bitexact");
    let (half, full) = (20usize, 40usize);

    // Reference: one uninterrupted 2N-epoch run.
    let (mut task_a, mut params_a) = tdse_fixture();
    let log_a = Trainer::new(cfg_epochs(full, None)).train(&mut task_a, &mut params_a);

    // Interrupted: N epochs with a snapshot at the end…
    let (mut task_b, mut params_b) = tdse_fixture();
    let ckpt = CheckpointConfig::new(&dir)
        .every(half)
        .run_id("bitexact")
        .retention(RetentionPolicy::keep_all());
    let _ = Trainer::new(cfg_epochs(half, Some(ckpt))).train(&mut task_b, &mut params_b);

    // …then a resume from disk in a fresh process-equivalent: new task,
    // empty params, nothing carried over but the snapshot.
    let (mut task_c, _) = tdse_fixture();
    let mut params_c = ParamSet::new();
    let log_c = Trainer::new(cfg_epochs(full, None))
        .resume(&dir, &mut task_c, &mut params_c)
        .expect("resume must succeed");

    // Exact f64 equality, bit for bit.
    let flat_a = params_a.flatten();
    let flat_c = params_c.flatten();
    assert_eq!(flat_a.len(), flat_c.len());
    for (i, (a, c)) in flat_a.iter().zip(&flat_c).enumerate() {
        assert_eq!(
            a.to_bits(),
            c.to_bits(),
            "parameter {i} diverged: {a:e} vs {c:e}"
        );
    }
    assert_eq!(log_a.final_loss.to_bits(), log_c.final_loss.to_bits());
    assert_eq!(log_a.final_error.to_bits(), log_c.final_error.to_bits());

    // The merged log is one continuous trajectory, identical to the
    // uninterrupted run's.
    assert_eq!(
        log_a.epochs, log_c.epochs,
        "epoch numbering must be continuous"
    );
    assert_eq!(log_a.eval_epochs, log_c.eval_epochs);
    assert!(log_c.epochs.windows(2).all(|w| w[0] < w[1]));
    for (a, c) in log_a.loss.iter().zip(&log_c.loss) {
        assert_eq!(a.to_bits(), c.to_bits(), "logged losses must match bitwise");
    }
    // Wall time accumulates across segments instead of resetting.
    assert!(log_c.wall_s > 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_truncation_and_bit_flips() {
    let dir = test_dir("corrupt");
    let (mut task, mut params) = tdse_fixture();
    let ckpt = CheckpointConfig::new(&dir)
        .every(20)
        .retention(RetentionPolicy::keep_all());
    let _ = Trainer::new(cfg_epochs(60, Some(ckpt))).train(&mut task, &mut params);

    let store = SnapshotStore::open(&dir).unwrap();
    let files = store.list();
    assert_eq!(
        files.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        vec![20, 40, 60]
    );
    // Truncate the newest and flip a bit in the middle one: resume must
    // fall back to epoch 20 without panicking.
    let bytes = std::fs::read(&files[2].1).unwrap();
    std::fs::write(&files[2].1, &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&files[1].1).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&files[1].1, &bytes).unwrap();

    let (mut task2, mut params2) = tdse_fixture();
    let log = Trainer::new(cfg_epochs(80, None))
        .resume(&dir, &mut task2, &mut params2)
        .expect("fallback to the intact epoch-20 snapshot");
    // Restored log ends before epoch 20; the continuation runs 20..80.
    let expected: Vec<usize> = (0..8).map(|i| i * 10).collect();
    assert_eq!(log.epochs, expected);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_bounds_snapshot_count_during_training() {
    let dir = test_dir("retention");
    let (mut task, mut params) = tdse_fixture();
    let ckpt = CheckpointConfig::new(&dir)
        .every(10)
        .retention(RetentionPolicy {
            keep_last: 2,
            keep_best: true,
        });
    let _ = Trainer::new(cfg_epochs(50, Some(ckpt))).train(&mut task, &mut params);
    let store = SnapshotStore::open(&dir).unwrap();
    let files = store.list();
    assert!(
        (1..=3).contains(&files.len()),
        "keep_last=2 + best must leave at most 3 files, got {}",
        files.len()
    );
    // The newest snapshot is always among the survivors.
    assert_eq!(files.last().unwrap().0, 50);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stateful toy task proving the opaque task-state blob rides through
/// checkpoint and resume.
struct CountingTask {
    target: f64,
    id: qpinn::nn::ParamId,
    calls: u64,
}

impl PinnTask for CountingTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        self.calls += 1;
        let w = ctx.param(self.id);
        let d = ctx.g.add_scalar(w, -self.target);
        ctx.g.mse(d)
    }
    fn eval_error(&self, params: &ParamSet) -> f64 {
        (params.tensors()[0].item() - self.target).abs()
    }
    fn export_state(&self) -> Vec<u8> {
        self.calls.to_le_bytes().to_vec()
    }
    fn import_state(&mut self, bytes: &[u8]) {
        if let Ok(arr) = <[u8; 8]>::try_from(bytes) {
            self.calls = u64::from_le_bytes(arr);
        }
    }
}

#[test]
fn task_state_blob_roundtrips_through_resume() {
    let dir = test_dir("taskstate");
    let fresh = || {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::from_vec([1, 1], vec![0.0]));
        (
            CountingTask {
                target: 3.0,
                id,
                calls: 0,
            },
            params,
        )
    };
    let cfg = |epochs: usize, ckpt: Option<CheckpointConfig>| TrainConfig {
        epochs,
        schedule: LrSchedule::Constant { lr: 0.05 },
        log_every: 10,
        eval_every: 0,
        clip: None,
        lbfgs_polish: None,
        checkpoint: ckpt,
        divergence: None,
        progress: None,
        run: None,
    };

    let (mut task1, mut params1) = fresh();
    let _ = Trainer::new(cfg(30, Some(CheckpointConfig::new(&dir).every(30))))
        .train(&mut task1, &mut params1);
    assert_eq!(task1.calls, 30);

    let (mut task2, mut params2) = fresh();
    let _ = Trainer::new(cfg(50, None))
        .resume(&dir, &mut task2, &mut params2)
        .expect("resume");
    // 30 imported from the snapshot + 20 resumed epochs.
    assert_eq!(task2.calls, 50, "task state must be restored, then advance");

    let _ = std::fs::remove_dir_all(&dir);
}
