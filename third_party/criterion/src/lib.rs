//! Offline stand-in for `criterion`.
//!
//! The build sandbox cannot reach crates.io, so the workspace vendors a
//! dependency-free harness implementing the criterion entry points its
//! benches use. Each benchmark body is executed a small fixed number of
//! times and its mean wall time printed — enough to smoke-test that every
//! bench target runs and to give a rough number, without upstream
//! criterion's statistics. `cargo test` also invokes bench targets; the
//! stub keeps that cheap by running each body once in that mode.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per benchmark when run as `cargo bench` (vs. once under
/// `cargo test`).
const BENCH_ITERS: u32 = 10;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    is_test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--test` to bench binaries under `cargo test`.
        let is_test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            is_test_mode,
        }
    }
}

impl Criterion {
    /// Record the requested sample size (informational in the stub).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accept and ignore the measurement-time setting.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accept and ignore the warm-up-time setting.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    fn iters(&self) -> u32 {
        if self.is_test_mode {
            1
        } else {
            BENCH_ITERS
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        let iters = self.iters();
        for _ in 0..iters {
            f(&mut b);
        }
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        let iters = self.criterion.iters();
        for _ in 0..iters {
            f(&mut b, input);
        }
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<D: Display>(function: &str, p: D) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Timer handed to each benchmark body, mirroring `criterion::Bencher`.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Time one execution of `f` (the stub runs the routine once per call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.runs += 1;
        drop(black_box(out));
    }

    fn report(&self, name: &str) {
        if self.runs > 0 {
            let mean = self.total / self.runs;
            println!("bench {name:<40} {mean:>12.2?}/iter ({} iters)", self.runs);
        }
    }
}

/// An optimization barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!` (both the simple and the configured form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declare the bench-binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
