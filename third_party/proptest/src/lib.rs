//! Offline stand-in for `proptest`.
//!
//! The build sandbox cannot reach crates.io, so the workspace vendors a
//! small, dependency-free property-testing harness implementing the exact
//! surface its test suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], `ProptestConfig::with_cases`,
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream are deliberate and contained: inputs are drawn
//! from a fixed deterministic seed (every run explores the same cases, so
//! there are no flaky failures and no regression files), and failures are
//! reported by panicking with the failing case's debug rendering instead of
//! shrinking to a minimal counterexample.

#![deny(missing_docs)]

/// Deterministic input source for strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with a fixed, documented seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Reject values failing `pred` (resampling, bounded).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Every strategy reference is itself a strategy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive samples", self.whence);
        }
    }

    /// A strategy always yielding clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    }
}

pub mod arbitrary {
    //! Canonical strategies per type, mirroring `proptest::arbitrary`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy for a fair boolean.
    #[derive(Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Strategy for a full-range finite `f64` (moderate magnitudes).
    #[derive(Clone, Debug)]
    pub struct AnyF64;

    impl Strategy for AnyF64 {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        type Strategy = AnyF64;
        fn arbitrary() -> AnyF64 {
            AnyF64
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// A size specification: exact or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Run configuration, mirroring `proptest::test_runner`.

    /// How many cases each property executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert a condition inside a property; panics with the location on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when an assumption fails. The stub treats a failed
/// assumption as a no-op return (the case count is not replenished).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` becomes
/// a `#[test]` running the body over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Seed differs per property so sibling tests explore
                // different corners, but is stable across runs.
                let mut rng = $crate::TestRng::deterministic(
                    0x5DEECE66D ^ stringify!($name).len() as u64,
                );
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic(1);
        for _ in 0..1000 {
            let x = Strategy::sample(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = Strategy::sample(&(1usize..=6), &mut rng);
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::deterministic(2);
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0.0..1.0f64, n))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |n| *n > 0);
        for _ in 0..100 {
            let n = Strategy::sample(&s, &mut rng);
            assert!((1..4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_cases(x in 0.0..1.0f64, b in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            let _ = b;
        }

        #[test]
        fn tuple_and_vec_strategies(
            (m, n) in (1usize..5, 1usize..5),
            v in crate::collection::vec(-1.0..1.0f64, 3),
        ) {
            prop_assert!(m < 5 && n < 5);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
