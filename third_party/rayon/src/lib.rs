//! Offline stand-in for `rayon`.
//!
//! The build sandbox cannot reach crates.io, so the workspace vendors a
//! dependency-free replacement in which every `par_*` entry point returns the
//! corresponding **sequential** `std` iterator. All downstream adaptor chains
//! (`zip`, `map`, `sum`, `for_each`, `collect`, …) then come from
//! [`std::iter::Iterator`] unchanged, so call sites compile verbatim and
//! produce identical results — single-threaded. Swapping the real rayon back
//! in (when a registry is reachable) is a one-line `Cargo.toml` change.

#![deny(missing_docs)]

/// Extension methods on shared slices, mirroring rayon's parallel slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;

    /// Sequential stand-in for `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }

    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Extension methods on mutable slices, mirroring rayon's parallel slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;

    /// Sequential stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }

    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// By-value conversion into a (sequential) "parallel" iterator.
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Sequential stand-in for `into_par_iter`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// Builder for a (degenerate, single-thread) pool, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for pool construction; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the requested thread count (informational only — execution is
    /// sequential in the stub).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool; infallible in the stub.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// A degenerate pool that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool (directly, on the current thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The number of threads the (sequential) global pool uses: always 1.
pub fn current_num_threads() -> usize {
    1
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_zip_matches_sequential() {
        let src = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0f64; 5];
        dst.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(d, s)| {
                for (di, si) in d.iter_mut().zip(s) {
                    *di = si * 2.0;
                }
            });
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn into_par_iter_on_range_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 6 * 7), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
