//! Offline, std-only implementation of the subset of `rayon` this workspace
//! uses — with a **real multithreaded runtime**, not a sequential stand-in.
//!
//! The build sandbox cannot reach crates.io, so the workspace vendors this
//! dependency-free replacement. Unlike the original stub (which aliased
//! every `par_*` entry point to the sequential `std` iterator), this crate
//! executes parallel iterators on a long-lived work-dealing thread pool:
//!
//! * **Pool** — lazily-spawned workers fed through a shared injector; the
//!   default width comes from `RAYON_NUM_THREADS` (positive integer) or
//!   [`std::thread::available_parallelism`]. [`ThreadPoolBuilder`] +
//!   [`ThreadPool::install`] scope a different width, exactly like rayon.
//! * **Scheduling** — each parallel operation is an indexed set of chunks
//!   claimed by idle threads through an atomic cursor (chunk dealing), and
//!   threads that finish early steal queued work from the injector while
//!   they wait, so tails stay balanced.
//! * **Determinism** — chunk boundaries are fixed by the caller, and the
//!   ordered consumers ([`ParallelIterator::sum`],
//!   [`ParallelIterator::collect`]) write each chunk's result into its own
//!   index slot and combine the slots in index order. Every result is
//!   **bit-identical at every thread count**, including `cap = 1`.
//! * **Reentrancy** — nested [`ThreadPool::install`], [`join`], and
//!   `par_*` calls from inside pool workers cannot deadlock: a launcher
//!   only blocks on chunks that are already running, and in the worst case
//!   drains its own set on the calling thread (see `pool` module docs).
//! * **Observability** — per-worker task/steal/idle counters sampled at
//!   drain boundaries (never on the chunk fast path), exposed through
//!   [`pool_stats`] / [`reset_pool_stats`] so the telemetry layer can
//!   report pool balance without touching the hot loop. This is an
//!   extension over upstream rayon's public API; callers that need to
//!   stay source-compatible with the registry crate should gate on it.
//!
//! The API surface mirrors rayon's names (`par_chunks`, `par_chunks_mut`,
//! `par_iter`, `into_par_iter`, `join`, adaptors `zip`/`map`/`enumerate`
//! and consumers `for_each`/`sum`/`collect`), so swapping the registry
//! version back in remains a one-line `Cargo.toml` change.

#![deny(missing_docs)]

mod pool;

pub use pool::{pool_stats, reset_pool_stats, PoolStats, WorkerStats};

use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};

/// Run two closures, potentially in parallel: `a` on the calling thread
/// while `b` is offered to the pool (and reclaimed by the caller when no
/// worker is free). Panics in either closure propagate to the caller.
pub fn join<A, RA, B, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join_impl(oper_a, oper_b)
}

/// The number of threads parallel operations may use on this thread: the
/// innermost installed pool's width, or the global default
/// (`RAYON_NUM_THREADS` / available parallelism).
pub fn current_num_threads() -> usize {
    pool::current_cap()
}

// ---------------------------------------------------------------------------
// Producers: random-access, claim-once item sources.
// ---------------------------------------------------------------------------

/// A random-access source of items for one parallel operation.
///
/// The scheduler guarantees each index in `0..len` is claimed exactly once,
/// which is what makes handing out disjoint `&mut` chunks sound.
pub trait Producer: Sync {
    /// The item type produced.
    type Item;

    /// Extract the item for chunk `i`.
    ///
    /// # Safety
    /// `i` must be in bounds for the originating iterator and must be taken
    /// at most once over the producer's lifetime.
    unsafe fn take(&self, i: usize) -> Self::Item;
}

// ---------------------------------------------------------------------------
// The parallel iterator trait and its drivers.
// ---------------------------------------------------------------------------

/// An exact-length parallel iterator, executed on the global pool.
///
/// Adaptors (`map`, `zip`, `enumerate`) compose lazily; consumers
/// (`for_each`, `sum`, `collect`) launch the chunks. `sum` and `collect`
/// are *ordered*: per-index results are combined in index order, so they
/// are bit-identical at every thread count.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;
    /// The producer this iterator compiles into.
    type Producer: Producer<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert into the random-access producer.
    fn into_producer(self) -> Self::Producer;

    /// Transform every item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Iterate two parallel iterators in lockstep (length = the minimum).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.len();
        let p = self.into_producer();
        let work = |i: usize| {
            // SAFETY: the scheduler claims each index exactly once.
            f(unsafe { p.take(i) })
        };
        pool::parallel_for(n, &work);
    }

    /// Sum the items **in index order** (bit-exact at any thread count):
    /// items are materialized into per-index slots in parallel, then folded
    /// sequentially on the calling thread.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        collect_ordered(self).into_iter().sum()
    }

    /// Collect into a container, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        collect_ordered(self).into_iter().collect()
    }

    /// Number of items (exact, no traversal needed).
    fn count(self) -> usize {
        self.len()
    }
}

/// Materialize all items into a `Vec` in index order: slot `i` is written
/// by whichever thread claims chunk `i`, and the filled vector is assembled
/// on the calling thread.
fn collect_ordered<I: ParallelIterator>(it: I) -> Vec<I::Item> {
    let n = it.len();
    let p = it.into_producer();
    let mut buf: Vec<MaybeUninit<I::Item>> = (0..n).map(|_| MaybeUninit::uninit()).collect();

    struct Slots<T>(*mut MaybeUninit<T>);
    // SAFETY: every index slot is written by exactly one thread.
    unsafe impl<T: Send> Sync for Slots<T> {}
    impl<T> Slots<T> {
        /// # Safety: `i` in bounds and written by exactly one thread.
        unsafe fn write(&self, i: usize, value: T) {
            (*self.0.add(i)).write(value);
        }
    }

    let slots = Slots(buf.as_mut_ptr());
    let work = |i: usize| {
        // SAFETY: index claimed exactly once; slots are disjoint per index.
        unsafe {
            slots.write(i, p.take(i));
        }
    };
    pool::parallel_for(n, &work);
    // SAFETY: parallel_for ran every index (or unwound, skipping this), so
    // all n slots are initialized; MaybeUninit<T> and T share layout.
    let ptr = buf.as_mut_ptr() as *mut I::Item;
    let cap = buf.capacity();
    std::mem::forget(buf);
    unsafe { Vec::from_raw_parts(ptr, n, cap) }
}

// ---------------------------------------------------------------------------
// Adaptors.
// ---------------------------------------------------------------------------

/// Parallel `map` adaptor; see [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

/// Producer for [`Map`].
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    type Producer = MapProducer<I::Producer, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn into_producer(self) -> Self::Producer {
        MapProducer {
            base: self.base.into_producer(),
            f: self.f,
        }
    }
}

impl<P, R, F> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    unsafe fn take(&self, i: usize) -> R {
        (self.f)(self.base.take(i))
    }
}

/// Parallel `zip` adaptor; see [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

/// Producer for [`Zip`].
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Producer = ZipProducer<A::Producer, B::Producer>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn into_producer(self) -> Self::Producer {
        ZipProducer {
            a: self.a.into_producer(),
            b: self.b.into_producer(),
        }
    }
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);

    unsafe fn take(&self, i: usize) -> Self::Item {
        (self.a.take(i), self.b.take(i))
    }
}

/// Parallel `enumerate` adaptor; see [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

/// Producer for [`Enumerate`].
pub struct EnumerateProducer<P> {
    base: P,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Producer = EnumerateProducer<I::Producer>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn into_producer(self) -> Self::Producer {
        EnumerateProducer {
            base: self.base.into_producer(),
        }
    }
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);

    unsafe fn take(&self, i: usize) -> Self::Item {
        (i, self.base.take(i))
    }
}

// ---------------------------------------------------------------------------
// Slice sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over fixed-size chunks of a shared slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Producer = Self;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Sync> Producer for ParChunks<'a, T> {
    type Item = &'a [T];

    unsafe fn take(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Parallel iterator over fixed-size chunks of a mutable slice. The chunks
/// are disjoint, and the claim-once discipline of [`Producer::take`] makes
/// handing them to different threads sound.
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _lt: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint &mut chunks of a T: Send slice may move across threads.
unsafe impl<'a, T: Send> Send for ParChunksMut<'a, T> {}
unsafe impl<'a, T: Send> Sync for ParChunksMut<'a, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Producer = Self;

    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Send> Producer for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    unsafe fn take(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// Parallel iterator over the elements of a shared slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Producer = Self;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Sync> Producer for ParIter<'a, T> {
    type Item = &'a T;

    unsafe fn take(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over the elements of a mutable slice.
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _lt: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint &mut elements of a T: Send slice.
unsafe impl<'a, T: Send> Send for ParIterMut<'a, T> {}
unsafe impl<'a, T: Send> Sync for ParIterMut<'a, T> {}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Producer = Self;

    fn len(&self) -> usize {
        self.len
    }

    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Send> Producer for ParIterMut<'a, T> {
    type Item = &'a mut T;

    unsafe fn take(&self, i: usize) -> &'a mut T {
        &mut *self.ptr.add(i)
    }
}

/// Extension methods on shared slices, mirroring rayon's parallel slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-element chunks (the final chunk
    /// may be shorter). Panics when `chunk_size == 0`.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;

    /// Parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "par_chunks: chunk size must be non-zero");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Extension methods on mutable slices, mirroring rayon's parallel slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable `chunk_size`-element chunks.
    /// Panics when `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;

    /// Parallel iterator over disjoint mutable elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size != 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size: chunk_size,
            _lt: PhantomData,
        }
    }

    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _lt: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// By-value sources: ranges and vectors.
// ---------------------------------------------------------------------------

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Convert into a parallel iterator over the pool.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    start: T,
    len: usize,
}

macro_rules! range_impl {
    ($t:ty) => {
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type Producer = Self;

            fn len(&self) -> usize {
                self.len
            }

            fn into_producer(self) -> Self {
                self
            }
        }

        impl Producer for ParRange<$t> {
            type Item = $t;

            unsafe fn take(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParRange {
                    start: self.start,
                    len,
                }
            }
        }
    };
}

range_impl!(usize);
range_impl!(u32);
range_impl!(u64);
range_impl!(i32);
range_impl!(i64);

/// Parallel iterator owning a `Vec`'s elements.
pub struct ParVec<T> {
    vec: Vec<T>,
}

/// Producer for [`ParVec`]: moves each element out exactly once, then frees
/// the (now element-less) allocation on drop. If a chunk panics, unclaimed
/// elements leak rather than risking a double drop.
pub struct VecProducer<T> {
    buf: ManuallyDrop<Vec<T>>,
}

// SAFETY: disjoint claim-once reads of T: Send elements.
unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Producer = VecProducer<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn into_producer(self) -> VecProducer<T> {
        VecProducer {
            buf: ManuallyDrop::new(self.vec),
        }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;

    unsafe fn take(&self, i: usize) -> T {
        std::ptr::read(self.buf.as_ptr().add(i))
    }
}

impl<T> Drop for VecProducer<T> {
    fn drop(&mut self) {
        // SAFETY: elements were moved out by `take`; free the allocation
        // without dropping them again.
        unsafe {
            let mut v = ManuallyDrop::take(&mut self.buf);
            v.set_len(0);
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { vec: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _lt: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Pools.
// ---------------------------------------------------------------------------

/// Builder for a scoped-width pool view, mirroring
/// `rayon::ThreadPoolBuilder`.
///
/// All pools share one global worker set (grown on demand); a built
/// [`ThreadPool`] scopes the *effective width* of parallel operations run
/// under [`ThreadPool::install`]. `num_threads(0)` (the default) means the
/// global default width.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for pool construction; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder (default width).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a specific thread count (`0` = global default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool view; infallible.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped-width view onto the global worker pool.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width in effect: parallel operations
    /// (and nested ones on pool workers) use up to this many threads.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        pool::install_cap(self.num_threads, op)
    }

    /// The effective thread count of this pool.
    pub fn current_num_threads(&self) -> usize {
        pool::resolve_cap(self.num_threads)
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn par_chunks_zip_matches_sequential() {
        let src = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0f64; 5];
        dst.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(d, s)| {
                for (di, si) in d.iter_mut().zip(s) {
                    *di = si * 2.0;
                }
            });
        assert_eq!(dst, [2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn into_par_iter_on_range_collects() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 6 * 7), 42);
        assert_eq!(pool.current_num_threads(), 4);
        pool.install(|| assert_eq!(super::current_num_threads(), 4));
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..16usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(Duration::from_millis(5));
            });
        });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected at least two distinct worker threads, got {}",
            ids.lock().unwrap().len()
        );
    }

    #[test]
    fn ordered_sum_is_bit_identical_at_every_width() {
        // Awkward magnitudes so that association order matters in f64.
        let data: Vec<f64> = (0..40_000)
            .map(|i| ((i as f64) * 0.7).sin() * 1e10 + 1e-7 * i as f64)
            .collect();
        let reference: f64 = data.chunks(4096).map(|c| c.iter().sum::<f64>()).sum();
        for t in [1usize, 2, 3, 4, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap();
            let s: f64 = pool.install(|| {
                data.par_chunks(4096)
                    .map(|c| c.iter().sum::<f64>())
                    .sum::<f64>()
            });
            assert_eq!(
                s.to_bits(),
                reference.to_bits(),
                "sum diverged at {t} threads"
            );
        }
    }

    #[test]
    fn ordered_collect_preserves_index_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v: Vec<usize> = pool.install(|| (0..10_000usize).into_par_iter().map(|i| i).collect());
        assert!(v.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let (a, b) = pool.install(|| super::join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_install_and_join_do_not_deadlock() {
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let total: usize = outer.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let inner = super::ThreadPoolBuilder::new()
                        .num_threads(2)
                        .build()
                        .unwrap();
                    let nested: usize =
                        inner.install(|| (0..64usize).into_par_iter().map(|j| j + i).sum());
                    let (x, y) = super::join(|| nested, || i * 3);
                    x + y
                })
                .sum()
        });
        let want: usize = (0..8usize)
            .map(|i| (0..64usize).map(|j| j + i).sum::<usize>() + i * 3)
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn panics_propagate_from_workers() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let caught = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("chunk 37 exploded");
                    }
                });
            });
        });
        assert!(caught.is_err(), "worker panic must reach the launcher");
        // The pool must remain usable afterwards.
        let v: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|i| i).collect());
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn pool_stats_count_launched_sets_and_chunks() {
        let before = super::pool_stats();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        // 32 chunks of visible work; every chunk must be accounted to
        // either a worker or the launcher once the set completes.
        pool.install(|| {
            (0..32usize).into_par_iter().for_each(|_| {
                std::thread::sleep(Duration::from_micros(200));
            });
        });
        // Workers flush their drain-boundary counters just *after* the
        // launcher unblocks, so allow the flush a moment to land.
        let mut after = super::pool_stats();
        for _ in 0..200 {
            if after.total_tasks() >= before.total_tasks() + 32 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            after = super::pool_stats();
        }
        assert!(
            after.sets_launched > before.sets_launched,
            "set launch not counted"
        );
        assert!(
            after.total_tasks() >= before.total_tasks() + 32,
            "chunk accounting lost work: before={} after={}",
            before.total_tasks(),
            after.total_tasks()
        );
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![1u64; 1000];
        let counter = AtomicUsize::new(0);
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            v.par_iter_mut().for_each(|x| {
                *x += 1;
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let lens: Vec<usize> = pool.install(|| v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }
}
