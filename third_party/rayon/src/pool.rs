//! The threaded runtime behind the `par_*` API: a lazily-spawned, long-lived
//! worker pool fed through a shared injector, with chunk-dealing
//! self-scheduling for load balance.
//!
//! # Execution model
//!
//! Every parallel operation is flattened into an indexed task set: `n`
//! independent chunks, numbered `0..n`. Launching a set means
//!
//! 1. type-erasing the caller's `Fn(usize)` chunk body,
//! 2. pushing up to `cap - 1` *helper tickets* (clones of one
//!    [`Arc<TaskSet>`]) onto the global injector and waking idle workers,
//! 3. the launching thread itself claiming chunks in a loop.
//!
//! Chunk claiming is a single `fetch_add` on the set's `next` cursor, so
//! whichever thread is idle takes the next chunk — tail imbalance is
//! absorbed automatically (a worker stuck on a slow chunk simply stops
//! claiming while the others, and the launcher, drain the rest). Threads
//! that finish their own set steal work from the injector while waiting for
//! stragglers, so the pool stays busy across overlapping sets.
//!
//! # Determinism
//!
//! The scheduler never decides *what* a chunk computes — chunk boundaries
//! are fixed by the caller (e.g. a fixed 4096-element reduction block), and
//! ordered consumers (`sum`, `collect`) write each chunk's result into its
//! own index slot and combine the slots in index order on the launching
//! thread. Results are therefore bit-identical at every thread count,
//! including the sequential `cap <= 1` fast path.
//!
//! # Deadlock freedom (nested parallelism)
//!
//! A launcher only ever blocks on chunks that were already *claimed*, and a
//! claimed chunk is actively running on the thread that claimed it. Nested
//! operations launched from inside a chunk follow the same rule — in the
//! worst case (no idle worker ever picks up a ticket) the launching thread
//! drains its whole set itself. There is no cyclic wait, so nested
//! `install`/`join`/`par_*` calls cannot deadlock, at any pool width.
//!
//! # Safety of the lifetime erasure
//!
//! The chunk body borrows the caller's stack (producers, output slots). It
//! is stored in the [`TaskSet`] as a `'static` reference obtained by
//! transmute, which is sound because the borrow is only dereferenced after
//! a successful claim (`next.fetch_add < total`), every successful claim
//! happens before the matching completion is counted, and the launcher does
//! not return before `completed == total`. Stale tickets popped after a set
//! is drained fail the claim and never touch the pointer; the `Arc` keeps
//! the counters themselves alive.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// One launched parallel operation: `total` chunks claimed through `next`.
pub(crate) struct TaskSet {
    /// Type-erased chunk body; see the module docs for the safety argument
    /// behind the faked `'static` lifetime.
    work: &'static (dyn Fn(usize) + Sync),
    /// Shared cursor: the next unclaimed chunk index.
    next: AtomicUsize,
    /// Total number of chunks.
    total: usize,
    /// Number of chunks that finished running.
    completed: AtomicUsize,
    /// Thread cap the set was launched under; helpers adopt it so nested
    /// parallel operations see the installing pool's width.
    cap: usize,
    /// Completion latch for the launcher.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic observed in any chunk, rethrown on the launcher.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl TaskSet {
    fn new(work: &(dyn Fn(usize) + Sync), total: usize, cap: usize) -> Arc<TaskSet> {
        // SAFETY: lifetime erasure; sound per the module-level argument
        // (dereference only behind successful claims, launcher blocks until
        // all claims have completed).
        let work: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(work) };
        Arc::new(TaskSet {
            work,
            next: AtomicUsize::new(0),
            total,
            completed: AtomicUsize::new(0),
            cap,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn is_done(&self) -> bool {
        self.completed.load(Ordering::SeqCst) >= self.total
    }
}

/// Claim and run one chunk; `false` when the set has no unclaimed chunks.
fn run_one(set: &TaskSet) -> bool {
    let i = set.next.fetch_add(1, Ordering::SeqCst);
    if i >= set.total {
        return false;
    }
    let result = catch_unwind(AssertUnwindSafe(|| (set.work)(i)));
    if let Err(payload) = result {
        let mut slot = set.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if set.completed.fetch_add(1, Ordering::SeqCst) + 1 == set.total {
        let mut done = set.done.lock().unwrap();
        *done = true;
        set.done_cv.notify_all();
    }
    true
}

/// Counters for one worker thread, written only at drain boundaries (a
/// worker accumulates per-set counts in locals and flushes once per
/// ticket), so the per-chunk fast path stays atomic-free.
#[derive(Default)]
struct WorkerCounters {
    /// Chunks executed by this worker.
    tasks: AtomicU64,
    /// Tickets (task sets) picked up from the shared injector.
    steals: AtomicU64,
    /// Times the worker found the injector empty and blocked.
    idle_waits: AtomicU64,
}

/// Counters for launching threads (the thread calling `par_*`), shared
/// across all launchers since launchers are not pool members.
#[derive(Default)]
struct LauncherCounters {
    /// Chunks drained by launching threads from their own sets.
    tasks: AtomicU64,
    /// Foreign chunks a blocked launcher stole while waiting.
    steals: AtomicU64,
    /// Parallel operations (task sets) launched.
    sets: AtomicU64,
}

fn launcher_counters() -> &'static LauncherCounters {
    static LAUNCHER: OnceLock<LauncherCounters> = OnceLock::new();
    LAUNCHER.get_or_init(LauncherCounters::default)
}

fn worker_counters() -> &'static Mutex<Vec<Arc<WorkerCounters>>> {
    static WORKERS: OnceLock<Mutex<Vec<Arc<WorkerCounters>>>> = OnceLock::new();
    WORKERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A point-in-time copy of one worker's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks executed by this worker.
    pub tasks: u64,
    /// Tickets (task sets) picked up from the shared injector.
    pub steals: u64,
    /// Times the worker found the injector empty and blocked.
    pub idle_waits: u64,
}

/// A point-in-time copy of the pool's activity counters; see
/// [`pool_stats`].
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// One entry per spawned worker thread, in spawn order.
    pub workers: Vec<WorkerStats>,
    /// Chunks drained by launching threads from their own sets.
    pub launcher_tasks: u64,
    /// Foreign chunks blocked launchers stole while waiting.
    pub launcher_steals: u64,
    /// Parallel operations (task sets) launched.
    pub sets_launched: u64,
}

impl PoolStats {
    /// Total chunks executed anywhere (workers + launchers).
    pub fn total_tasks(&self) -> u64 {
        self.launcher_tasks
            + self.launcher_steals
            + self.workers.iter().map(|w| w.tasks).sum::<u64>()
    }
}

/// Sample the pool's activity counters. Cheap (one lock on the worker
/// list, relaxed loads) and safe to call at any time; counters are
/// monotonic between [`reset_pool_stats`] calls. Because workers flush at
/// drain boundaries, in-flight sets may be partially reflected.
pub fn pool_stats() -> PoolStats {
    let workers = worker_counters()
        .lock()
        .unwrap()
        .iter()
        .map(|w| WorkerStats {
            tasks: w.tasks.load(Ordering::Relaxed),
            steals: w.steals.load(Ordering::Relaxed),
            idle_waits: w.idle_waits.load(Ordering::Relaxed),
        })
        .collect();
    let l = launcher_counters();
    PoolStats {
        workers,
        launcher_tasks: l.tasks.load(Ordering::Relaxed),
        launcher_steals: l.steals.load(Ordering::Relaxed),
        sets_launched: l.sets.load(Ordering::Relaxed),
    }
}

/// Zero all pool activity counters (per-run isolation for benches).
pub fn reset_pool_stats() {
    for w in worker_counters().lock().unwrap().iter() {
        w.tasks.store(0, Ordering::Relaxed);
        w.steals.store(0, Ordering::Relaxed);
        w.idle_waits.store(0, Ordering::Relaxed);
    }
    let l = launcher_counters();
    l.tasks.store(0, Ordering::Relaxed);
    l.steals.store(0, Ordering::Relaxed);
    l.sets.store(0, Ordering::Relaxed);
}

/// The global worker registry: injector queue plus lazily-spawned workers.
pub(crate) struct Registry {
    injector: Mutex<VecDeque<Arc<TaskSet>>>,
    work_cv: Condvar,
    spawned: Mutex<usize>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            spawned: Mutex::new(0),
        }
    }

    /// Push `copies` helper tickets for `set` and wake idle workers.
    fn inject(&self, set: &Arc<TaskSet>, copies: usize) {
        let mut q = self.injector.lock().unwrap();
        for _ in 0..copies {
            q.push_back(set.clone());
        }
        drop(q);
        if copies <= 1 {
            self.work_cv.notify_one();
        } else {
            self.work_cv.notify_all();
        }
    }

    fn try_pop(&self) -> Option<Arc<TaskSet>> {
        self.injector.lock().unwrap().pop_front()
    }

    fn pop_blocking(&self, counters: &WorkerCounters) -> Arc<TaskSet> {
        let mut q = self.injector.lock().unwrap();
        let mut waited = false;
        loop {
            if let Some(set) = q.pop_front() {
                // Flush idle accounting once per successful pop, off the
                // chunk fast path.
                if waited {
                    counters.idle_waits.fetch_add(1, Ordering::Relaxed);
                }
                return set;
            }
            waited = true;
            q = self.work_cv.wait(q).unwrap();
        }
    }

    /// Make sure at least `target` worker threads exist. Spawn failures
    /// degrade gracefully: the launcher can always drain its set alone.
    fn ensure_workers(&'static self, target: usize) {
        let mut count = self.spawned.lock().unwrap();
        while *count < target {
            let name = format!("qpinn-rayon-{}", *count);
            let counters = Arc::new(WorkerCounters::default());
            let thread_counters = counters.clone();
            let spawn = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(self, thread_counters));
            if spawn.is_err() {
                break;
            }
            worker_counters().lock().unwrap().push(counters);
            *count += 1;
        }
    }
}

fn worker_loop(reg: &'static Registry, counters: Arc<WorkerCounters>) {
    loop {
        let set = reg.pop_blocking(&counters);
        counters.steals.fetch_add(1, Ordering::Relaxed);
        // Failpoint: a worker goes to sleep right after claiming a ticket.
        // Exercises the straggler path — the launcher and other workers
        // must drain the set around the stalled thread, and because ordered
        // consumers combine per-chunk slots in index order, results must
        // stay bit-identical no matter which chunks the sleeper loses.
        if qpinn_testkit::should_fail("pool.steal_stall") {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Accumulate the chunk count locally and flush once per ticket:
        // the claim/run fast path inside `run_one` stays counter-free.
        let mut ran = 0u64;
        with_cap(set.cap, || {
            while run_one(&set) {
                ran += 1;
            }
        });
        if ran > 0 {
            counters.tasks.fetch_add(ran, Ordering::Relaxed);
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

static DEFAULT_CAP: OnceLock<usize> = OnceLock::new();

/// The default thread cap: `RAYON_NUM_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
fn default_cap() -> usize {
    *DEFAULT_CAP.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

thread_local! {
    /// Per-thread cap override installed by `ThreadPool::install` (and by
    /// workers for the duration of each ticket they run).
    static CAP_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread cap in effect on the current thread.
pub(crate) fn current_cap() -> usize {
    CAP_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(default_cap)
}

/// Run `f` with the cap overridden to `cap`, restoring on exit (including
/// on unwind).
pub(crate) fn with_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CAP_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CAP_OVERRIDE.with(|c| c.replace(Some(cap))));
    f()
}

/// `ThreadPool::install`: resolve the requested width, make sure the
/// workers exist, and run `op` under that cap.
pub(crate) fn install_cap<R>(cap: usize, op: impl FnOnce() -> R) -> R {
    let cap = if cap == 0 { default_cap() } else { cap };
    if cap > 1 {
        registry().ensure_workers(cap - 1);
    }
    with_cap(cap, op)
}

/// Resolve a builder-requested thread count (0 = default).
pub(crate) fn resolve_cap(requested: usize) -> usize {
    if requested == 0 {
        default_cap()
    } else {
        requested
    }
}

/// Block until `set` completes, stealing other queued work while waiting.
fn wait_until_done(reg: &Registry, set: &TaskSet) {
    let mut stolen = 0u64;
    loop {
        if set.is_done() {
            break;
        }
        if let Some(other) = reg.try_pop() {
            // Steal one chunk at a time so we notice our own completion
            // promptly even when helping a long-running foreign set.
            with_cap(other.cap, || {
                if run_one(&other) {
                    stolen += 1;
                }
            });
            continue;
        }
        let guard = set.done.lock().unwrap();
        if *guard {
            break;
        }
        let _ = set
            .done_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
    }
    if stolen > 0 {
        launcher_counters().steals.fetch_add(stolen, Ordering::Relaxed);
    }
}

/// Run `work(i)` for every `i in 0..n`, in parallel up to the current cap.
///
/// The sequential fast path (`cap <= 1` or a single chunk) runs chunks in
/// index order on the calling thread; because ordered consumers combine
/// per-chunk results in index order regardless of scheduling, both paths
/// produce bit-identical results.
pub(crate) fn parallel_for(n: usize, work: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let cap = current_cap();
    if cap <= 1 || n == 1 {
        for i in 0..n {
            work(i);
        }
        return;
    }
    let reg = registry();
    reg.ensure_workers(cap - 1);
    let set = TaskSet::new(work, n, cap);
    let helpers = (cap - 1).min(n - 1);
    reg.inject(&set, helpers);
    let launcher = launcher_counters();
    launcher.sets.fetch_add(1, Ordering::Relaxed);
    let mut ran = 0u64;
    while run_one(&set) {
        ran += 1;
    }
    if ran > 0 {
        launcher.tasks.fetch_add(ran, Ordering::Relaxed);
    }
    wait_until_done(reg, &set);
    let payload = set.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// `rayon::join`: run `a` on the calling thread while offering `b` to the
/// pool; if no worker claims `b` first, the calling thread runs it too.
pub(crate) fn join_impl<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = current_cap();
    if cap <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let reg = registry();
    reg.ensure_workers(cap - 1);
    let b_slot: Mutex<Option<B>> = Mutex::new(Some(b));
    let r_slot: Mutex<Option<RB>> = Mutex::new(None);
    let work = |_i: usize| {
        let f = b_slot
            .lock()
            .unwrap()
            .take()
            .expect("join task claimed exactly once");
        let r = f();
        *r_slot.lock().unwrap() = Some(r);
    };
    let work_ref: &(dyn Fn(usize) + Sync) = &work;
    let set = TaskSet::new(work_ref, 1, cap);
    launcher_counters().sets.fetch_add(1, Ordering::Relaxed);
    reg.inject(&set, 1);
    // Run `a` here; catch so an unwind cannot race the borrow of `b_slot`
    // still reachable from the injected ticket.
    let ra = catch_unwind(AssertUnwindSafe(a));
    let mut ran = 0u64;
    while run_one(&set) {
        ran += 1;
    }
    if ran > 0 {
        launcher_counters().tasks.fetch_add(ran, Ordering::Relaxed);
    }
    wait_until_done(reg, &set);
    if let Some(payload) = set.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    let ra = match ra {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    };
    let rb = r_slot
        .lock()
        .unwrap()
        .take()
        .expect("join closure ran to completion");
    (ra, rb)
}
