//! Offline stand-in for the `rand` crate.
//!
//! The build sandbox has no access to crates.io, so the workspace vendors a
//! minimal, dependency-free implementation of exactly the `rand` API surface
//! it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over scalar ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12-based `StdRng`, but every property
//! the workspace relies on holds: seeding is deterministic, distinct seeds
//! give distinct streams, and the uniform/normal moments are sound.

#![deny(missing_docs)]

/// Low-level entropy source: a generator of raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive scalar ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A sample of a type with a canonical distribution (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit convenience seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; clamp back
        // inside the half-open interval.
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounding; the tiny modulo bias is
                // irrelevant for test/experiment sampling.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i: usize = rng.gen_range(0..7);
            assert!(i < 7);
            let j: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&j));
        }
    }

    #[test]
    fn uniform_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
