//! # qpinn — Quantum Physics-Informed Neural Networks in Rust
//!
//! The facade crate: re-exports the whole workspace under one roof so the
//! examples and integration tests (and downstream users) need a single
//! dependency.
//!
//! ```
//! use qpinn::problems::TdseProblem;
//! let p = TdseProblem::free_packet();
//! assert!(p.t_end > 0.0);
//! ```
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the architecture
//! and experiment index, and `EXPERIMENTS.md` for reproduction results.

#![deny(missing_docs)]

pub use qpinn_autodiff as autodiff;
pub use qpinn_core as core;
pub use qpinn_dual as dual;
pub use qpinn_fft as fft;
pub use qpinn_linalg as linalg;
pub use qpinn_nn as nn;
pub use qpinn_obs as obs;
pub use qpinn_optim as optim;
pub use qpinn_persist as persist;
pub use qpinn_problems as problems;
pub use qpinn_qcircuit as qcircuit;
pub use qpinn_sampling as sampling;
pub use qpinn_serve as serve;
pub use qpinn_solvers as solvers;
pub use qpinn_telemetry as telemetry;
pub use qpinn_tensor as tensor;
pub use qpinn_testkit as testkit;

/// Crate version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
