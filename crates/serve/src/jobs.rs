//! Train-job submission: `POST /v1/train` accepts a job, a background
//! thread runs the trainer, and `GET /v1/jobs/<id>/progress` streams
//! live epoch/loss/ETA read from the existing [`ProgressHook`] plumbing.
//!
//! On success the trained parameters are published to the
//! [`ModelRegistry`] as the next version of the requested model id; the
//! job's terminal state carries that version so a client can go
//! straight from polling to `POST /v1/eval`. A failed *publish* (e.g.
//! the chaos suite arming `fs.enospc` under the registry) marks the job
//! failed — surfaced as `503` by the server — while already-published
//! versions stay intact and servable, because registry writes are the
//! same atomic tmp+fsync+rename path the checkpoint store uses.

use crate::registry::{ModelRegistry, RegistryError};
use crate::spec::ModelSpec;
use qpinn_core::report::Json;
use qpinn_core::task::{net_config_for, TdseTask, TdseTaskConfig, ZooTask, ZooTaskConfig};
use qpinn_core::trainer::{Progress, ProgressHook, TrainConfig, TrainLog, Trainer};
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_persist::TrainLogRecord;
use qpinn_problems::TdseProblem;
use qpinn_telemetry::{names, TraceCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A parsed `POST /v1/train` body.
#[derive(Clone, Debug)]
pub struct TrainRequest {
    /// Registry id to publish under (required).
    pub model_id: String,
    /// Problem: a legacy TDSE preset (`free`, `harmonic`, `mild-harmonic`,
    /// `barrier`) or any key from the `qpinn-problems` registry
    /// (`helmholtz`, `gray-scott`, …).
    pub problem: String,
    /// Hidden-layer width.
    pub width: usize,
    /// Hidden-layer count.
    pub depth: usize,
    /// Adam epochs.
    pub epochs: usize,
    /// Construction + sampling seed (drives deterministic rebuild).
    pub seed: u64,
    /// Interior collocation points.
    pub n_collocation: usize,
    /// Constant learning rate.
    pub lr: f64,
}

impl TrainRequest {
    /// Parse from a JSON body; everything except `model_id` has serving
    /// defaults sized so a smoke-test job finishes in seconds.
    pub fn from_json(body: &Json) -> Result<TrainRequest, String> {
        let model_id = body
            .get("model_id")
            .and_then(|v| v.as_str())
            .ok_or("missing required string field `model_id`")?
            .to_string();
        let num = |key: &str, default: f64| -> Result<f64, String> {
            match body.get(key) {
                None => Ok(default),
                Some(v) => v.as_num().ok_or(format!("field `{key}` must be a number")),
            }
        };
        let unat = |key: &str, default: usize| -> Result<usize, String> {
            let x = num(key, default as f64)?;
            if x.fract() == 0.0 && x >= 0.0 && x <= u32::MAX as f64 {
                Ok(x as usize)
            } else {
                Err(format!("field `{key}` must be a non-negative integer"))
            }
        };
        let req = TrainRequest {
            model_id,
            problem: body
                .get("problem")
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or("field `problem` must be a string".to_string())
                })
                .transpose()?
                .unwrap_or_else(|| "harmonic".to_string()),
            width: unat("width", 16)?,
            depth: unat("depth", 2)?,
            epochs: unat("epochs", 60)?,
            seed: unat("seed", 0)? as u64,
            n_collocation: unat("n_collocation", 256)?,
            lr: num("lr", 2e-3)?,
        };
        if req.epochs == 0 || req.width == 0 || req.depth == 0 || req.n_collocation == 0 {
            return Err("epochs, width, depth, n_collocation must be positive".into());
        }
        if req.epochs > 100_000 || req.width > 512 || req.n_collocation > 65_536 {
            return Err("train request exceeds serving limits".into());
        }
        job_kind(&req.problem)?;
        Ok(req)
    }
}

/// What a train job will actually run: a legacy TDSE preset or a problem
/// from the `qpinn-problems` registry.
pub enum JobKind {
    /// One of the original TDSE presets, trained through [`TdseTask`].
    Legacy(TdseProblem),
    /// A registry family, trained through the generic [`ZooTask`].
    Zoo(Box<dyn qpinn_problems::PdeProblem>),
}

/// Resolve a problem name: legacy presets first, then the registry.
pub fn job_kind(name: &str) -> Result<JobKind, String> {
    match name {
        "free" => Ok(JobKind::Legacy(TdseProblem::free_packet())),
        "harmonic" => Ok(JobKind::Legacy(TdseProblem::harmonic_packet())),
        "mild-harmonic" => Ok(JobKind::Legacy(TdseProblem::mild_harmonic())),
        "barrier" => Ok(JobKind::Legacy(TdseProblem::barrier_scattering())),
        other => qpinn_problems::lookup(other)
            .map(JobKind::Zoo)
            .map_err(|e| format!("{e} (or a legacy preset free|harmonic|mild-harmonic|barrier)")),
    }
}

/// Build the task config a legacy serve job trains with: the standard
/// architecture, scaled-down sampling/reference grids so submissions
/// finish interactively. Public so tests can train the *identical*
/// config in-process and compare bit-for-bit.
pub fn job_task_config(req: &TrainRequest) -> Result<(TdseProblem, TdseTaskConfig), String> {
    let problem = match job_kind(&req.problem)? {
        JobKind::Legacy(p) => p,
        JobKind::Zoo(p) => {
            return Err(format!(
                "`{}` is a registry problem; use job_zoo_config",
                p.key()
            ))
        }
    };
    let mut cfg = TdseTaskConfig::standard(&problem, req.width, req.depth);
    cfg.n_collocation = req.n_collocation;
    cfg.reference = (128, 200, 16);
    cfg.eval_grid = (32, 12);
    Ok((problem, cfg))
}

/// The [`ZooTaskConfig`] a registry-problem serve job trains with:
/// quick-fidelity reference and the request's width/depth/collocation.
/// Public for the in-process bit-exactness tests.
pub fn job_zoo_config(req: &TrainRequest) -> ZooTaskConfig {
    let mut cfg = ZooTaskConfig::quick();
    cfg.width = req.width;
    cfg.depth = req.depth;
    cfg.n_collocation = req.n_collocation;
    cfg
}

/// The train config a serve job uses (constant LR, progress every
/// ~5% of the run). Public for the in-process equivalence tests.
pub fn job_train_config(req: &TrainRequest, hook: Option<ProgressHook>) -> TrainConfig {
    TrainConfig {
        epochs: req.epochs,
        schedule: LrSchedule::Constant { lr: req.lr },
        log_every: (req.epochs / 20).max(1),
        progress: hook,
        ..TrainConfig::default()
    }
}

/// Life stages of a submitted job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Accepted, thread not yet training.
    Queued,
    /// Training.
    Running,
    /// Trained and published as `model_id@version`.
    Completed {
        /// The registry version the job published.
        version: u64,
        /// Final evaluation error.
        eval_error: f64,
    },
    /// Training or publishing failed; serving state is unchanged.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// Mutable state of one job, shared with its training thread.
struct JobEntry {
    model_id: String,
    /// Trace id of the submitting HTTP request (empty when tracing was
    /// off); echoed in the progress document so a poller can join a job
    /// back to the access log.
    trace: String,
    /// `qpinn-run-v1` run id (pre-minted at submit when the manager
    /// records runs, so pollers can follow `/v1/runs/<id>` while the
    /// job is still training); empty when run recording is off.
    run_id: String,
    status: JobStatus,
    progress: Progress,
}

/// Owns job state and training threads.
pub struct JobManager {
    registry: Arc<ModelRegistry>,
    jobs: Mutex<HashMap<String, Arc<Mutex<JobEntry>>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    runs: Option<std::path::PathBuf>,
}

impl JobManager {
    /// Manager publishing into `registry`.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        JobManager {
            registry,
            jobs: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            runs: None,
        }
    }

    /// Record every submitted job into the `qpinn-run-v1` store under
    /// `dir` (manifest + epoch series, stamped with the submitting
    /// request's trace id).
    pub fn record_runs(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.runs = dir;
        self
    }

    /// Start a training thread for `req`; returns the job id to poll.
    /// The submitting request's [`TraceCtx`] (if tracing is on) is
    /// stored on the job and stamped onto its `train_job` span.
    pub fn submit(&self, req: TrainRequest, ctx: &TraceCtx) -> String {
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let trace = if ctx.on { ctx.id.clone() } else { String::new() };
        // Pre-mint the run id so the progress document can point at the
        // run record from the very first poll.
        let run = self.runs.as_ref().map(|dir| {
            let run_id = qpinn_telemetry::trace::fresh_id();
            qpinn_core::runs::RunConfig::new(dir, format!("serve/{}", req.problem), req.seed)
                .config(Json::obj(vec![
                    ("model_id", Json::Str(req.model_id.clone())),
                    ("problem", Json::Str(req.problem.clone())),
                    ("width", Json::Num(req.width as f64)),
                    ("depth", Json::Num(req.depth as f64)),
                    ("n_collocation", Json::Num(req.n_collocation as f64)),
                ]))
                .trace(trace.clone())
                .run_id(run_id)
        });
        let entry = Arc::new(Mutex::new(JobEntry {
            model_id: req.model_id.clone(),
            trace: trace.clone(),
            run_id: run
                .as_ref()
                .and_then(|r| r.run_id.clone())
                .unwrap_or_default(),
            status: JobStatus::Queued,
            progress: Progress::default(),
        }));
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id.clone(), entry.clone());
        qpinn_telemetry::counter(names::SERVE_JOBS_STARTED).inc();
        let registry = self.registry.clone();
        let thread_id = id.clone();
        let handle = std::thread::Builder::new()
            .name(format!("qpinn-train-{thread_id}"))
            .spawn(move || run_job(registry, entry, req, thread_id, trace, run))
            .expect("spawn train thread");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        id
    }

    /// Render a job's progress document, with the HTTP status it should
    /// be served under (`200` live/done, `503` failed, `None` unknown id).
    pub fn progress_json(&self, job_id: &str) -> Option<(Json, bool)> {
        let entry = self
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(job_id)?
            .clone();
        let e = entry.lock().unwrap_or_else(|p| p.into_inner());
        let mut fields = vec![
            ("job_id", Json::Str(job_id.to_string())),
            ("model_id", Json::Str(e.model_id.clone())),
            (
                "state",
                Json::Str(
                    match e.status {
                        JobStatus::Queued => "queued",
                        JobStatus::Running => "running",
                        JobStatus::Completed { .. } => "completed",
                        JobStatus::Failed { .. } => "failed",
                    }
                    .to_string(),
                ),
            ),
            ("epoch", Json::Num(e.progress.epoch as f64)),
            ("epochs_total", Json::Num(e.progress.epochs_total as f64)),
            ("loss", Json::Num(e.progress.loss)),
            ("lr", Json::Num(e.progress.lr)),
            ("eta_s", Json::Num(e.progress.eta_s)),
            ("wall_s", Json::Num(e.progress.wall_s)),
        ];
        if !e.trace.is_empty() {
            fields.push(("trace", Json::Str(e.trace.clone())));
        }
        if !e.run_id.is_empty() {
            fields.push(("run_id", Json::Str(e.run_id.clone())));
        }
        let mut failed = false;
        match &e.status {
            JobStatus::Completed {
                version,
                eval_error,
            } => {
                fields.push(("version", Json::Num(*version as f64)));
                fields.push(("eval_error", Json::Num(*eval_error)));
            }
            JobStatus::Failed { error } => {
                failed = true;
                fields.push(("error", Json::Str(error.clone())));
            }
            _ => {}
        }
        Some((Json::obj(fields), failed))
    }

    /// Block until every submitted job's thread has exited (clean server
    /// shutdown; jobs are not cancelled, they finish).
    pub fn join_all(&self) {
        let handles: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn fail(entry: &Arc<Mutex<JobEntry>>, error: String) {
    qpinn_telemetry::counter(names::SERVE_JOBS_FAILED).inc();
    entry.lock().unwrap_or_else(|e| e.into_inner()).status = JobStatus::Failed { error };
}

fn run_job(
    registry: Arc<ModelRegistry>,
    entry: Arc<Mutex<JobEntry>>,
    req: TrainRequest,
    job_id: String,
    trace: String,
    run: Option<qpinn_core::runs::RunConfig>,
) {
    // The whole job runs under one span: the trainer's epoch/step spans
    // nest inside it, and the trace id (when the submitting request was
    // traced) lets a timeline tie the training track to that request.
    let mut job_span = qpinn_telemetry::span("train_job");
    job_span.field("job", job_id).field("model", req.model_id.clone());
    if !trace.is_empty() {
        job_span.field("trace", trace);
    }
    entry.lock().unwrap_or_else(|e| e.into_inner()).status = JobStatus::Running;
    let hook_entry = entry.clone();
    let hook = ProgressHook::new(move |p: &Progress| {
        hook_entry.lock().unwrap_or_else(|e| e.into_inner()).progress = *p;
    });
    let trained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(req.seed);
        let mut train_cfg = job_train_config(&req, Some(hook));
        train_cfg.run = run;
        let trainer = Trainer::new(train_cfg);
        match job_kind(&req.problem)? {
            JobKind::Legacy(problem) => {
                let (_, cfg) = job_task_config(&req)?;
                let spec = ModelSpec {
                    name: "tdse".into(),
                    seed: req.seed,
                    net: cfg.net.clone(),
                    problem: req.problem.clone(),
                };
                let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
                let log = trainer.train(&mut task, &mut params);
                Ok::<_, String>((spec, params, log))
            }
            JobKind::Zoo(problem) => {
                let cfg = job_zoo_config(&req);
                let spec = ModelSpec {
                    // ZooTask registers parameters under the problem key,
                    // so a spec rebuild with the same name replays it.
                    name: problem.key().to_string(),
                    seed: req.seed,
                    net: net_config_for(problem.as_ref(), &cfg),
                    problem: req.problem.clone(),
                };
                let mut task = ZooTask::new(problem, &cfg, &mut params, &mut rng);
                let log = trainer.train(&mut task, &mut params);
                Ok::<_, String>((spec, params, log))
            }
        }
    }));
    let (spec, params, log) = match trained {
        Ok(Ok(t)) => t,
        Ok(Err(msg)) => return fail(&entry, msg),
        Err(_) => return fail(&entry, "training panicked".into()),
    };
    match registry.publish(
        &req.model_id,
        &spec,
        &params,
        log_record(&log),
        req.epochs as u64,
        log.final_error,
    ) {
        Ok(version) => {
            qpinn_telemetry::counter(names::SERVE_JOBS_COMPLETED).inc();
            entry.lock().unwrap_or_else(|e| e.into_inner()).status = JobStatus::Completed {
                version,
                eval_error: log.final_error,
            };
        }
        Err(e) => {
            let kind = match e {
                RegistryError::Storage(_) => "publish failed",
                _ => "publish rejected",
            };
            fail(&entry, format!("{kind}: {e}"));
        }
    }
}

fn log_record(log: &TrainLog) -> TrainLogRecord {
    TrainLogRecord {
        epochs: log.epochs.iter().map(|&e| e as u64).collect(),
        loss: log.loss.clone(),
        grad_norm: log.grad_norm.clone(),
        eval_epochs: log.eval_epochs.iter().map(|&e| e as u64).collect(),
        error: log.error.clone(),
        wall_s: log.wall_s,
        final_loss: log.final_loss,
        final_error: log.final_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qpinn-serve-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_request(model_id: &str) -> TrainRequest {
        TrainRequest::from_json(
            &Json::parse(&format!(
                r#"{{"model_id":"{model_id}","problem":"harmonic","width":8,"depth":1,
                    "epochs":4,"seed":11,"n_collocation":32}}"#
            ))
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn request_parsing_applies_defaults_and_rejects_bad_input() {
        let req =
            TrainRequest::from_json(&Json::parse(r#"{"model_id":"m"}"#).unwrap()).unwrap();
        assert_eq!(req.problem, "harmonic");
        assert_eq!(req.width, 16);
        assert_eq!(req.epochs, 60);
        assert!(TrainRequest::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(TrainRequest::from_json(
            &Json::parse(r#"{"model_id":"m","problem":"nope"}"#).unwrap()
        )
        .is_err());
        assert!(TrainRequest::from_json(
            &Json::parse(r#"{"model_id":"m","epochs":0}"#).unwrap()
        )
        .is_err());
        assert!(TrainRequest::from_json(
            &Json::parse(r#"{"model_id":"m","width":1e9}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn registry_problem_job_trains_and_publishes_vector_output() {
        // The first vector-valued family through the serve plane: a
        // gray-scott job must train, publish, rebuild from its spec, and
        // serve 2-component predictions.
        let dir = tmp_dir("zoo");
        let registry = Arc::new(ModelRegistry::open(RegistryConfig::new(&dir)).unwrap());
        let jobs = JobManager::new(registry.clone());
        let req = TrainRequest::from_json(
            &Json::parse(
                r#"{"model_id":"gs","problem":"gray-scott","width":8,"depth":1,
                    "epochs":3,"seed":5,"n_collocation":32}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let id = jobs.submit(req, &TraceCtx::disabled());
        let deadline = std::time::Instant::now() + Duration::from_secs(180);
        loop {
            let (doc, failed) = jobs.progress_json(&id).unwrap();
            assert!(!failed, "zoo job failed: {}", doc.to_string());
            if doc.get("state").unwrap().as_str() == Some("completed") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "zoo job did not finish");
            std::thread::sleep(Duration::from_millis(20));
        }
        jobs.join_all();
        let model = registry.resolve("gs").unwrap();
        assert_eq!(model.spec.problem, "gray-scott");
        assert_eq!(model.net.n_fields(), 2);
        let out = model.net.predict(&model.params, &[vec![1.0, 0.5]]);
        assert_eq!(out.shape().dims(), &[1, 2]);
        assert!(out.all_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_problem_is_rejected_with_registry_listing() {
        let err = TrainRequest::from_json(
            &Json::parse(r#"{"model_id":"m","problem":"no-such-pde"}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("gray-scott"), "listing missing: {err}");
        assert!(err.contains("legacy preset"), "{err}");
    }

    #[test]
    fn job_trains_publishes_and_reports_progress() {
        let dir = tmp_dir("train");
        let registry =
            Arc::new(ModelRegistry::open(RegistryConfig::new(&dir)).unwrap());
        let jobs = JobManager::new(registry.clone());
        let id = jobs.submit(tiny_request("served"), &TraceCtx::disabled());
        // Poll to completion.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            let (doc, failed) = jobs.progress_json(&id).unwrap();
            let state = doc.get("state").unwrap().as_str().unwrap().to_string();
            assert!(!failed, "job failed: {}", doc.to_string());
            if state == "completed" {
                assert_eq!(doc.get("version").unwrap().as_num(), Some(1.0));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job did not finish");
            std::thread::sleep(Duration::from_millis(20));
        }
        jobs.join_all();
        // The published model resolves and evaluates.
        let model = registry.resolve("served").unwrap();
        assert_eq!(model.version, 1);
        assert!(model
            .net
            .predict_batch(&model.params, &[0.1, 0.2])
            .all_finite());
        assert!(jobs.progress_json("job-999").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
