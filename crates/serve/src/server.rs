//! The inference server: routing, connection workers, and admission
//! control.
//!
//! Same zero-dependency shape as `qpinn-obs`'s `MetricsServer` — a
//! `std::net::TcpListener`, one response per connection,
//! `Connection: close` — but with a pool of connection workers in front
//! of the routes, because batching only exists when several requests
//! are *in flight* at once. The accept thread pushes connections onto a
//! bounded queue; when the queue is full it sheds immediately with
//! `429 Too Many Requests` + `Retry-After` instead of letting latency
//! grow unbounded (per-model eval queues shed the same way).
//!
//! | route                      | method | body                               |
//! |----------------------------|--------|------------------------------------|
//! | `/v1/models`               | GET    | registry listing                   |
//! | `/v1/problems`             | GET    | `qpinn-problems-v1` catalog        |
//! | `/v1/eval`                 | POST   | `{"model","points"}` → field rows  |
//! | `/v1/train`                | POST   | train request → `202` + job id     |
//! | `/v1/jobs/<id>/progress`   | GET    | live epoch/loss/ETA (failed → 503) |
//! | `/v1/evict`                | POST   | `{"model"}` → drop resident copy   |
//! | `/v1/traces`               | GET    | last `?n=K` access records (`?route=` filters) |
//! | `/v1/runs` `/v1/runs/<id>` | GET    | `qpinn-run-v1` records, shared with `qpinn-obs` |
//! | `/metrics` `/metrics.json` | GET    | shared with `qpinn-obs`            |
//! | `/progress` `/healthz`     | GET    | shared with `qpinn-obs`            |
//!
//! ## Request tracing
//!
//! With tracing on ([`TraceConfig::ring`] > 0, the default) every
//! request is minted a [`TraceCtx`] — adopting a valid inbound
//! `x-qpinn-trace` header, else generating a fresh id — echoed back as
//! an `x-qpinn-trace` response header. The context rides through
//! registry resolution, the batch queue, and the dispatcher flush; on
//! completion the request's latency decomposition (queue wait, batch
//! linger, compute, serialization) lands in the
//! `serve.latency.{queue,batch,compute,total}_ns` histograms, in span
//! events (per-request tracks in `qpinn-obs trace`), and in one
//! `qpinn-access-v1` record in the bounded access ring that
//! `GET /v1/traces` serves. Tracing never changes response bytes; off,
//! its cost is one relaxed atomic load per request.

use crate::batch::{BatchConfig, Batcher, SubmitError};
use crate::jobs::{JobManager, TrainRequest};
use crate::registry::{ModelRegistry, RegistryConfig, RegistryError};
use qpinn_core::report::Json;
use qpinn_obs::http::{read_request, Request, Response};
use qpinn_obs::progress::ProgressTracker;
use qpinn_obs::server::metrics_routes;
use qpinn_telemetry::event::now_ns;
use qpinn_telemetry::{access, names, AccessRecord, Event, Kind, TraceCtx};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server settings.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Model registry settings.
    pub registry: RegistryConfig,
    /// Micro-batch shaping.
    pub batch: BatchConfig,
    /// Connection worker threads. More workers ⇒ more requests in
    /// flight ⇒ more coalescing opportunity.
    pub workers: usize,
    /// Connections queued for workers before the accept thread sheds.
    pub pending_cap: usize,
    /// Request-tracing settings.
    pub trace: TraceConfig,
    /// `qpinn-run-v1` run-record store. `Some(dir)` records every
    /// `POST /v1/train` job under `dir` (manifest + epoch series,
    /// stamped with the submitting request's trace id) and serves
    /// `GET /v1/runs` from it; `None` disables recording, and the runs
    /// routes fall back to the default `target/runs` store read-only.
    pub runs: Option<std::path::PathBuf>,
}

/// Request-tracing settings. Tracing state is process-global (the
/// telemetry access ring): starting a server with `ring > 0` configures
/// it, `ring == 0` disables it.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Access-ring capacity (last-K requests served by `/v1/traces`).
    /// 0 disables request tracing entirely — no ids are minted and the
    /// per-request cost is one relaxed atomic load.
    pub ring: usize,
    /// Optional JSONL access-log path; every finished request appends
    /// one `qpinn-access-v1` line (`qpinn-obs requests`/`slo` input).
    pub access_log: Option<std::path::PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring: 512,
            access_log: None,
        }
    }
}

impl ServeConfig {
    /// Defaults: 8 workers, 64 queued connections, default batching,
    /// tracing on with a 512-record ring and no access-log file.
    pub fn new(models_dir: impl Into<std::path::PathBuf>) -> Self {
        ServeConfig {
            registry: RegistryConfig::new(models_dir),
            batch: BatchConfig::default(),
            workers: 8,
            pending_cap: 64,
            trace: TraceConfig::default(),
            runs: None,
        }
    }
}

struct ConnQueue {
    conns: VecDeque<TcpStream>,
    shutdown: bool,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    jobs: JobManager,
    batch_cfg: BatchConfig,
    batchers: Mutex<HashMap<(String, u64), Arc<Batcher>>>,
    batcher_joins: Mutex<Vec<JoinHandle<()>>>,
    tracker: Arc<ProgressTracker>,
    started: Instant,
    runs_dir: std::path::PathBuf,
    queue: Mutex<ConnQueue>,
    signal: Condvar,
}

/// A running inference server; stop with [`ServeServer::stop`].
pub struct ServeServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeServer {
    /// Bind `addr` (port 0 picks a free port), open the registry, and
    /// start the accept thread + worker pool. Also installs the shared
    /// progress tracker as a telemetry sink so `/progress` follows any
    /// training this process runs (including submitted train jobs).
    pub fn start(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<ServeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = Arc::new(
            ModelRegistry::open(cfg.registry.clone())
                .map_err(|e| std::io::Error::new(e.kind(), format!("registry: {e}")))?,
        );
        let tracker = Arc::new(ProgressTracker::new());
        qpinn_telemetry::install(tracker.clone());
        if cfg.trace.ring > 0 {
            access::configure(cfg.trace.ring);
            if let Some(path) = &cfg.trace.access_log {
                if let Err(e) = access::log_to(path) {
                    qpinn_telemetry::warn(
                        "access_log_open_failed",
                        format!("cannot open access log {}: {e}", path.display()),
                    );
                }
            }
        } else {
            access::disable();
        }
        let shared = Arc::new(Shared {
            jobs: JobManager::new(registry.clone()).record_runs(cfg.runs.clone()),
            registry,
            batch_cfg: cfg.batch,
            batchers: Mutex::new(HashMap::new()),
            batcher_joins: Mutex::new(Vec::new()),
            tracker,
            started: Instant::now(),
            runs_dir: cfg
                .runs
                .clone()
                .unwrap_or_else(qpinn_core::runs::default_dir),
            queue: Mutex::new(ConnQueue {
                conns: VecDeque::new(),
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let cap = cfg.pending_cap;
            std::thread::Builder::new()
                .name("qpinn-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, shutdown, cap))?
        };
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("qpinn-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServeServer {
            addr: local,
            shared,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        self.shared.registry.clone()
    }

    /// Drain and stop: close the listener loop, finish queued
    /// connections, join workers and per-model batchers, and wait for
    /// any submitted train jobs to finish.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let batchers: Vec<Arc<Batcher>> = self
            .shared
            .batchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain()
            .map(|(_, b)| b)
            .collect();
        for b in &batchers {
            b.close();
        }
        let joins: Vec<_> = self
            .shared
            .batcher_joins
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for j in joins {
            let _ = j.join();
        }
        self.shared.jobs.join_all();
        access::flush();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    pending_cap: usize,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let shed = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.conns.len() >= pending_cap {
                Some(stream)
            } else {
                q.conns.push_back(stream);
                None
            }
        };
        match shed {
            Some(mut stream) => {
                // Too many connections waiting: refuse before even
                // reading the request so a flood cannot exhaust memory.
                // The request line is never read, so the access record
                // has no route and a freshly minted id (any inbound
                // x-qpinn-trace header is still on the wire).
                qpinn_telemetry::counter(names::SERVE_SHED).inc();
                let ctx = TraceCtx::mint(None);
                let mut resp = err_json("429 Too Many Requests", "server busy, retry later")
                    .header("Retry-After", "1");
                if ctx.on {
                    resp = resp.header("x-qpinn-trace", ctx.id.clone());
                    access::record(AccessRecord {
                        trace: ctx.id,
                        ts_ns: now_ns(),
                        status: 429,
                        shed: "pending_cap".into(),
                        ..AccessRecord::default()
                    });
                }
                let _ = resp.write_to(&mut stream);
            }
            None => shared.signal.notify_one(),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.conns.pop_front() {
                    break s;
                }
                if q.shutdown {
                    return;
                }
                q = shared.signal.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let _ = handle_connection(stream, &shared);
    }
}

/// What a route learned about its request, accumulated for the latency
/// histograms and the access record. Zeros mean "stage did not apply"
/// (only eval requests reach a batcher).
#[derive(Default)]
struct ReqMeta {
    /// `id@version` once a model resolved, else empty.
    model: String,
    /// Metric-name key for the model ([`names::model_key`]).
    model_key: String,
    /// Shed reason (`"queue_full"`); accept-queue sheds never get here.
    shed: &'static str,
    batch: u64,
    points: u64,
    queue_ns: u64,
    batch_ns: u64,
    compute_ns: u64,
    /// [`now_ns`] when the forward pass finished (0 = no dispatch).
    compute_end_ns: u64,
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let t0 = Instant::now();
    let start_ns = now_ns();
    let (req, mut stream) = match read_request(stream) {
        Ok(ok) => ok,
        Err(e) => return Err(e),
    };
    qpinn_telemetry::counter(names::SERVE_REQUESTS).inc();
    let ctx = TraceCtx::mint(req.header("x-qpinn-trace"));
    let mut meta = ReqMeta::default();
    let mut response = route(&req, shared, &ctx, &mut meta);
    if ctx.on {
        response = response.header("x-qpinn-trace", ctx.id.clone());
    }
    if response.status.starts_with('5') {
        qpinn_telemetry::counter(names::SERVE_ERRORS).inc();
    }
    let status = status_code(response.status);
    let out = response.write_to(&mut stream);
    let end_ns = now_ns();
    let total_ns = end_ns.saturating_sub(start_ns);
    // Serialization = everything after the forward pass finished
    // (scatter, JSON build, socket write); for routes that never
    // dispatched, everything after routing is lumped here too via the
    // total, and the stage is reported as the post-route remainder.
    let serialize_ns = if meta.compute_end_ns > 0 {
        end_ns.saturating_sub(meta.compute_end_ns)
    } else {
        0
    };
    qpinn_telemetry::histogram(names::SERVE_LATENCY_US)
        .record(t0.elapsed().as_micros() as u64);
    record_latency(&req.path, &meta, total_ns);
    if ctx.on {
        emit_request_spans(&ctx, &req.path, &meta, status, total_ns, serialize_ns, end_ns);
        access::record(AccessRecord {
            trace: ctx.id,
            ts_ns: end_ns,
            route: req.path.clone(),
            model: meta.model,
            status,
            shed: meta.shed.to_string(),
            batch: meta.batch,
            points: meta.points,
            queue_ns: meta.queue_ns,
            batch_ns: meta.batch_ns,
            compute_ns: meta.compute_ns,
            serialize_ns,
            total_ns,
        });
    }
    out
}

/// Numeric status from a `"200 OK"`-style status line.
fn status_code(status: &str) -> u16 {
    status
        .split_whitespace()
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Feed the `serve.latency.*` histograms: base + per-route total, and
/// the batcher stages (+ per-model) when the request was dispatched.
fn record_latency(path: &str, meta: &ReqMeta, total_ns: u64) {
    use qpinn_telemetry::histogram;
    histogram(names::SERVE_LAT_TOTAL_NS).record(total_ns);
    let rk = names::route_key(path);
    histogram(&format!("{}.by_route.{rk}", names::SERVE_LAT_TOTAL_NS)).record(total_ns);
    if meta.compute_end_ns > 0 {
        histogram(names::SERVE_LAT_QUEUE_NS).record(meta.queue_ns);
        histogram(names::SERVE_LAT_BATCH_NS).record(meta.batch_ns);
        histogram(names::SERVE_LAT_COMPUTE_NS).record(meta.compute_ns);
        if !meta.model_key.is_empty() {
            for (base, v) in [
                (names::SERVE_LAT_QUEUE_NS, meta.queue_ns),
                (names::SERVE_LAT_BATCH_NS, meta.batch_ns),
                (names::SERVE_LAT_COMPUTE_NS, meta.compute_ns),
                (names::SERVE_LAT_TOTAL_NS, total_ns),
            ] {
                histogram(&format!("{base}.by_model.{}", meta.model_key)).record(v);
            }
        }
    }
}

/// Emit the per-request span events a Chrome/Perfetto timeline renders
/// as one track per trace id: a `request` root plus its stages, each
/// stamped with a reconstructed end timestamp so they tile in order.
fn emit_request_spans(
    ctx: &TraceCtx,
    path: &str,
    meta: &ReqMeta,
    status: u16,
    total_ns: u64,
    serialize_ns: u64,
    end_ns: u64,
) {
    if !qpinn_telemetry::enabled() {
        return;
    }
    let mut root = Event::new(Kind::Span, "request")
        .field("path", "request")
        .field("dur_ns", total_ns)
        .field("trace", ctx.id.clone())
        .field("route", path.to_string())
        .field("status", status as u64);
    if !meta.model.is_empty() {
        root = root.field("model", meta.model.clone());
    }
    root.ts_ns = end_ns;
    qpinn_telemetry::emit(root);
    if meta.compute_end_ns > 0 {
        let drain_ns = meta.compute_end_ns.saturating_sub(meta.compute_ns);
        let stages = [
            ("request_queue", "request/queue", meta.queue_ns, drain_ns.saturating_sub(meta.batch_ns)),
            ("request_batch", "request/batch", meta.batch_ns, drain_ns),
            ("request_compute", "request/compute", meta.compute_ns, meta.compute_end_ns),
            ("request_serialize", "request/serialize", serialize_ns, end_ns),
        ];
        for (name, span_path, dur, ts) in stages {
            let mut e = Event::new(Kind::Span, name)
                .field("path", span_path)
                .field("dur_ns", dur)
                .field("trace", ctx.id.clone());
            e.ts_ns = ts;
            qpinn_telemetry::emit(e);
        }
    }
}

fn err_json(status: &'static str, msg: &str) -> Response {
    Response::json_status(
        status,
        Json::obj(vec![("error", Json::Str(msg.to_string()))]).to_string(),
    )
}

fn route(req: &Request, shared: &Shared, ctx: &TraceCtx, meta: &mut ReqMeta) -> Response {
    // The read-only observability routes are shared verbatim with the
    // qpinn-obs metrics endpoint.
    if let Some(r) = metrics_routes(&req.method, &req.path, &shared.tracker, shared.started) {
        return r;
    }
    if let Some(r) = qpinn_obs::server::runs_routes(&req.method, &req.path, &shared.runs_dir) {
        return r;
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/models") => models_route(shared),
        ("GET", "/v1/problems") => problems_route(),
        ("POST", "/v1/eval") => eval_route(req, shared, ctx, meta),
        ("POST", "/v1/train") => train_route(req, shared, ctx),
        ("POST", "/v1/evict") => evict_route(req, shared),
        ("GET", "/v1/traces") => traces_route(req),
        ("GET", path) if path.starts_with("/v1/jobs/") => jobs_route(path, shared),
        ("POST", _) | ("GET", _) => err_json("404 Not Found", "no such route"),
        _ => err_json("405 Method Not Allowed", "method not allowed"),
    }
}

/// `GET /v1/traces?n=K&route=PATH`: the last K (default 64) access
/// records from the ring, oldest first — sheds and errors included.
/// `route=` keeps only records whose route key matches exactly (e.g.
/// `route=/v1/eval`; accept-queue sheds have an empty route), applied
/// before the last-K cut so K filtered records come back.
fn traces_route(req: &Request) -> Response {
    let param = |key: &str| -> Option<String> {
        req.query
            .as_deref()
            .into_iter()
            .flat_map(|q| q.split('&'))
            .find_map(|kv| kv.strip_prefix(key))
            .map(str::to_string)
    };
    let n = param("n=")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64)
        .min(4096);
    let records = match param("route=") {
        Some(route) => {
            let mut all = access::last(4096);
            all.retain(|r| r.route == route);
            if all.len() > n {
                all.drain(..all.len() - n);
            }
            all
        }
        None => access::last(n),
    };
    Response::json(access::render_traces(&records, access::enabled()))
}

fn models_route(shared: &Shared) -> Response {
    let rows: Vec<Json> = shared
        .registry
        .list()
        .into_iter()
        .map(|m| {
            Json::obj(vec![
                ("id", Json::Str(m.id)),
                ("version", Json::Num(m.version as f64)),
                ("bytes", Json::Num(m.bytes as f64)),
                ("intact", Json::Bool(m.intact)),
                (
                    "eval_error",
                    m.eval_error.map(Json::Num).unwrap_or(Json::Null),
                ),
                ("loaded", Json::Bool(m.loaded)),
                (
                    "problem",
                    m.problem.map(Json::Str).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    Response::json(Json::obj(vec![("models", Json::Arr(rows))]).to_string())
}

/// `GET /v1/problems`: the `qpinn-problems-v1` catalog — every
/// registered PDE family (trainable via `POST /v1/train` with
/// `"problem": "<key>"`) and every circuit template. Built once and
/// cached: the registry is compile-time data.
fn problems_route() -> Response {
    static DOC: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    Response::json(DOC.get_or_init(|| qpinn_core::problems_doc().to_string()).clone())
}

fn registry_error_response(e: RegistryError) -> Response {
    match e {
        RegistryError::NotFound(m) => err_json("404 Not Found", &m),
        RegistryError::BadReference(m) => err_json("400 Bad Request", &m),
        RegistryError::Unserveable(m) => err_json("503 Service Unavailable", &m),
        RegistryError::Storage(m) => err_json("500 Internal Server Error", &m),
    }
}

/// Fetch (or lazily spawn) the batcher for a resolved model version.
/// With tracing on, registry resolution gets its own span event tied
/// to the request's trace id (cache hits and cold loads both).
fn batcher_for(
    shared: &Shared,
    model_ref: &str,
    ctx: &TraceCtx,
) -> Result<Arc<Batcher>, Response> {
    let resolve_start = now_ns();
    let resolved = shared.registry.resolve(model_ref);
    if ctx.on && qpinn_telemetry::enabled() {
        let mut e = Event::new(Kind::Span, "request_resolve")
            .field("path", "request/resolve")
            .field("dur_ns", now_ns().saturating_sub(resolve_start))
            .field("trace", ctx.id.clone())
            .field("ok", resolved.is_ok());
        e.ts_ns = now_ns();
        qpinn_telemetry::emit(e);
    }
    let model = resolved.map_err(registry_error_response)?;
    let key = (model.id.clone(), model.version);
    let mut map = shared.batchers.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(b) = map.get(&key) {
        return Ok(b.clone());
    }
    let (b, join) = Batcher::spawn(model, shared.batch_cfg.clone());
    shared
        .batcher_joins
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(join);
    map.insert(key, b.clone());
    Ok(b)
}

fn eval_route(req: &Request, shared: &Shared, ctx: &TraceCtx, meta: &mut ReqMeta) -> Response {
    let body = match req.body_str().map_err(|e| e.to_string()).and_then(|s| {
        Json::parse(s).map_err(|e| format!("invalid JSON body: {e}"))
    }) {
        Ok(j) => j,
        Err(msg) => return err_json("400 Bad Request", &msg),
    };
    let model_ref = match body.get("model").and_then(|v| v.as_str()) {
        Some(m) => m,
        None => return err_json("400 Bad Request", "missing string field `model`"),
    };
    let points = match body.get("points") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        _ => return err_json("400 Bad Request", "field `points` must be a non-empty array"),
    };
    let batcher = match batcher_for(shared, model_ref, ctx) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    meta.model = batcher.model().qualified_name();
    meta.model_key = names::model_key(&batcher.model().id, batcher.model().version);
    meta.points = points.len() as u64;
    let arity = batcher.model().net.n_coords();
    let n_fields = batcher.model().net.n_fields();
    let mut coords = Vec::with_capacity(points.len() * arity);
    for (i, row) in points.iter().enumerate() {
        let ok = match row {
            Json::Arr(xs) if xs.len() == arity => {
                xs.iter().all(|x| {
                    x.as_num().map(|v| coords.push(v)).is_some()
                })
            }
            _ => false,
        };
        if !ok {
            return err_json(
                "400 Bad Request",
                &format!("points[{i}] must be an array of {arity} numbers"),
            );
        }
    }
    match batcher.eval_traced(coords, ctx) {
        Ok(out) => {
            meta.queue_ns = out.timing.queue_ns;
            meta.batch_ns = out.timing.batch_ns;
            meta.compute_ns = out.timing.compute_ns;
            meta.compute_end_ns = out.timing.compute_end_ns;
            meta.batch = out.timing.batch_size;
            let rows: Vec<Json> = out
                .rows
                .chunks(n_fields)
                .map(|row| Json::nums(row))
                .collect();
            let model = batcher.model();
            Response::json(
                Json::obj(vec![
                    ("model", Json::Str(model.id.clone())),
                    ("version", Json::Num(model.version as f64)),
                    ("n_fields", Json::Num(n_fields as f64)),
                    ("values", Json::Arr(rows)),
                ])
                .to_string(),
            )
        }
        Err(SubmitError::QueueFull) => {
            meta.shed = "queue_full";
            err_json("429 Too Many Requests", "eval queue full, retry later")
                .header("Retry-After", "1")
        }
        Err(SubmitError::BadShape { expected_arity }) => err_json(
            "400 Bad Request",
            &format!("coordinates must come in rows of {expected_arity}"),
        ),
        Err(SubmitError::Closed) => {
            err_json("503 Service Unavailable", "evaluation failed or shutting down")
        }
    }
}

fn train_route(req: &Request, shared: &Shared, ctx: &TraceCtx) -> Response {
    let parsed = req
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(|s| Json::parse(s).map_err(|e| format!("invalid JSON body: {e}")))
        .and_then(|j| TrainRequest::from_json(&j));
    match parsed {
        Ok(train) => {
            let model_id = train.model_id.clone();
            let job_id = shared.jobs.submit(train, ctx);
            Response::json_status(
                "202 Accepted",
                Json::obj(vec![
                    ("job_id", Json::Str(job_id.clone())),
                    ("model_id", Json::Str(model_id)),
                    (
                        "progress_url",
                        Json::Str(format!("/v1/jobs/{job_id}/progress")),
                    ),
                ])
                .to_string(),
            )
        }
        Err(msg) => err_json("400 Bad Request", &msg),
    }
}

fn jobs_route(path: &str, shared: &Shared) -> Response {
    // Path shape: /v1/jobs/<id>/progress
    let rest = &path["/v1/jobs/".len()..];
    let Some(job_id) = rest.strip_suffix("/progress") else {
        return err_json("404 Not Found", "try /v1/jobs/<id>/progress");
    };
    match shared.jobs.progress_json(job_id) {
        // A failed job (training error or registry publish failure, e.g.
        // disk full) serves its progress document under 503 so pollers
        // and load balancers both see the degradation.
        Some((doc, failed)) => Response::json_status(
            if failed {
                "503 Service Unavailable"
            } else {
                "200 OK"
            },
            doc.to_string(),
        ),
        None => err_json("404 Not Found", &format!("no job `{job_id}`")),
    }
}

fn evict_route(req: &Request, shared: &Shared) -> Response {
    let model_ref = req
        .body_str()
        .ok()
        .and_then(|s| Json::parse(s).ok())
        .and_then(|j| j.get("model").and_then(|v| v.as_str()).map(str::to_string));
    let Some(model_ref) = model_ref else {
        return err_json("400 Bad Request", "body must be {\"model\":\"id[@version]\"}");
    };
    match shared.registry.evict(&model_ref) {
        Ok(was_loaded) => Response::json(
            Json::obj(vec![
                ("model", Json::Str(model_ref)),
                ("evicted", Json::Bool(was_loaded)),
            ])
            .to_string(),
        ),
        Err(e) => registry_error_response(e),
    }
}
