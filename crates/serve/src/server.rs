//! The inference server: routing, connection workers, and admission
//! control.
//!
//! Same zero-dependency shape as `qpinn-obs`'s `MetricsServer` — a
//! `std::net::TcpListener`, one response per connection,
//! `Connection: close` — but with a pool of connection workers in front
//! of the routes, because batching only exists when several requests
//! are *in flight* at once. The accept thread pushes connections onto a
//! bounded queue; when the queue is full it sheds immediately with
//! `429 Too Many Requests` + `Retry-After` instead of letting latency
//! grow unbounded (per-model eval queues shed the same way).
//!
//! | route                      | method | body                               |
//! |----------------------------|--------|------------------------------------|
//! | `/v1/models`               | GET    | registry listing                   |
//! | `/v1/eval`                 | POST   | `{"model","points"}` → field rows  |
//! | `/v1/train`                | POST   | train request → `202` + job id     |
//! | `/v1/jobs/<id>/progress`   | GET    | live epoch/loss/ETA (failed → 503) |
//! | `/v1/evict`                | POST   | `{"model"}` → drop resident copy   |
//! | `/metrics` `/metrics.json` | GET    | shared with `qpinn-obs`            |
//! | `/progress` `/healthz`     | GET    | shared with `qpinn-obs`            |

use crate::batch::{BatchConfig, Batcher, SubmitError};
use crate::jobs::{JobManager, TrainRequest};
use crate::registry::{ModelRegistry, RegistryConfig, RegistryError};
use qpinn_core::report::Json;
use qpinn_obs::http::{read_request, Request, Response};
use qpinn_obs::progress::ProgressTracker;
use qpinn_obs::server::metrics_routes;
use qpinn_telemetry::names;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server settings.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Model registry settings.
    pub registry: RegistryConfig,
    /// Micro-batch shaping.
    pub batch: BatchConfig,
    /// Connection worker threads. More workers ⇒ more requests in
    /// flight ⇒ more coalescing opportunity.
    pub workers: usize,
    /// Connections queued for workers before the accept thread sheds.
    pub pending_cap: usize,
}

impl ServeConfig {
    /// Defaults: 8 workers, 64 queued connections, default batching.
    pub fn new(models_dir: impl Into<std::path::PathBuf>) -> Self {
        ServeConfig {
            registry: RegistryConfig::new(models_dir),
            batch: BatchConfig::default(),
            workers: 8,
            pending_cap: 64,
        }
    }
}

struct ConnQueue {
    conns: VecDeque<TcpStream>,
    shutdown: bool,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    jobs: JobManager,
    batch_cfg: BatchConfig,
    batchers: Mutex<HashMap<(String, u64), Arc<Batcher>>>,
    batcher_joins: Mutex<Vec<JoinHandle<()>>>,
    tracker: Arc<ProgressTracker>,
    started: Instant,
    queue: Mutex<ConnQueue>,
    signal: Condvar,
}

/// A running inference server; stop with [`ServeServer::stop`].
pub struct ServeServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeServer {
    /// Bind `addr` (port 0 picks a free port), open the registry, and
    /// start the accept thread + worker pool. Also installs the shared
    /// progress tracker as a telemetry sink so `/progress` follows any
    /// training this process runs (including submitted train jobs).
    pub fn start(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<ServeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let registry = Arc::new(
            ModelRegistry::open(cfg.registry.clone())
                .map_err(|e| std::io::Error::new(e.kind(), format!("registry: {e}")))?,
        );
        let tracker = Arc::new(ProgressTracker::new());
        qpinn_telemetry::install(tracker.clone());
        let shared = Arc::new(Shared {
            jobs: JobManager::new(registry.clone()),
            registry,
            batch_cfg: cfg.batch,
            batchers: Mutex::new(HashMap::new()),
            batcher_joins: Mutex::new(Vec::new()),
            tracker,
            started: Instant::now(),
            queue: Mutex::new(ConnQueue {
                conns: VecDeque::new(),
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shared = shared.clone();
            let shutdown = shutdown.clone();
            let cap = cfg.pending_cap;
            std::thread::Builder::new()
                .name("qpinn-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, shutdown, cap))?
        };
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("qpinn-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServeServer {
            addr: local,
            shared,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        self.shared.registry.clone()
    }

    /// Drain and stop: close the listener loop, finish queued
    /// connections, join workers and per-model batchers, and wait for
    /// any submitted train jobs to finish.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let batchers: Vec<Arc<Batcher>> = self
            .shared
            .batchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain()
            .map(|(_, b)| b)
            .collect();
        for b in &batchers {
            b.close();
        }
        let joins: Vec<_> = self
            .shared
            .batcher_joins
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for j in joins {
            let _ = j.join();
        }
        self.shared.jobs.join_all();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    pending_cap: usize,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let shed = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.conns.len() >= pending_cap {
                Some(stream)
            } else {
                q.conns.push_back(stream);
                None
            }
        };
        match shed {
            Some(mut stream) => {
                // Too many connections waiting: refuse before even
                // reading the request so a flood cannot exhaust memory.
                qpinn_telemetry::counter(names::SERVE_SHED).inc();
                let _ = err_json("429 Too Many Requests", "server busy, retry later")
                    .header("Retry-After", "1")
                    .write_to(&mut stream);
            }
            None => shared.signal.notify_one(),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.conns.pop_front() {
                    break s;
                }
                if q.shutdown {
                    return;
                }
                q = shared.signal.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let _ = handle_connection(stream, &shared);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let t0 = Instant::now();
    let (req, mut stream) = match read_request(stream) {
        Ok(ok) => ok,
        Err(e) => return Err(e),
    };
    qpinn_telemetry::counter(names::SERVE_REQUESTS).inc();
    let response = route(&req, shared);
    if response.status.starts_with('5') {
        qpinn_telemetry::counter(names::SERVE_ERRORS).inc();
    }
    let out = response.write_to(&mut stream);
    qpinn_telemetry::histogram(names::SERVE_LATENCY_US)
        .record(t0.elapsed().as_micros() as u64);
    out
}

fn err_json(status: &'static str, msg: &str) -> Response {
    Response::json_status(
        status,
        Json::obj(vec![("error", Json::Str(msg.to_string()))]).to_string(),
    )
}

fn route(req: &Request, shared: &Shared) -> Response {
    // The read-only observability routes are shared verbatim with the
    // qpinn-obs metrics endpoint.
    if let Some(r) = metrics_routes(&req.method, &req.path, &shared.tracker, shared.started) {
        return r;
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/models") => models_route(shared),
        ("POST", "/v1/eval") => eval_route(req, shared),
        ("POST", "/v1/train") => train_route(req, shared),
        ("POST", "/v1/evict") => evict_route(req, shared),
        ("GET", path) if path.starts_with("/v1/jobs/") => jobs_route(path, shared),
        ("POST", _) | ("GET", _) => err_json("404 Not Found", "no such route"),
        _ => err_json("405 Method Not Allowed", "method not allowed"),
    }
}

fn models_route(shared: &Shared) -> Response {
    let rows: Vec<Json> = shared
        .registry
        .list()
        .into_iter()
        .map(|m| {
            Json::obj(vec![
                ("id", Json::Str(m.id)),
                ("version", Json::Num(m.version as f64)),
                ("bytes", Json::Num(m.bytes as f64)),
                ("intact", Json::Bool(m.intact)),
                (
                    "eval_error",
                    m.eval_error.map(Json::Num).unwrap_or(Json::Null),
                ),
                ("loaded", Json::Bool(m.loaded)),
            ])
        })
        .collect();
    Response::json(Json::obj(vec![("models", Json::Arr(rows))]).to_string())
}

fn registry_error_response(e: RegistryError) -> Response {
    match e {
        RegistryError::NotFound(m) => err_json("404 Not Found", &m),
        RegistryError::BadReference(m) => err_json("400 Bad Request", &m),
        RegistryError::Unserveable(m) => err_json("503 Service Unavailable", &m),
        RegistryError::Storage(m) => err_json("500 Internal Server Error", &m),
    }
}

/// Fetch (or lazily spawn) the batcher for a resolved model version.
fn batcher_for(
    shared: &Shared,
    model_ref: &str,
) -> Result<Arc<Batcher>, Response> {
    let model = shared
        .registry
        .resolve(model_ref)
        .map_err(registry_error_response)?;
    let key = (model.id.clone(), model.version);
    let mut map = shared.batchers.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(b) = map.get(&key) {
        return Ok(b.clone());
    }
    let (b, join) = Batcher::spawn(model, shared.batch_cfg.clone());
    shared
        .batcher_joins
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(join);
    map.insert(key, b.clone());
    Ok(b)
}

fn eval_route(req: &Request, shared: &Shared) -> Response {
    let body = match req.body_str().map_err(|e| e.to_string()).and_then(|s| {
        Json::parse(s).map_err(|e| format!("invalid JSON body: {e}"))
    }) {
        Ok(j) => j,
        Err(msg) => return err_json("400 Bad Request", &msg),
    };
    let model_ref = match body.get("model").and_then(|v| v.as_str()) {
        Some(m) => m,
        None => return err_json("400 Bad Request", "missing string field `model`"),
    };
    let points = match body.get("points") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        _ => return err_json("400 Bad Request", "field `points` must be a non-empty array"),
    };
    let batcher = match batcher_for(shared, model_ref) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let arity = batcher.model().net.n_coords();
    let n_fields = batcher.model().net.n_fields();
    let mut coords = Vec::with_capacity(points.len() * arity);
    for (i, row) in points.iter().enumerate() {
        let ok = match row {
            Json::Arr(xs) if xs.len() == arity => {
                xs.iter().all(|x| {
                    x.as_num().map(|v| coords.push(v)).is_some()
                })
            }
            _ => false,
        };
        if !ok {
            return err_json(
                "400 Bad Request",
                &format!("points[{i}] must be an array of {arity} numbers"),
            );
        }
    }
    match batcher.eval(coords) {
        Ok(values) => {
            let rows: Vec<Json> = values
                .chunks(n_fields)
                .map(|row| Json::nums(row))
                .collect();
            let model = batcher.model();
            Response::json(
                Json::obj(vec![
                    ("model", Json::Str(model.id.clone())),
                    ("version", Json::Num(model.version as f64)),
                    ("n_fields", Json::Num(n_fields as f64)),
                    ("values", Json::Arr(rows)),
                ])
                .to_string(),
            )
        }
        Err(SubmitError::QueueFull) => {
            err_json("429 Too Many Requests", "eval queue full, retry later")
                .header("Retry-After", "1")
        }
        Err(SubmitError::BadShape { expected_arity }) => err_json(
            "400 Bad Request",
            &format!("coordinates must come in rows of {expected_arity}"),
        ),
        Err(SubmitError::Closed) => {
            err_json("503 Service Unavailable", "evaluation failed or shutting down")
        }
    }
}

fn train_route(req: &Request, shared: &Shared) -> Response {
    let parsed = req
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(|s| Json::parse(s).map_err(|e| format!("invalid JSON body: {e}")))
        .and_then(|j| TrainRequest::from_json(&j));
    match parsed {
        Ok(train) => {
            let model_id = train.model_id.clone();
            let job_id = shared.jobs.submit(train);
            Response::json_status(
                "202 Accepted",
                Json::obj(vec![
                    ("job_id", Json::Str(job_id.clone())),
                    ("model_id", Json::Str(model_id)),
                    (
                        "progress_url",
                        Json::Str(format!("/v1/jobs/{job_id}/progress")),
                    ),
                ])
                .to_string(),
            )
        }
        Err(msg) => err_json("400 Bad Request", &msg),
    }
}

fn jobs_route(path: &str, shared: &Shared) -> Response {
    // Path shape: /v1/jobs/<id>/progress
    let rest = &path["/v1/jobs/".len()..];
    let Some(job_id) = rest.strip_suffix("/progress") else {
        return err_json("404 Not Found", "try /v1/jobs/<id>/progress");
    };
    match shared.jobs.progress_json(job_id) {
        // A failed job (training error or registry publish failure, e.g.
        // disk full) serves its progress document under 503 so pollers
        // and load balancers both see the degradation.
        Some((doc, failed)) => Response::json_status(
            if failed {
                "503 Service Unavailable"
            } else {
                "200 OK"
            },
            doc.to_string(),
        ),
        None => err_json("404 Not Found", &format!("no job `{job_id}`")),
    }
}

fn evict_route(req: &Request, shared: &Shared) -> Response {
    let model_ref = req
        .body_str()
        .ok()
        .and_then(|s| Json::parse(s).ok())
        .and_then(|j| j.get("model").and_then(|v| v.as_str()).map(str::to_string));
    let Some(model_ref) = model_ref else {
        return err_json("400 Bad Request", "body must be {\"model\":\"id[@version]\"}");
    };
    match shared.registry.evict(&model_ref) {
        Ok(was_loaded) => Response::json(
            Json::obj(vec![
                ("model", Json::Str(model_ref)),
                ("evicted", Json::Bool(was_loaded)),
            ])
            .to_string(),
        ),
        Err(e) => registry_error_response(e),
    }
}
