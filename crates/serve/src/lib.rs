//! # qpinn-serve
//!
//! The model-serving plane: batched HTTP inference over trained PINN
//! surrogates, still zero external dependencies — `std::net` sockets,
//! the workspace's own JSON, snapshots, and telemetry.
//!
//! Four cooperating pieces:
//!
//! * **Model registry** ([`registry`]) — versioned `.qps` snapshots
//!   under a models directory, one `SnapshotStore` subdirectory per
//!   model id. Loads are CRC-validated and lazy; resident models are
//!   LRU-evicted under a byte budget. A snapshot alone cannot rebuild a
//!   `FieldNet` (the random-Fourier projection is drawn from the
//!   construction RNG, not stored), so each served snapshot carries a
//!   [`spec::ModelSpec`] — architecture + construction seed — and the
//!   registry replays construction bit-exactly.
//! * **Batching engine** ([`batch`]) — concurrent `POST /v1/eval`
//!   requests for the same model version coalesce into one
//!   `predict_batch` forward pass through the work-stealing pool
//!   (time/size-bounded micro-batches), then scatter per request.
//!   Row-wise determinism makes batching invisible: responses are
//!   bit-identical to solo evaluation.
//! * **Admission control** ([`batch`], [`server`]) — bounded per-model
//!   eval queues and a bounded connection queue; both shed with
//!   `429 Too Many Requests` + `Retry-After` instead of queueing
//!   without bound.
//! * **Train-job API** ([`jobs`]) — `POST /v1/train` runs the real
//!   trainer on a background thread, streams epoch/loss/ETA through the
//!   existing `ProgressHook` plumbing at
//!   `GET /v1/jobs/<id>/progress`, and publishes the result into the
//!   registry (atomically — a failed publish degrades to `503` and
//!   never damages served versions).
//!
//! The HTTP surface (request parsing, response formatting, the
//! `/metrics` `/progress` `/healthz` routes) is shared with `qpinn-obs`
//! rather than duplicated; see `qpinn_obs::http` and
//! `qpinn_obs::server::metrics_routes`. Everything is instrumented
//! under the `serve.*` metric names in `qpinn_telemetry::names`.

#![deny(missing_docs)]

pub mod batch;
pub mod jobs;
pub mod registry;
pub mod server;
pub mod spec;

pub use batch::{BatchConfig, Batcher, EvalOutput, EvalTiming, SubmitError};
pub use jobs::{JobManager, JobStatus, TrainRequest};
pub use registry::{
    LoadedModel, ModelInfo, ModelRegistry, RegistryConfig, RegistryError,
};
pub use server::{ServeConfig, ServeServer, TraceConfig};
pub use spec::{ModelSpec, SpecDecodeError};
