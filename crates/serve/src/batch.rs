//! Micro-batching: coalesce concurrent eval requests for the same model
//! version into one forward pass.
//!
//! One [`Batcher`] (and one dispatch thread) exists per resolved
//! `(model id, version)`. Requests enqueue an [`EvalJob`] and block on a
//! channel; the dispatch thread takes the first queued job, lingers up
//! to [`BatchConfig::window`] for companions, drains the queue up to the
//! request/point caps, runs a single [`FieldNet::predict_batch`] over
//! the concatenated coordinates, and scatters each request's rows back
//! through its channel.
//!
//! Batching is *transparent*: `predict_batch` evaluates each row with
//! the same fixed-order dot products regardless of what else shares the
//! batch (PR-2's determinism contract), so a coalesced response is
//! bit-identical to the same request evaluated alone — asserted by the
//! serve e2e suite.
//!
//! [`FieldNet::predict_batch`]: qpinn_core::model::FieldNet::predict_batch

use crate::registry::LoadedModel;
use qpinn_telemetry::event::now_ns;
use qpinn_telemetry::{names, Event, Kind, TraceCtx};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Micro-batch shaping knobs.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// How long the dispatcher lingers after the first job arrives,
    /// waiting for more requests to coalesce.
    pub window: Duration,
    /// Max requests folded into one forward pass.
    pub max_requests: usize,
    /// Max total points in one forward pass (a single oversized request
    /// still runs, alone).
    pub max_points: usize,
    /// Max requests queued (waiting, not yet dispatched) per model;
    /// beyond it, admission control sheds with `429`.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::from_millis(2),
            max_requests: 64,
            max_points: 16384,
            queue_cap: 256,
        }
    }
}

/// One eval request in flight: row-major coordinates and the channel
/// its rows come back on.
struct EvalJob {
    /// Flattened coordinates, `n_points * n_coords` long.
    coords: Vec<f64>,
    n_points: usize,
    /// Trace id of the originating request (empty when tracing is off
    /// or the caller has no request scope).
    trace: String,
    /// [`now_ns`] when the job entered the queue; anchors `queue_ns`.
    enq_ns: u64,
    tx: mpsc::Sender<Result<(Vec<f64>, EvalTiming), String>>,
}

/// Where one request's time went inside the batcher, in nanoseconds on
/// the process telemetry clock ([`now_ns`]). `compute_ns` is the wall
/// time of the shared forward pass, attributed whole to every request
/// in the batch (a request cannot finish before its batch does).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalTiming {
    /// Wait from enqueue until the dispatcher began forming the batch.
    pub queue_ns: u64,
    /// Linger while the batch filled (0 for the job that opened it).
    pub batch_ns: u64,
    /// Forward-pass wall time of the dispatched batch.
    pub compute_ns: u64,
    /// Requests coalesced into the batch that served this one.
    pub batch_size: u64,
    /// [`now_ns`] when the forward pass finished; the server anchors
    /// its serialization stage here.
    pub compute_end_ns: u64,
}

/// A successful evaluation: the request's output rows plus its latency
/// decomposition.
pub struct EvalOutput {
    /// Output rows, `n_points * n_fields` long.
    pub rows: Vec<f64>,
    /// Stage timings for this request.
    pub timing: EvalTiming,
}

/// Why a submission was refused without being queued.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The per-model queue is at capacity — shed (`429 Retry-After`).
    QueueFull,
    /// Coordinate count is not a multiple of the model's input arity.
    BadShape {
        /// The model's coordinate count per point.
        expected_arity: usize,
    },
    /// The batcher is shutting down.
    Closed,
}

struct Queue {
    jobs: VecDeque<EvalJob>,
    closed: bool,
}

/// Per-model-version batching front end. Cheap to clone via `Arc`.
pub struct Batcher {
    model: Arc<LoadedModel>,
    cfg: BatchConfig,
    queue: Mutex<Queue>,
    /// Signals the dispatch thread that jobs arrived (or shutdown).
    signal: Condvar,
}

impl Batcher {
    /// Spawn a batcher (and its dispatch thread) for `model`. Returns
    /// the handle plus the thread's `JoinHandle` for clean shutdown.
    pub fn spawn(
        model: Arc<LoadedModel>,
        cfg: BatchConfig,
    ) -> (Arc<Batcher>, std::thread::JoinHandle<()>) {
        let batcher = Arc::new(Batcher {
            model,
            cfg,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            signal: Condvar::new(),
        });
        let worker = batcher.clone();
        let join = std::thread::Builder::new()
            .name(format!(
                "qpinn-batch-{}@{}",
                worker.model.id, worker.model.version
            ))
            .spawn(move || worker.run())
            .expect("spawn batch dispatch thread");
        (batcher, join)
    }

    /// The model this batcher evaluates.
    pub fn model(&self) -> &Arc<LoadedModel> {
        &self.model
    }

    /// Submit `coords` (row-major, `n_points * arity`) for evaluation.
    /// Blocks the calling (connection-worker) thread until the batch
    /// containing this request is dispatched and returns this request's
    /// output rows, `n_points * n_fields` long.
    pub fn eval(&self, coords: Vec<f64>) -> Result<Vec<f64>, SubmitError> {
        self.eval_traced(coords, &TraceCtx::disabled())
            .map(|out| out.rows)
    }

    /// Like [`Batcher::eval`] but carries the request's [`TraceCtx`]
    /// into the queue and returns the latency decomposition alongside
    /// the rows. The trace id rides the job through the dispatcher
    /// flush, so the flush span event can name every request it served.
    pub fn eval_traced(
        &self,
        coords: Vec<f64>,
        trace: &TraceCtx,
    ) -> Result<EvalOutput, SubmitError> {
        let arity = self.model.net.n_coords();
        if arity == 0 || coords.len() % arity != 0 || coords.is_empty() {
            return Err(SubmitError::BadShape {
                expected_arity: arity,
            });
        }
        let n_points = coords.len() / arity;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.closed {
                return Err(SubmitError::Closed);
            }
            if q.jobs.len() >= self.cfg.queue_cap {
                qpinn_telemetry::counter(names::SERVE_SHED).inc();
                return Err(SubmitError::QueueFull);
            }
            q.jobs.push_back(EvalJob {
                coords,
                n_points,
                trace: if trace.on { trace.id.clone() } else { String::new() },
                enq_ns: now_ns(),
                tx,
            });
            qpinn_telemetry::gauge(names::SERVE_QUEUE_DEPTH).set(q.jobs.len() as f64);
        }
        self.signal.notify_one();
        match rx.recv() {
            Ok(Ok((rows, timing))) => Ok(EvalOutput { rows, timing }),
            // An eval failure surfaces as a 500 on this request only.
            Ok(Err(_msg)) => Err(SubmitError::Closed),
            Err(_) => Err(SubmitError::Closed),
        }
    }

    /// Stop the dispatch thread once the queue drains. Pending jobs are
    /// still dispatched; new submissions fail with [`SubmitError::Closed`].
    pub fn close(&self) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.signal.notify_all();
    }

    /// Dispatch loop: collect → linger → drain → one forward pass →
    /// scatter.
    fn run(&self) {
        loop {
            let (batch, linger_start_ns, drain_ns) = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                // Wait for the first job (or shutdown).
                while q.jobs.is_empty() {
                    if q.closed {
                        return;
                    }
                    q = self.signal.wait(q).unwrap_or_else(|e| e.into_inner());
                }
                // The batch starts forming now: everything a queued job
                // waited before this point is its queue_ns.
                let linger_start_ns = now_ns();
                // Linger: give concurrent requests a window to coalesce.
                let deadline = Instant::now() + self.cfg.window;
                loop {
                    let full = q.jobs.len() >= self.cfg.max_requests
                        || q.jobs.iter().map(|j| j.n_points).sum::<usize>()
                            >= self.cfg.max_points;
                    if full || q.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (nq, timeout) = self
                        .signal
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = nq;
                    if timeout.timed_out() {
                        break;
                    }
                }
                // Drain up to the caps (first job always ships).
                let mut batch: Vec<EvalJob> = Vec::new();
                let mut points = 0usize;
                while let Some(job) = q.jobs.front() {
                    if !batch.is_empty()
                        && (batch.len() >= self.cfg.max_requests
                            || points + job.n_points > self.cfg.max_points)
                    {
                        break;
                    }
                    points += job.n_points;
                    batch.push(q.jobs.pop_front().unwrap());
                }
                qpinn_telemetry::gauge(names::SERVE_QUEUE_DEPTH).set(q.jobs.len() as f64);
                (batch, linger_start_ns, now_ns())
            };
            self.dispatch(batch, linger_start_ns, drain_ns);
        }
    }

    fn dispatch(&self, batch: Vec<EvalJob>, linger_start_ns: u64, drain_ns: u64) {
        if batch.is_empty() {
            return;
        }
        // Chaos hook: a stalled flush delays this batch's responses and
        // backs up the queue, which the next batch's `queue_ns` must
        // expose. The queue lock is NOT held here, so admission control
        // (and its 429/Retry-After sheds) keeps running during the
        // stall.
        if qpinn_testkit::should_fail("serve.flush_stall") {
            std::thread::sleep(Duration::from_millis(25));
        }
        let total_points: usize = batch.iter().map(|j| j.n_points).sum();
        qpinn_telemetry::histogram(names::SERVE_BATCH_SIZE).record(batch.len() as u64);
        qpinn_telemetry::histogram(names::SERVE_BATCH_POINTS).record(total_points as u64);
        qpinn_telemetry::counter(names::SERVE_BATCH_FLUSHES).inc();
        let arity = self.model.net.n_coords();
        let mut coords = Vec::with_capacity(total_points * arity);
        for job in &batch {
            coords.extend_from_slice(&job.coords);
        }
        let compute_start_ns = now_ns();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.model.net.predict_batch(&self.model.params, &coords)
        }));
        let compute_end_ns = now_ns();
        if qpinn_telemetry::enabled() {
            // One span event per flush, naming every traced request it
            // served so a timeline can join flushes back to requests.
            let mut e = Event::new(Kind::Span, "serve_flush")
                .field("path", "serve_flush")
                .field("dur_ns", compute_end_ns.saturating_sub(linger_start_ns))
                .field("model", self.model.qualified_name())
                .field("batch", batch.len() as u64)
                .field("points", total_points as u64);
            let traces: Vec<&str> = batch
                .iter()
                .filter(|j| !j.trace.is_empty())
                .map(|j| j.trace.as_str())
                .collect();
            if !traces.is_empty() {
                e = e.field("traces", traces.join(","));
            }
            qpinn_telemetry::emit(e);
        }
        let batch_size = batch.len() as u64;
        let timing_for = move |job: &EvalJob| EvalTiming {
            queue_ns: linger_start_ns.saturating_sub(job.enq_ns),
            batch_ns: drain_ns.saturating_sub(job.enq_ns.max(linger_start_ns)),
            compute_ns: compute_end_ns.saturating_sub(compute_start_ns),
            batch_size,
            compute_end_ns,
        };
        match result {
            Ok(out) => {
                let n_fields = out.shape().dims()[1];
                let data = out.data();
                let mut row = 0usize;
                for job in batch {
                    let lo = row * n_fields;
                    let hi = (row + job.n_points) * n_fields;
                    row += job.n_points;
                    let timing = timing_for(&job);
                    let _ = job.tx.send(Ok((data[lo..hi].to_vec(), timing)));
                }
            }
            Err(_) => {
                qpinn_telemetry::counter(names::SERVE_ERRORS).inc();
                for job in batch {
                    let _ = job.tx.send(Err("forward pass panicked".into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use crate::spec::ModelSpec;
    use qpinn_core::model::FieldNetConfig;
    use qpinn_nn::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn resident_model(tag: &str) -> (Arc<LoadedModel>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "qpinn-serve-batch-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        let spec = ModelSpec {
            name: "tdse".into(),
            seed: 7,
            problem: String::new(),
            net: FieldNetConfig::standard_wave(12.0, 1.0, 8, 1),
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let _ = qpinn_core::model::FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
        reg.publish(
            "m",
            &spec,
            &params,
            qpinn_persist::TrainLogRecord::default(),
            1,
            0.0,
        )
        .unwrap();
        (reg.resolve("m").unwrap(), dir)
    }

    #[test]
    fn coalesced_results_are_bit_identical_to_solo() {
        let (model, dir) = resident_model("coalesce");
        let cfg = BatchConfig {
            window: Duration::from_millis(200),
            ..BatchConfig::default()
        };
        let (batcher, join) = Batcher::spawn(model.clone(), cfg);
        // Solo reference for each request, straight through the net.
        let reqs: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                (0..6)
                    .flat_map(|j| {
                        let x = -5.0 + (i * 6 + j) as f64 * 0.31;
                        let t = 0.05 * (j as f64 + 1.0);
                        [x, t]
                    })
                    .collect()
            })
            .collect();
        let solo: Vec<Vec<f64>> = reqs
            .iter()
            .map(|c| model.net.predict_batch(&model.params, c).data().to_vec())
            .collect();
        let flushes_before = qpinn_telemetry::counter(names::SERVE_BATCH_FLUSHES).get();
        // Fire all four concurrently inside one linger window.
        let handles: Vec<_> = reqs
            .iter()
            .cloned()
            .map(|c| {
                let b = batcher.clone();
                std::thread::spawn(move || b.eval(c).unwrap())
            })
            .collect();
        let got: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (g, s) in got.iter().zip(&solo) {
            assert_eq!(g.len(), s.len());
            for (a, b) in g.iter().zip(s) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched row differs from solo");
            }
        }
        // All four landed while the dispatcher lingered ⇒ one flush.
        let flushes = qpinn_telemetry::counter(names::SERVE_BATCH_FLUSHES).get() - flushes_before;
        assert!(
            flushes <= 2,
            "4 concurrent requests took {flushes} flushes; expected coalescing"
        );
        batcher.close();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_cap_sheds_and_shapes_are_checked() {
        let (model, dir) = resident_model("shed");
        let cfg = BatchConfig {
            queue_cap: 1,
            window: Duration::from_millis(50),
            ..BatchConfig::default()
        };
        let (batcher, join) = Batcher::spawn(model, cfg);
        assert_eq!(
            batcher.eval(vec![1.0, 2.0, 3.0]).unwrap_err(),
            SubmitError::BadShape { expected_arity: 2 }
        );
        assert!(matches!(
            batcher.eval(vec![]).unwrap_err(),
            SubmitError::BadShape { .. }
        ));
        // A well-formed request still works (1 point × 2 fields).
        assert_eq!(batcher.eval(vec![0.1, 0.2]).unwrap().len(), 2);
        batcher.close();
        assert_eq!(batcher.eval(vec![0.1, 0.2]).unwrap_err(), SubmitError::Closed);
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
