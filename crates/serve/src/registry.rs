//! The model registry: versioned `.qps` snapshots on disk, lazily
//! loaded into memory under an LRU byte budget.
//!
//! # Layout
//!
//! One subdirectory per model id under the registry root, each a
//! [`SnapshotStore`] directory:
//!
//! ```text
//! models/
//!   wave-a/ snap-0000000001.qps  snap-0000000002.qps
//!   wave-b/ snap-0000000001.qps
//! ```
//!
//! A model *version* is the epoch number in the snapshot file name;
//! versions are assigned by [`ModelRegistry::publish`] as
//! `max(existing) + 1`. Reusing the snapshot container buys the
//! registry everything the checkpoint path already proved: CRC-verified
//! loads, atomic tmp+fsync+rename publishes, and the `qpinn-testkit`
//! failpoints threaded through [`SnapshotStore::save`] — so the chaos
//! suite's `fs.enospc`/torn-rename scenarios cover model publishing
//! with no extra wiring.
//!
//! # Resolution and caching
//!
//! [`ModelRegistry::resolve`] takes `"id"`, `"id@latest"`, or
//! `"id@<version>"`. Loads decode the snapshot, recover the
//! [`ModelSpec`] from the TASK section, and rebuild the [`FieldNet`]
//! (see [`crate::spec`]); loaded models are cached keyed by
//! `(id, version)` and evicted least-recently-used once the resident
//! byte total would exceed the configured budget. `"id"`/`"id@latest"`
//! re-checks the directory each call so a freshly published version is
//! picked up without a restart.

use crate::spec::ModelSpec;
use qpinn_core::model::FieldNet;
use qpinn_nn::ParamSet;
use qpinn_persist::{
    PersistError, RetentionPolicy, RunMeta, Snapshot, SnapshotEntry, SnapshotStore,
    TrainLogRecord,
};
use qpinn_telemetry::names;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Registry settings.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Root directory holding one snapshot-store subdirectory per model.
    pub dir: PathBuf,
    /// Byte budget for resident (loaded) models; least-recently-used
    /// models are evicted past it. The most recently used model always
    /// stays resident even if it alone exceeds the budget.
    pub max_bytes: u64,
}

impl RegistryConfig {
    /// Registry at `dir` with a 256 MiB resident budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RegistryConfig {
            dir: dir.into(),
            max_bytes: 256 << 20,
        }
    }
}

/// A model resident in memory, ready to evaluate.
pub struct LoadedModel {
    /// Model id (registry subdirectory name).
    pub id: String,
    /// Version (snapshot epoch number).
    pub version: u64,
    /// Architecture + construction-seed descriptor.
    pub spec: ModelSpec,
    /// The rebuilt network.
    pub net: FieldNet,
    /// The trained parameters.
    pub params: ParamSet,
    /// On-disk snapshot size (the unit of the LRU budget).
    pub bytes: u64,
    /// Eval error recorded at publish time.
    pub eval_error: f64,
}

impl LoadedModel {
    /// `id@version`, the form access-log records and trace spans use to
    /// name a model.
    pub fn qualified_name(&self) -> String {
        format!("{}@{}", self.id, self.version)
    }
}

/// One row of [`ModelRegistry::list`].
#[derive(Clone, Debug)]
pub struct ModelInfo {
    /// Model id.
    pub id: String,
    /// Version.
    pub version: u64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// CRC/metadata status of the snapshot file.
    pub intact: bool,
    /// Eval error at publish time (`None` when the file is corrupt).
    pub eval_error: Option<f64>,
    /// True when this version is currently resident in memory.
    pub loaded: bool,
    /// Problem-registry key from the spec (`None` until the version is
    /// resident — listing never pays a snapshot decode — or when the
    /// spec predates the tag).
    pub problem: Option<String>,
}

/// Registry errors, mapped to HTTP statuses by the server.
#[derive(Debug)]
pub enum RegistryError {
    /// No such model id, or no such version of it.
    NotFound(String),
    /// A malformed `id@version` reference.
    BadReference(String),
    /// The snapshot exists but cannot be served (corrupt, wrong spec).
    Unserveable(String),
    /// Underlying storage failure.
    Storage(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(m) => write!(f, "not found: {m}"),
            RegistryError::BadReference(m) => write!(f, "bad model reference: {m}"),
            RegistryError::Unserveable(m) => write!(f, "unserveable model: {m}"),
            RegistryError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Validate a model id so ids stay safe to use as directory names.
fn check_id(id: &str) -> Result<(), RegistryError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        && !id.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::BadReference(format!(
            "model id `{id}` must be 1-64 chars of [A-Za-z0-9._-], not starting with `.`"
        )))
    }
}

/// Parse `"id"`, `"id@latest"`, or `"id@N"`.
fn parse_ref(model_ref: &str) -> Result<(String, Option<u64>), RegistryError> {
    let (id, version) = match model_ref.split_once('@') {
        None => (model_ref, None),
        Some((id, "latest")) => (id, None),
        Some((id, v)) => (
            id,
            Some(v.parse::<u64>().map_err(|_| {
                RegistryError::BadReference(format!("version `{v}` is not a number or `latest`"))
            })?),
        ),
    };
    check_id(id)?;
    Ok((id.to_string(), version))
}

struct RegState {
    /// Resident models by (id, version).
    loaded: HashMap<(String, u64), Arc<LoadedModel>>,
    /// LRU order, least recently used first.
    lru: Vec<(String, u64)>,
    /// Sum of resident snapshot bytes.
    resident_bytes: u64,
}

/// The registry; cheap to share (`Arc` internally via the server).
pub struct ModelRegistry {
    cfg: RegistryConfig,
    state: Mutex<RegState>,
}

impl ModelRegistry {
    /// Open (creating if needed) the registry root.
    pub fn open(cfg: RegistryConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        Ok(ModelRegistry {
            cfg,
            state: Mutex::new(RegState {
                loaded: HashMap::new(),
                lru: Vec::new(),
                resident_bytes: 0,
            }),
        })
    }

    /// The registry root directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.cfg.dir
    }

    fn store(&self, id: &str) -> Result<SnapshotStore, RegistryError> {
        SnapshotStore::open(self.cfg.dir.join(id))
            .map_err(|e| RegistryError::Storage(e.to_string()))
    }

    /// Resolve `"id"`, `"id@latest"`, or `"id@N"` to a resident model,
    /// loading (and LRU-evicting) as needed.
    pub fn resolve(&self, model_ref: &str) -> Result<Arc<LoadedModel>, RegistryError> {
        let (id, version) = parse_ref(model_ref)?;
        let version = match version {
            Some(v) => v,
            // `latest` floats: scan the directory for the newest version
            // so publishes are visible without reloading anything.
            None => self.latest_version(&id)?,
        };
        let key = (id.clone(), version);
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(model) = st.loaded.get(&key).cloned() {
                st.lru.retain(|k| k != &key);
                st.lru.push(key);
                qpinn_telemetry::counter(names::SERVE_REGISTRY_HITS).inc();
                return Ok(model);
            }
        }
        let model = Arc::new(self.load(&id, version)?);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // A racing loader may have beaten us; keep the first and drop ours.
        if let Some(existing) = st.loaded.get(&key).cloned() {
            st.lru.retain(|k| k != &key);
            st.lru.push(key);
            return Ok(existing);
        }
        st.resident_bytes += model.bytes;
        st.loaded.insert(key.clone(), model.clone());
        st.lru.push(key);
        qpinn_telemetry::counter(names::SERVE_REGISTRY_LOADS).inc();
        // Evict past the budget, never the entry just inserted.
        while st.resident_bytes > self.cfg.max_bytes && st.lru.len() > 1 {
            let victim = st.lru.remove(0);
            if let Some(evicted) = st.loaded.remove(&victim) {
                st.resident_bytes -= evicted.bytes;
                qpinn_telemetry::counter(names::SERVE_REGISTRY_EVICTIONS).inc();
            }
        }
        qpinn_telemetry::gauge(names::SERVE_REGISTRY_BYTES).set(st.resident_bytes as f64);
        Ok(model)
    }

    fn latest_version(&self, id: &str) -> Result<u64, RegistryError> {
        let dir = self.cfg.dir.join(id);
        if !dir.is_dir() {
            return Err(RegistryError::NotFound(format!("model `{id}`")));
        }
        let store = self.store(id)?;
        // Newest *intact* version: a torn publish of version N must not
        // make `id@latest` unserveable while N-1 is still good.
        store
            .entries()
            .iter()
            .rev()
            .find(|e| e.intact())
            .map(|e| e.epoch)
            .ok_or_else(|| {
                RegistryError::Unserveable(format!("model `{id}` has no intact version"))
            })
    }

    fn load(&self, id: &str, version: u64) -> Result<LoadedModel, RegistryError> {
        let store = self.store(id)?;
        let (snap, path) = store.load_epoch(version).map_err(|e| match e {
            PersistError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
                RegistryError::NotFound(format!("model `{id}` version {version}"))
            }
            other => RegistryError::Unserveable(format!(
                "model `{id}` version {version}: {other}"
            )),
        })?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let spec = ModelSpec::decode(&snap.task_state).map_err(|e| {
            RegistryError::Unserveable(format!("model `{id}` version {version}: {e}"))
        })?;
        let net = spec.rebuild(&snap.params).map_err(|e| {
            RegistryError::Unserveable(format!("model `{id}` version {version}: {e}"))
        })?;
        Ok(LoadedModel {
            id: id.to_string(),
            version,
            spec,
            net,
            params: snap.params,
            bytes,
            eval_error: snap.meta.eval_error,
        })
    }

    /// Publish trained parameters as the next version of `id`. Returns
    /// the assigned version. The write goes through
    /// [`SnapshotStore::save`] — atomic, CRC-sealed, failpoint-covered —
    /// so a failed publish never damages existing versions.
    pub fn publish(
        &self,
        id: &str,
        spec: &ModelSpec,
        params: &ParamSet,
        log: TrainLogRecord,
        planned_epochs: u64,
        eval_error: f64,
    ) -> Result<u64, RegistryError> {
        check_id(id)?;
        let store = self.store(id)?;
        let version = store.list().last().map(|(e, _)| e + 1).unwrap_or(1);
        let snap = Snapshot {
            meta: RunMeta {
                run_id: id.to_string(),
                next_epoch: version,
                planned_epochs,
                eval_error,
            },
            params: params.clone(),
            // Model artifacts are for inference; a fresh optimizer state
            // keeps the container well-formed without claiming the run
            // is resumable from it.
            optim: qpinn_optim::Adam::new(0.0).export_state(),
            log,
            task_state: spec.encode(),
        };
        // Model versions are immutable history; never retain-prune them.
        store
            .save(&snap, &RetentionPolicy::keep_all())
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        Ok(version)
    }

    /// Every version of every model on disk, with residency flags.
    pub fn list(&self) -> Vec<ModelInfo> {
        let mut ids: Vec<String> = std::fs::read_dir(&self.cfg.dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.path().is_dir())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        ids.sort();
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for id in ids {
            let entries: Vec<SnapshotEntry> = match SnapshotStore::open(self.cfg.dir.join(&id)) {
                Ok(s) => s.entries(),
                Err(_) => continue,
            };
            for e in entries {
                let resident = st.loaded.get(&(id.clone(), e.epoch));
                out.push(ModelInfo {
                    loaded: resident.is_some(),
                    problem: resident
                        .map(|m| m.spec.problem.clone())
                        .filter(|p| !p.is_empty()),
                    id: id.clone(),
                    version: e.epoch,
                    bytes: e.bytes,
                    intact: e.intact(),
                    eval_error: e.meta.as_ref().map(|m| m.eval_error),
                });
            }
        }
        out
    }

    /// Drop a resident model from memory (the on-disk snapshot stays).
    /// Returns true when it was resident.
    pub fn evict(&self, model_ref: &str) -> Result<bool, RegistryError> {
        let (id, version) = parse_ref(model_ref)?;
        let version = match version {
            Some(v) => v,
            None => self.latest_version(&id)?,
        };
        let key = (id, version);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.lru.retain(|k| k != &key);
        match st.loaded.remove(&key) {
            Some(m) => {
                st.resident_bytes -= m.bytes;
                qpinn_telemetry::gauge(names::SERVE_REGISTRY_BYTES).set(st.resident_bytes as f64);
                qpinn_telemetry::counter(names::SERVE_REGISTRY_EVICTIONS).inc();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Number of models currently resident in memory.
    pub fn resident_count(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).loaded.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_core::model::FieldNetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpinn-serve-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trained_model(seed: u64) -> (ModelSpec, ParamSet) {
        let spec = ModelSpec {
            name: "tdse".into(),
            seed,
            problem: "tdse-harmonic".into(),
            net: FieldNetConfig::standard_wave(12.0, 1.0, 8, 1),
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let _net = qpinn_core::model::FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
        (spec, params)
    }

    fn publish(reg: &ModelRegistry, id: &str, seed: u64) -> u64 {
        let (spec, params) = trained_model(seed);
        reg.publish(id, &spec, &params, TrainLogRecord::default(), 10, 0.5)
            .unwrap()
    }

    #[test]
    fn publish_resolve_roundtrip_and_latest() {
        let dir = tmp_dir("roundtrip");
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        assert_eq!(publish(&reg, "wave", 1), 1);
        assert_eq!(publish(&reg, "wave", 2), 2);

        let m = reg.resolve("wave@1").unwrap();
        assert_eq!((m.id.as_str(), m.version), ("wave", 1));
        let latest = reg.resolve("wave").unwrap();
        assert_eq!(latest.version, 2);
        let explicit = reg.resolve("wave@latest").unwrap();
        assert_eq!(explicit.version, 2);
        // Resolving again hits the cache (same Arc).
        assert!(Arc::ptr_eq(&latest, &reg.resolve("wave@2").unwrap()));
        // Predictions work end to end through the rebuilt net.
        let out = latest.net.predict(&latest.params, &[vec![0.5, 0.2]]);
        assert!(out.all_finite());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_and_malformed_refs_error() {
        let dir = tmp_dir("missing");
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        assert!(matches!(reg.resolve("nope"), Err(RegistryError::NotFound(_))));
        assert!(matches!(
            reg.resolve("wave@banana"),
            Err(RegistryError::BadReference(_))
        ));
        assert!(matches!(
            reg.resolve("../escape"),
            Err(RegistryError::BadReference(_))
        ));
        assert!(matches!(reg.resolve(""), Err(RegistryError::BadReference(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_evicts_by_byte_budget() {
        let dir = tmp_dir("lru");
        let mut cfg = RegistryConfig::new(&dir);
        let reg = ModelRegistry::open(cfg.clone()).unwrap();
        publish(&reg, "a", 1);
        publish(&reg, "b", 2);
        publish(&reg, "c", 3);
        // Budget fits roughly two of the three models.
        let one = std::fs::metadata(
            SnapshotStore::open(dir.join("a")).unwrap().list()[0].1.clone(),
        )
        .unwrap()
        .len();
        cfg.max_bytes = 2 * one + one / 2;
        let reg = ModelRegistry::open(cfg).unwrap();
        reg.resolve("a").unwrap();
        reg.resolve("b").unwrap();
        assert_eq!(reg.resident_count(), 2);
        reg.resolve("c").unwrap(); // must evict `a`, the LRU entry
        assert_eq!(reg.resident_count(), 2);
        let resident: Vec<String> = reg
            .list()
            .into_iter()
            .filter(|m| m.loaded)
            .map(|m| m.id)
            .collect();
        assert_eq!(resident, vec!["b".to_string(), "c".to_string()]);
        // `a` still resolves — it just reloads from disk.
        assert_eq!(reg.resolve("a").unwrap().version, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_skips_corrupt_newest_version() {
        let dir = tmp_dir("corrupt-latest");
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        publish(&reg, "wave", 1);
        publish(&reg, "wave", 2);
        // Corrupt version 2 on disk.
        let p = dir.join("wave").join(SnapshotStore::file_name(2));
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        // Fresh registry (no cache): latest must fall back to 1; the
        // explicit damaged version must error, not fall back.
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        assert_eq!(reg.resolve("wave").unwrap().version, 1);
        assert!(matches!(
            reg.resolve("wave@2"),
            Err(RegistryError::Unserveable(_))
        ));
        let infos = reg.list();
        assert_eq!(infos.len(), 2);
        assert!(infos.iter().any(|m| m.version == 2 && !m.intact));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evict_unloads_but_keeps_disk() {
        let dir = tmp_dir("evict");
        let reg = ModelRegistry::open(RegistryConfig::new(&dir)).unwrap();
        publish(&reg, "wave", 1);
        reg.resolve("wave").unwrap();
        assert_eq!(reg.resident_count(), 1);
        assert!(reg.evict("wave@1").unwrap());
        assert_eq!(reg.resident_count(), 0);
        assert!(!reg.evict("wave@1").unwrap(), "second evict is a no-op");
        assert_eq!(reg.resolve("wave").unwrap().version, 1, "disk copy intact");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
