//! The serveable-model descriptor: everything needed to rebuild a
//! [`FieldNet`] from a `.qps` snapshot, stored in the snapshot's opaque
//! TASK section.
//!
//! A snapshot persists parameter tensors but not the architecture that
//! owns them, and one piece of a [`FieldNet`] lives outside the
//! parameter set entirely: the random-Fourier-feature projection is
//! drawn from the construction RNG and frozen. So a registry entry
//! carries a [`ModelSpec`] — architecture config plus the construction
//! seed and parameter-name prefix — and [`ModelSpec::rebuild`] replays
//! `FieldNet::new` deterministically: same seed, same config, same
//! registration order ⇒ the same network (RFF matrix included) down to
//! the bit, ready to pair with the snapshot's decoded [`ParamSet`].

use qpinn_core::model::{CoordSpec, FieldNet, FieldNetConfig, RffSpec};
use qpinn_nn::{Activation, ParamSet};
use qpinn_persist::codec::{Reader, Writer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Spec encoding version; bump on layout change (readers reject newer).
/// v2 added the `problem` registry tag; v1 blobs decode with an empty
/// tag.
const SPEC_VERSION: u32 = 2;
/// Magic prefix distinguishing a serve-model TASK blob from task
/// curriculum state.
const SPEC_MAGIC: [u8; 4] = *b"QSRV";

/// Architecture + construction-seed descriptor of a served model.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Parameter-name prefix used at registration (e.g. `"tdse"`).
    pub name: String,
    /// Seed of the `StdRng` the net was constructed from.
    pub seed: u64,
    /// The architecture.
    pub net: FieldNetConfig,
    /// Problem-registry key the model was trained on (`""` for snapshots
    /// written before v2 or models not tied to a registry family).
    pub problem: String,
}

/// Errors from decoding or rebuilding a [`ModelSpec`].
#[derive(Debug)]
pub enum SpecDecodeError {
    /// The TASK blob is not a serve-model spec or is damaged.
    Malformed(String),
    /// The rebuilt net's parameters disagree with the snapshot's.
    ParamMismatch(String),
}

impl std::fmt::Display for SpecDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecDecodeError::Malformed(m) => write!(f, "malformed model spec: {m}"),
            SpecDecodeError::ParamMismatch(m) => write!(f, "parameter mismatch: {m}"),
        }
    }
}

impl std::error::Error for SpecDecodeError {}

fn emap(e: qpinn_persist::PersistError) -> SpecDecodeError {
    SpecDecodeError::Malformed(e.to_string())
}

impl ModelSpec {
    /// Serialize into the snapshot TASK-section blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&SPEC_MAGIC);
        w.put_u32(SPEC_VERSION);
        w.put_str(&self.name);
        w.put_str(&self.problem);
        w.put_u64(self.seed);
        w.put_u32(self.net.coords.len() as u32);
        for c in &self.net.coords {
            match c {
                CoordSpec::Raw => w.put_u8(0),
                CoordSpec::Periodic { length } => {
                    w.put_u8(1);
                    w.put_f64(*length);
                }
                CoordSpec::LearnedPeriod { period0 } => {
                    w.put_u8(2);
                    w.put_f64(*period0);
                }
            }
        }
        match &self.net.rff {
            Some(r) => {
                w.put_u8(1);
                w.put_u64(r.n_features as u64);
                w.put_f64(r.sigma);
            }
            None => w.put_u8(0),
        }
        w.put_usize_slice(&self.net.hidden);
        w.put_u64(self.net.n_fields as u64);
        w.put_u8(match self.net.activation {
            Activation::Tanh => 0,
            Activation::Sin => 1,
        });
        w.into_bytes()
    }

    /// True when `bytes` carries the serve-model magic (cheap sniff
    /// before a full decode).
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == SPEC_MAGIC
    }

    /// Decode a blob produced by [`ModelSpec::encode`].
    pub fn decode(bytes: &[u8]) -> Result<ModelSpec, SpecDecodeError> {
        let mut r = Reader::new(bytes, "model spec");
        let magic = r.get_bytes(4).map_err(emap)?;
        if magic != SPEC_MAGIC {
            return Err(SpecDecodeError::Malformed(
                "snapshot task section is not a serve-model spec".into(),
            ));
        }
        let version = r.get_u32().map_err(emap)?;
        if version > SPEC_VERSION {
            return Err(SpecDecodeError::Malformed(format!(
                "spec version {version} is newer than supported ({SPEC_VERSION})"
            )));
        }
        let name = r.get_str().map_err(emap)?;
        let problem = if version >= 2 {
            r.get_str().map_err(emap)?
        } else {
            String::new()
        };
        let seed = r.get_u64().map_err(emap)?;
        let n_coords = r.get_u32().map_err(emap)? as usize;
        if n_coords > 16 {
            return Err(SpecDecodeError::Malformed(format!(
                "implausible coordinate count {n_coords}"
            )));
        }
        let mut coords = Vec::with_capacity(n_coords);
        for _ in 0..n_coords {
            coords.push(match r.get_u8().map_err(emap)? {
                0 => CoordSpec::Raw,
                1 => CoordSpec::Periodic {
                    length: r.get_f64().map_err(emap)?,
                },
                2 => CoordSpec::LearnedPeriod {
                    period0: r.get_f64().map_err(emap)?,
                },
                t => {
                    return Err(SpecDecodeError::Malformed(format!(
                        "unknown coordinate tag {t}"
                    )))
                }
            });
        }
        let rff = match r.get_u8().map_err(emap)? {
            0 => None,
            1 => Some(RffSpec {
                n_features: r.get_u64().map_err(emap)? as usize,
                sigma: r.get_f64().map_err(emap)?,
            }),
            t => {
                return Err(SpecDecodeError::Malformed(format!("unknown rff tag {t}")));
            }
        };
        let hidden = r.get_usize_vec().map_err(emap)?;
        let n_fields = r.get_u64().map_err(emap)? as usize;
        let activation = match r.get_u8().map_err(emap)? {
            0 => Activation::Tanh,
            1 => Activation::Sin,
            t => {
                return Err(SpecDecodeError::Malformed(format!(
                    "unknown activation tag {t}"
                )))
            }
        };
        Ok(ModelSpec {
            name,
            seed,
            net: FieldNetConfig {
                coords,
                rff,
                hidden,
                n_fields,
                activation,
            },
            problem,
        })
    }

    /// Replay construction: rebuild the [`FieldNet`] this spec
    /// describes, then check the rebuilt parameter registration against
    /// `params` (the snapshot's decoded set) name-by-name and
    /// shape-by-shape. A mismatch means the snapshot and spec disagree —
    /// serving it would silently evaluate garbage, so it is an error.
    pub fn rebuild(&self, params: &ParamSet) -> Result<FieldNet, SpecDecodeError> {
        let mut fresh = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let net = FieldNet::new(&mut fresh, &mut rng, &self.net, &self.name);
        if fresh.len() != params.len() {
            return Err(SpecDecodeError::ParamMismatch(format!(
                "spec registers {} tensors, snapshot has {}",
                fresh.len(),
                params.len()
            )));
        }
        for ((_, want_name, want_t), (_, got_name, got_t)) in fresh.iter().zip(params.iter()) {
            if want_name != got_name {
                return Err(SpecDecodeError::ParamMismatch(format!(
                    "parameter `{got_name}` where spec expects `{want_name}`"
                )));
            }
            if want_t.shape().dims() != got_t.shape().dims() {
                return Err(SpecDecodeError::ParamMismatch(format!(
                    "parameter `{got_name}`: shape {:?} vs spec {:?}",
                    got_t.shape().dims(),
                    want_t.shape().dims()
                )));
            }
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_spec() -> ModelSpec {
        ModelSpec {
            name: "tdse".into(),
            seed: 42,
            net: FieldNetConfig::standard_wave(12.0, 1.0, 16, 2),
            problem: "tdse-harmonic".into(),
        }
    }

    #[test]
    fn v1_blob_without_problem_tag_still_decodes() {
        // Hand-assemble a version-1 blob (no problem string) and check it
        // decodes with an empty tag: forward compatibility for snapshots
        // published before the registry refactor.
        let spec = sample_spec();
        let mut w = Writer::new();
        w.put_bytes(&SPEC_MAGIC);
        w.put_u32(1);
        w.put_str(&spec.name);
        w.put_u64(spec.seed);
        w.put_u32(spec.net.coords.len() as u32);
        for c in &spec.net.coords {
            match c {
                CoordSpec::Raw => w.put_u8(0),
                CoordSpec::Periodic { length } => {
                    w.put_u8(1);
                    w.put_f64(*length);
                }
                CoordSpec::LearnedPeriod { period0 } => {
                    w.put_u8(2);
                    w.put_f64(*period0);
                }
            }
        }
        match &spec.net.rff {
            Some(r) => {
                w.put_u8(1);
                w.put_u64(r.n_features as u64);
                w.put_f64(r.sigma);
            }
            None => w.put_u8(0),
        }
        w.put_usize_slice(&spec.net.hidden);
        w.put_u64(spec.net.n_fields as u64);
        w.put_u8(0);
        let back = ModelSpec::decode(&w.into_bytes()).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.problem, "");
        assert_eq!(back.net.hidden, spec.net.hidden);
    }

    #[test]
    fn encode_decode_roundtrips() {
        let spec = sample_spec();
        let bytes = spec.encode();
        assert!(ModelSpec::sniff(&bytes));
        let back = ModelSpec::decode(&bytes).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.problem, spec.problem);
        assert_eq!(back.seed, spec.seed);
        assert_eq!(back.net.hidden, spec.net.hidden);
        assert_eq!(back.net.n_fields, spec.net.n_fields);
        assert_eq!(back.net.coords.len(), spec.net.coords.len());
        let r = back.net.rff.unwrap();
        let r0 = spec.net.rff.unwrap();
        assert_eq!(r.n_features, r0.n_features);
        assert_eq!(r.sigma, r0.sigma);
    }

    #[test]
    fn rebuild_replays_construction_bit_exactly() {
        let spec = sample_spec();
        // "Original" construction, as the train job does it.
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let original = FieldNet::new(&mut params, &mut rng, &spec.net, &spec.name);
        // Registry-side rebuild from the spec + decoded params.
        let rebuilt = spec.rebuild(&params).unwrap();
        let pts = vec![vec![0.3, 0.1], vec![-2.0, 0.8], vec![5.0, 0.5]];
        let a = original.predict(&params, &pts);
        let b = rebuilt.predict(&params, &pts);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "rebuild is not bit-exact");
        }
    }

    #[test]
    fn rebuild_rejects_mismatched_params() {
        let spec = sample_spec();
        let mut wrong = ParamSet::new();
        wrong.add("oops", qpinn_tensor::Tensor::from_slice(&[1.0]));
        assert!(matches!(
            spec.rebuild(&wrong),
            Err(SpecDecodeError::ParamMismatch(_))
        ));
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(ModelSpec::decode(b"").is_err());
        assert!(ModelSpec::decode(b"nope").is_err());
        assert!(ModelSpec::decode(b"QSRV").is_err());
        let mut bytes = sample_spec().encode();
        bytes.truncate(bytes.len() / 2);
        assert!(ModelSpec::decode(&bytes).is_err());
    }
}
