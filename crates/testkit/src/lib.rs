//! # qpinn-testkit — deterministic fault injection for the qpinn stack
//!
//! A zero-dependency failpoint plane: production crates thread
//! [`should_fail`] / [`fail_io`] calls through their error paths, and
//! tests (or the `QPINN_FAILPOINTS` environment variable) arm named
//! injection points with reproducible trigger schedules. When nothing is
//! armed — every production run — each hook costs one relaxed atomic
//! load.
//!
//! ## Injection points wired through the workspace
//!
//! | point                 | where                         | effect when fired |
//! |-----------------------|-------------------------------|-------------------|
//! | `fs.enospc`           | persist store, before writing | `StorageFull` error, nothing written |
//! | `persist.write_short` | persist store tmp-file write  | half the bytes land in `*.tmp`, then error (crash mid-write) |
//! | `persist.rename_torn` | persist store publish rename  | truncated bytes under the *final* name, then error (torn publish) |
//! | `persist.bitflip`     | persist store, post-publish   | one byte flipped in the published snapshot (silent corruption) |
//! | `telemetry.sink_err`  | JSONL sink record path        | write skipped, counted via `telemetry.write_errors` |
//! | `pool.steal_stall`    | rayon worker loop             | worker sleeps 2 ms before running a claimed task |
//! | `serve.flush_stall`   | serve batcher, before a flush | dispatcher sleeps 25 ms before `predict_batch`; admission keeps shedding, the stall shows up in the next batch's `serve.latency.queue_ns` |
//!
//! ## Arming
//!
//! Builder API (RAII — dropping the guard disarms):
//!
//! ```
//! use qpinn_testkit::{arm, should_fail, Trigger};
//! let _g = arm("demo.point", Trigger::Nth(2));
//! assert!(!should_fail("demo.point")); // hit 1
//! assert!(should_fail("demo.point")); // hit 2 fires
//! ```
//!
//! Environment (parsed once, at the first hook evaluation):
//!
//! ```text
//! QPINN_FAILPOINTS='persist.bitflip=nth(2);telemetry.sink_err=prob(0.1,seed=7)'
//! ```
//!
//! See [`spec`] for the full grammar and [`plane`] for the cost model.

#![deny(missing_docs)]

pub mod plane;
pub mod spec;

pub use plane::{
    arm, arm_spec, armed_points, disarm_all, fail_io, fired, hits, injected_io_error, should_fail,
    ArmGuard,
};
pub use spec::{parse_spec, parse_trigger, SpecError, Trigger, DEFAULT_PROB_SEED};
