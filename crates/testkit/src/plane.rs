//! The global fail plane: a process-wide registry of named injection
//! points, each with a deterministic [`Trigger`] schedule.
//!
//! # Cost model
//!
//! The plane is a tri-state machine. Production code calls
//! [`should_fail`] at every instrumented point; when the plane is
//! *dormant* (the overwhelmingly common case) that call is one relaxed
//! atomic load plus a compare — the same trick the telemetry event path
//! uses. The registry, environment parsing, and trigger evaluation only
//! exist on the cold path behind that load.
//!
//! # Determinism
//!
//! Trigger evaluation is a pure function of the point's hit counter (and,
//! for `prob`, of a SplitMix64 stream fixed by the seed). Identical spec +
//! identical hit order ⇒ identical fire sequence, which is what lets CI
//! run the chaos suite twice and require byte-identical outcomes.

use crate::spec::{parse_spec, SpecError, Trigger};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Plane has not yet looked at `QPINN_FAILPOINTS`.
const UNINIT: u8 = 0;
/// No points registered: `should_fail` is one relaxed load.
const DORMANT: u8 = 1;
/// At least one point registered: consult the registry.
const ARMED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// One registered injection point and its evaluation state.
struct FailPoint {
    trigger: Trigger,
    /// Total evaluations (1-based hit numbers derive from this).
    hits: AtomicU64,
    /// Evaluations that fired.
    fired: AtomicU64,
    /// SplitMix64 state for `prob` triggers.
    rng: Mutex<u64>,
}

impl FailPoint {
    fn new(trigger: Trigger) -> Self {
        let seed = match trigger {
            Trigger::Prob { seed, .. } => seed,
            _ => 0,
        };
        FailPoint {
            trigger,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            rng: Mutex::new(seed),
        }
    }

    fn evaluate(&self) -> bool {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match self.trigger {
            Trigger::Off => false,
            Trigger::Always => true,
            Trigger::Once => hit == 1,
            Trigger::Nth(n) => hit == n,
            Trigger::Every(n) => hit % n == 0,
            Trigger::Times(n) => hit <= n,
            Trigger::Prob { p, .. } => {
                let mut state = lock(&self.rng);
                unit_f64(splitmix64(&mut state)) < p
            }
        };
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }
}

/// SplitMix64 step — tiny, seedable, and good enough for trigger draws.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a u64 to `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The plane must keep working even if a chaos test panics while holding a
/// lock — that is the whole point of the crate.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<FailPoint>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<FailPoint>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Parse `QPINN_FAILPOINTS` exactly once per process. A malformed spec is
/// reported on stderr and otherwise ignored: test tooling must never take
/// down the program it is probing.
fn ensure_env_init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("QPINN_FAILPOINTS") {
            match parse_spec(&spec) {
                Ok(entries) => {
                    let mut map = lock(registry());
                    for (name, trigger) in entries {
                        map.insert(name, Arc::new(FailPoint::new(trigger)));
                    }
                }
                Err(e) => eprintln!("qpinn-testkit: ignoring QPINN_FAILPOINTS: {e}"),
            }
        }
        recompute_state();
    });
}

/// Recompute DORMANT/ARMED from registry occupancy. Callers must NOT hold
/// the registry lock (it is taken here).
fn recompute_state() {
    let empty = lock(registry()).is_empty();
    STATE.store(if empty { DORMANT } else { ARMED }, Ordering::Relaxed);
}

/// Should the injection point `name` fire right now?
///
/// This is the only call production code makes. Dormant cost: one relaxed
/// atomic load and a compare. The first call in a process additionally
/// parses `QPINN_FAILPOINTS` (once).
#[inline]
pub fn should_fail(name: &str) -> bool {
    if STATE.load(Ordering::Relaxed) == DORMANT {
        return false;
    }
    should_fail_cold(name)
}

#[cold]
fn should_fail_cold(name: &str) -> bool {
    ensure_env_init();
    if STATE.load(Ordering::Relaxed) == DORMANT {
        return false;
    }
    let point = lock(registry()).get(name).cloned();
    match point {
        Some(p) => p.evaluate(),
        None => false,
    }
}

/// Build the `io::Error` an injection point reports. `fs.enospc` maps to
/// [`std::io::ErrorKind::StorageFull`] so callers exercise the same error
/// classification a genuinely full disk would produce.
pub fn injected_io_error(point: &str) -> std::io::Error {
    let kind = if point == "fs.enospc" {
        std::io::ErrorKind::StorageFull
    } else {
        std::io::ErrorKind::Other
    };
    std::io::Error::new(kind, format!("injected failure at `{point}`"))
}

/// `Err(injected_io_error(point))` when `point` fires, `Ok(())` otherwise.
/// The one-liner hooks thread through I/O code.
#[inline]
pub fn fail_io(point: &str) -> std::io::Result<()> {
    if should_fail(point) {
        Err(injected_io_error(point))
    } else {
        Ok(())
    }
}

/// RAII registration of one or more injection points; dropping the guard
/// disarms them (and returns the plane to dormancy when none remain).
#[must_use = "dropping the guard immediately disarms the failpoints"]
#[derive(Debug)]
pub struct ArmGuard {
    names: Vec<String>,
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        let mut map = lock(registry());
        for name in &self.names {
            map.remove(name);
        }
        drop(map);
        recompute_state();
    }
}

/// Register (or replace) the injection point `name` with `trigger`,
/// resetting its hit/fired counters. Builder-API twin of the env var.
pub fn arm(name: &str, trigger: Trigger) -> ArmGuard {
    ensure_env_init();
    lock(registry()).insert(name.to_string(), Arc::new(FailPoint::new(trigger)));
    recompute_state();
    ArmGuard {
        names: vec![name.to_string()],
    }
}

/// Register every entry of a `QPINN_FAILPOINTS`-syntax spec string.
pub fn arm_spec(spec: &str) -> Result<ArmGuard, SpecError> {
    ensure_env_init();
    let entries = parse_spec(spec)?;
    let names: Vec<String> = entries.iter().map(|(n, _)| n.clone()).collect();
    {
        let mut map = lock(registry());
        for (name, trigger) in entries {
            map.insert(name, Arc::new(FailPoint::new(trigger)));
        }
    }
    recompute_state();
    Ok(ArmGuard { names })
}

/// Remove every registered injection point (env-armed ones included) and
/// return the plane to dormancy. Chaos tests call this between cases.
pub fn disarm_all() {
    lock(registry()).clear();
    recompute_state();
}

/// Times `name` has been evaluated since it was (re-)armed; 0 when unknown.
pub fn hits(name: &str) -> u64 {
    lock(registry())
        .get(name)
        .map_or(0, |p| p.hits.load(Ordering::Relaxed))
}

/// Times `name` has fired since it was (re-)armed; 0 when unknown.
pub fn fired(name: &str) -> u64 {
    lock(registry())
        .get(name)
        .map_or(0, |p| p.fired.load(Ordering::Relaxed))
}

/// Names of all currently armed points, sorted (BTreeMap order).
pub fn armed_points() -> Vec<String> {
    lock(registry()).keys().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plane is process-global; serialize tests that touch it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        lock(&GATE)
    }

    fn trace(name: &str, n: usize) -> Vec<bool> {
        (0..n).map(|_| should_fail(name)).collect()
    }

    #[test]
    fn dormant_plane_never_fires() {
        let _g = serial();
        disarm_all();
        assert!(!should_fail("persist.bitflip"));
        assert_eq!(hits("persist.bitflip"), 0);
    }

    #[test]
    fn counting_triggers_fire_on_schedule() {
        let _g = serial();
        disarm_all();
        {
            let _a = arm("t.once", Trigger::Once);
            assert_eq!(trace("t.once", 4), vec![true, false, false, false]);
        }
        {
            let _a = arm("t.nth", Trigger::Nth(3));
            assert_eq!(trace("t.nth", 5), vec![false, false, true, false, false]);
        }
        {
            let _a = arm("t.every", Trigger::Every(2));
            assert_eq!(trace("t.every", 6), vec![false, true, false, true, false, true]);
        }
        {
            let _a = arm("t.times", Trigger::Times(2));
            assert_eq!(trace("t.times", 4), vec![true, true, false, false]);
            assert_eq!(hits("t.times"), 4);
            assert_eq!(fired("t.times"), 2);
        }
    }

    #[test]
    fn prob_trigger_replays_identically_for_same_seed() {
        let _g = serial();
        disarm_all();
        let t = Trigger::Prob { p: 0.5, seed: 2024 };
        let first = {
            let _a = arm("t.prob", t);
            trace("t.prob", 200)
        };
        let second = {
            let _a = arm("t.prob", t);
            trace("t.prob", 200)
        };
        assert_eq!(first, second, "same seed must replay the same sequence");
        // Sanity: p=0.5 over 200 draws fires a nontrivial number of times.
        let fired = first.iter().filter(|&&b| b).count();
        assert!((50..=150).contains(&fired), "suspicious fire count {fired}");

        let third = {
            let _a = arm("t.prob", Trigger::Prob { p: 0.5, seed: 2025 });
            trace("t.prob", 200)
        };
        assert_ne!(first, third, "different seed must change the sequence");
    }

    #[test]
    fn guard_drop_disarms_and_returns_to_dormancy() {
        let _g = serial();
        disarm_all();
        {
            let _a = arm("t.guard", Trigger::Always);
            assert!(should_fail("t.guard"));
            assert_eq!(armed_points(), vec!["t.guard".to_string()]);
        }
        assert!(!should_fail("t.guard"));
        assert!(armed_points().is_empty());
        assert_eq!(STATE.load(Ordering::Relaxed), DORMANT);
    }

    #[test]
    fn arm_spec_registers_every_entry() {
        let _g = serial();
        disarm_all();
        let _a = arm_spec("a.x=once; b.y=every(2)").unwrap();
        assert_eq!(armed_points(), vec!["a.x".to_string(), "b.y".to_string()]);
        assert!(should_fail("a.x"));
        assert!(!should_fail("a.x"));
        assert!(!should_fail("b.y"));
        assert!(should_fail("b.y"));
        assert!(arm_spec("broken").is_err());
    }

    #[test]
    fn enospc_maps_to_storage_full() {
        assert_eq!(
            injected_io_error("fs.enospc").kind(),
            std::io::ErrorKind::StorageFull
        );
        assert_eq!(
            injected_io_error("persist.write_short").kind(),
            std::io::ErrorKind::Other
        );
    }
}
