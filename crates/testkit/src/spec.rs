//! Trigger schedules and the `QPINN_FAILPOINTS` spec grammar.
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := name '=' trigger
//! trigger := 'off' | 'always' | 'once'
//!          | 'nth(' N ')'              # fire on exactly the N-th hit (1-based)
//!          | 'every(' N ')'            # fire on every N-th hit
//!          | 'times(' N ')'            # fire on the first N hits
//!          | 'prob(' P [',seed=' S] ')'# fire with probability P, seeded PRNG
//! ```
//!
//! Whitespace around entries, names, and triggers is ignored. Every
//! schedule is deterministic: the same spec produces the same fire/no-fire
//! sequence for the same sequence of hits, including `prob`, whose draws
//! come from a SplitMix64 stream fixed by `seed` (default
//! [`DEFAULT_PROB_SEED`]).

use std::fmt;

/// Seed used by `prob(P)` when the spec does not pin one explicitly.
/// A fixed default keeps even "casual" probabilistic specs reproducible.
pub const DEFAULT_PROB_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// When (relative to its hit sequence) an injection point fires.
///
/// Hit numbers are 1-based: the first evaluation of a point is hit 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Never fire (registered but inert; counters still advance).
    Off,
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only.
    Once,
    /// Fire on exactly the `N`-th hit.
    Nth(u64),
    /// Fire on every `N`-th hit (hits N, 2N, 3N, ...).
    Every(u64),
    /// Fire on the first `N` hits.
    Times(u64),
    /// Fire with probability `p` per hit, drawn from a SplitMix64 stream
    /// seeded with `seed` — deterministic for a fixed hit order.
    Prob {
        /// Per-hit fire probability in `[0, 1]`.
        p: f64,
        /// PRNG seed fixing the draw sequence.
        seed: u64,
    },
}

/// A malformed `QPINN_FAILPOINTS` spec (or a malformed single trigger).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parse a full spec (`name=trigger;name=trigger;...`) into its entries.
/// Empty entries (from trailing/duplicated `;`) are skipped.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Trigger)>, SpecError> {
    let mut out = Vec::new();
    for raw in spec.split(';') {
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, trig) = entry
            .split_once('=')
            .ok_or_else(|| SpecError::new(format!("entry `{entry}` is missing `=`")))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(SpecError::new(format!("entry `{entry}` has an empty name")));
        }
        out.push((name.to_string(), parse_trigger(trig)?));
    }
    Ok(out)
}

/// Parse one trigger term of the grammar above.
pub fn parse_trigger(s: &str) -> Result<Trigger, SpecError> {
    let s = s.trim();
    match s {
        "off" => return Ok(Trigger::Off),
        "always" => return Ok(Trigger::Always),
        "once" => return Ok(Trigger::Once),
        _ => {}
    }
    let (head, rest) = s
        .split_once('(')
        .ok_or_else(|| SpecError::new(format!("unknown trigger `{s}`")))?;
    let args = rest
        .strip_suffix(')')
        .ok_or_else(|| SpecError::new(format!("trigger `{s}` is missing `)`")))?
        .trim();
    match head.trim() {
        "nth" => Ok(Trigger::Nth(parse_count("nth", args)?)),
        "every" => Ok(Trigger::Every(parse_count("every", args)?)),
        "times" => Ok(Trigger::Times(parse_count("times", args)?)),
        "prob" => parse_prob(args),
        other => Err(SpecError::new(format!("unknown trigger `{other}(...)`"))),
    }
}

fn parse_count(what: &str, args: &str) -> Result<u64, SpecError> {
    let n: u64 = args
        .parse()
        .map_err(|_| SpecError::new(format!("{what}({args}): expected an integer")))?;
    if n == 0 {
        return Err(SpecError::new(format!("{what}(0) would never fire; use `off`")));
    }
    Ok(n)
}

fn parse_prob(args: &str) -> Result<Trigger, SpecError> {
    let (p_str, seed) = match args.split_once(',') {
        None => (args.trim(), DEFAULT_PROB_SEED),
        Some((p, s)) => {
            let s = s.trim();
            let digits = s
                .strip_prefix("seed=")
                .ok_or_else(|| SpecError::new(format!("prob: expected `seed=N`, got `{s}`")))?;
            let seed = digits
                .parse()
                .map_err(|_| SpecError::new(format!("prob seed `{digits}`: expected an integer")))?;
            (p.trim(), seed)
        }
    };
    let p: f64 = p_str
        .parse()
        .map_err(|_| SpecError::new(format!("prob({p_str}): expected a probability")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(SpecError::new(format!("prob({p}): must be in [0, 1]")));
    }
    Ok(Trigger::Prob { p, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_trigger_form() {
        assert_eq!(parse_trigger("off").unwrap(), Trigger::Off);
        assert_eq!(parse_trigger("always").unwrap(), Trigger::Always);
        assert_eq!(parse_trigger("once").unwrap(), Trigger::Once);
        assert_eq!(parse_trigger("nth(3)").unwrap(), Trigger::Nth(3));
        assert_eq!(parse_trigger("every(2)").unwrap(), Trigger::Every(2));
        assert_eq!(parse_trigger("times(5)").unwrap(), Trigger::Times(5));
        assert_eq!(
            parse_trigger("prob(0.25, seed=42)").unwrap(),
            Trigger::Prob { p: 0.25, seed: 42 }
        );
        assert_eq!(
            parse_trigger("prob(1.0)").unwrap(),
            Trigger::Prob {
                p: 1.0,
                seed: DEFAULT_PROB_SEED
            }
        );
    }

    #[test]
    fn parses_multi_entry_spec_with_whitespace() {
        let spec = " persist.bitflip = nth(2) ; telemetry.sink_err=always ;; ";
        let entries = parse_spec(spec).unwrap();
        assert_eq!(
            entries,
            vec![
                ("persist.bitflip".to_string(), Trigger::Nth(2)),
                ("telemetry.sink_err".to_string(), Trigger::Always),
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_spec("no-equals-sign").is_err());
        assert!(parse_spec("=always").is_err());
        assert!(parse_trigger("sometimes").is_err());
        assert!(parse_trigger("nth(zero)").is_err());
        assert!(parse_trigger("nth(0)").is_err());
        assert!(parse_trigger("every(").is_err());
        assert!(parse_trigger("prob(1.5)").is_err());
        assert!(parse_trigger("prob(0.5, sneed=1)").is_err());
    }
}
