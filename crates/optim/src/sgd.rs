//! Stochastic gradient descent with classical momentum.

use crate::Optimizer;
use qpinn_tensor::Tensor;

/// SGD: `v ← μ·v + g`, `θ ← θ − lr·v` (plain descent when `momentum = 0`).
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Option<Vec<Tensor>>,
}

impl Sgd {
    /// Plain gradient descent.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// Descent with momentum coefficient `momentum ∈ [0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad arity");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                p.axpy(-self.lr, g);
            }
            return;
        }
        let velocity = self.velocity.get_or_insert_with(|| {
            params
                .iter()
                .map(|p| Tensor::zeros(p.shape().clone()))
                .collect()
        });
        assert_eq!(velocity.len(), params.len(), "velocity arity");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            let damped = v.scale(self.momentum).add(g);
            *v = damped;
            p.axpy(-self.lr, v);
        }
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_descent_on_quadratic_converges() {
        // minimize f(θ) = ½‖θ − c‖²; gradient θ − c.
        let c = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let mut theta = vec![Tensor::zeros([3])];
        let mut opt = Sgd::new(0.2);
        for _ in 0..200 {
            let g = theta[0].sub(&c);
            opt.step(&mut theta, &[g]);
        }
        assert!(theta[0].approx_eq(&c, 1e-8));
    }

    #[test]
    fn momentum_accelerates_ill_conditioned_quadratic() {
        // f(x, y) = ½(x² + 50 y²): plain SGD with a stable lr crawls along
        // x; momentum reaches the optimum in fewer steps.
        let run = |momentum: f64, steps: usize| -> f64 {
            let mut theta = vec![Tensor::from_slice(&[10.0, 1.0])];
            let mut opt = if momentum > 0.0 {
                Sgd::with_momentum(0.018, momentum)
            } else {
                Sgd::new(0.018)
            };
            for _ in 0..steps {
                let d = theta[0].data();
                let g = Tensor::from_slice(&[d[0], 50.0 * d[1]]);
                opt.step(&mut theta, &[g]);
            }
            theta[0].norm()
        };
        assert!(run(0.9, 150) < run(0.0, 150));
    }

    #[test]
    fn lr_override() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
