//! Adam (Kingma & Ba 2015) with bias correction and optional decoupled
//! weight decay (AdamW).

use crate::Optimizer;
use qpinn_tensor::Tensor;

/// Adam state: first/second moment estimates per parameter tensor.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Option<Vec<Tensor>>,
    v: Option<Vec<Tensor>>,
}

impl Adam {
    /// Standard Adam with the canonical PINN defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8, no decay).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Adam with decoupled weight decay (AdamW).
    pub fn with_weight_decay(lr: f64, weight_decay: f64) -> Self {
        let mut a = Adam::new(lr);
        a.weight_decay = weight_decay;
        a
    }

    /// Override the β coefficients.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Export the full optimizer state for checkpointing.
    ///
    /// The moment buffers are cloned; an optimizer that has not stepped yet
    /// exports empty buffers and reconstructs them lazily after import, so
    /// the export → import → step sequence is bit-identical to stepping the
    /// original optimizer.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            t: self.t,
            m: self.m.clone().unwrap_or_default(),
            v: self.v.clone().unwrap_or_default(),
        }
    }

    /// Reconstruct an optimizer from an exported state.
    ///
    /// # Panics
    /// Panics when the moment buffers disagree in arity (`m` and `v` must
    /// both be empty or both have one tensor per parameter).
    pub fn from_state(state: AdamState) -> Self {
        assert_eq!(
            state.m.len(),
            state.v.len(),
            "Adam moment buffers must have equal arity"
        );
        let empty = state.m.is_empty();
        Adam {
            lr: state.lr,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
            weight_decay: state.weight_decay,
            t: state.t,
            m: if empty { None } else { Some(state.m) },
            v: if empty { None } else { Some(state.v) },
        }
    }
}

/// A plain-data export of an [`Adam`] optimizer, used by checkpointing.
///
/// Every field that influences future updates is included, so restoring the
/// state and continuing produces exactly the trajectory the original
/// optimizer would have taken.
#[derive(Clone, Debug)]
pub struct AdamState {
    /// Learning rate at export time.
    pub lr: f64,
    /// First-moment decay coefficient.
    pub beta1: f64,
    /// Second-moment decay coefficient.
    pub beta2: f64,
    /// Denominator stabilizer.
    pub eps: f64,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f64,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment buffers, one per parameter tensor (empty before the
    /// first step).
    pub m: Vec<Tensor>,
    /// Second-moment buffers, one per parameter tensor (empty before the
    /// first step).
    pub v: Vec<Tensor>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad arity");
        let m = self.m.get_or_insert_with(|| {
            params
                .iter()
                .map(|p| Tensor::zeros(p.shape().clone()))
                .collect()
        });
        let v = self.v.get_or_insert_with(|| {
            params
                .iter()
                .map(|p| Tensor::zeros(p.shape().clone()))
                .collect()
        });
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.lr;
        let (b1, b2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        for (((p, g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            assert_eq!(p.shape(), g.shape(), "grad shape");
            let pd = p.data_mut();
            let md = mi.data_mut();
            let vd = vi.data_mut();
            let gd = g.data();
            for i in 0..pd.len() {
                md[i] = b1 * md[i] + (1.0 - b1) * gd[i];
                vd[i] = b2 * vd[i] + (1.0 - b2) * gd[i] * gd[i];
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                pd[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * pd[i]);
            }
        }
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let c = Tensor::from_slice(&[3.0, -1.0]);
        let mut theta = vec![Tensor::zeros([2])];
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let g = theta[0].sub(&c);
            opt.step(&mut theta, &[g]);
        }
        assert!(theta[0].approx_eq(&c, 1e-4), "{:?}", theta[0]);
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    fn converges_on_rosenbrock() {
        // The classic banana function: a meaningful nonconvex check.
        let mut theta = vec![Tensor::from_slice(&[-1.2, 1.0])];
        let mut opt = Adam::new(0.02);
        for _ in 0..20_000 {
            let d = theta[0].data();
            let (x, y) = (d[0], d[1]);
            let g = Tensor::from_slice(&[
                -2.0 * (1.0 - x) - 400.0 * x * (y - x * x),
                200.0 * (y - x * x),
            ]);
            opt.step(&mut theta, &[g]);
        }
        let d = theta[0].data();
        assert!(
            (d[0] - 1.0).abs() < 1e-2 && (d[1] - 1.0).abs() < 2e-2,
            "{d:?}"
        );
    }

    #[test]
    fn weight_decay_shrinks_toward_zero() {
        // With zero gradients, AdamW must contract parameters.
        let mut theta = vec![Tensor::from_slice(&[2.0])];
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        for _ in 0..50 {
            let g = Tensor::zeros([1]);
            opt.step(&mut theta, &[g]);
        }
        assert!(theta[0].data()[0].abs() < 2.0 * 0.95f64.powi(50) + 1e-6);
    }

    #[test]
    fn state_roundtrip_continues_bit_exactly() {
        // Two optimizers: one steps straight through, the other is
        // checkpointed mid-run via export/import. Trajectories must agree
        // to the last bit.
        let grad_at = |k: u64| Tensor::from_slice(&[(k as f64 * 0.7).sin(), 0.3 - k as f64 * 0.1]);
        let mut a = vec![Tensor::from_slice(&[1.0, -2.0])];
        let mut b = a.clone();
        let mut opt_a = Adam::with_weight_decay(0.01, 0.1).with_betas(0.9, 0.99);
        let mut opt_b = Adam::with_weight_decay(0.01, 0.1).with_betas(0.9, 0.99);
        for k in 0..5 {
            opt_a.step(&mut a, &[grad_at(k)]);
            opt_b.step(&mut b, &[grad_at(k)]);
        }
        let mut opt_b = Adam::from_state(opt_b.export_state());
        for k in 5..10 {
            opt_a.step(&mut a, &[grad_at(k)]);
            opt_b.step(&mut b, &[grad_at(k)]);
        }
        assert_eq!(opt_a.steps(), opt_b.steps());
        assert_eq!(a[0].data(), b[0].data(), "exact f64 equality required");
    }

    #[test]
    fn fresh_state_roundtrip_matches_fresh_optimizer() {
        // Export before any step: buffers are empty and lazily rebuilt, so
        // the first post-import step equals a fresh optimizer's first step.
        let mut a = vec![Tensor::from_slice(&[0.5])];
        let mut b = a.clone();
        let mut opt_a = Adam::new(0.01);
        let mut opt_b = Adam::from_state(Adam::new(0.01).export_state());
        let g = Tensor::from_slice(&[2.0]);
        opt_a.step(&mut a, std::slice::from_ref(&g));
        opt_b.step(&mut b, &[g]);
        assert_eq!(a[0].data(), b[0].data());
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn mismatched_moment_arity_is_rejected() {
        let state = AdamState {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 1,
            m: vec![Tensor::zeros([2])],
            v: vec![],
        };
        let _ = Adam::from_state(state);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // Bias correction makes the very first Adam step ≈ lr · sign(g).
        let mut theta = vec![Tensor::from_slice(&[0.0])];
        let mut opt = Adam::new(0.001);
        opt.step(&mut theta, &[Tensor::from_slice(&[123.0])]);
        assert!((theta[0].data()[0] + 0.001).abs() < 1e-6);
    }
}
