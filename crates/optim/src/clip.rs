//! Gradient clipping.

use qpinn_tensor::Tensor;

/// Rescale all gradients so their joint Euclidean norm does not exceed
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f64) -> f64 {
    let total: f64 = grads.iter().map(Tensor::sum_sq).sum::<f64>().sqrt();
    if total > max_norm && total > 0.0 {
        let s = max_norm / total;
        for g in grads.iter_mut() {
            let scaled = g.scale(s);
            *g = scaled;
        }
    }
    total
}

/// Joint Euclidean norm of a gradient list (for logging gradient-norm
/// trajectories).
pub fn global_norm(grads: &[Tensor]) -> f64 {
    grads.iter().map(Tensor::sum_sq).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_untouched() {
        let mut g = vec![Tensor::from_slice(&[3.0, 4.0])]; // norm 5
        let pre = clip_global_norm(&mut g, 10.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert_eq!(g[0].data(), &[3.0, 4.0]);
    }

    #[test]
    fn above_threshold_rescaled() {
        let mut g = vec![
            Tensor::from_slice(&[3.0, 4.0]),
            Tensor::from_slice(&[0.0, 12.0]),
        ]; // norm 13
        let pre = clip_global_norm(&mut g, 1.0);
        assert!((pre - 13.0).abs() < 1e-12);
        let post = global_norm(&g);
        assert!((post - 1.0).abs() < 1e-12);
        // direction preserved
        assert!((g[0].data()[1] / g[0].data()[0] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_gradients_are_safe() {
        let mut g = vec![Tensor::zeros([3])];
        let pre = clip_global_norm(&mut g, 1.0);
        assert_eq!(pre, 0.0);
        assert!(g[0].data().iter().all(|&x| x == 0.0));
    }
}
