//! Learning-rate schedules.

/// A deterministic learning-rate schedule mapping epoch → lr.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f64,
    },
    /// Multiply by `factor` every `every` epochs (the classic PINN decay,
    /// e.g. ×0.85 every 2000 epochs).
    Step {
        /// Initial rate.
        lr0: f64,
        /// Multiplicative factor per stage.
        factor: f64,
        /// Epochs per stage.
        every: usize,
    },
    /// Smooth exponential decay `lr0 · γ^epoch`.
    Exponential {
        /// Initial rate.
        lr0: f64,
        /// Per-epoch factor.
        gamma: f64,
    },
    /// Cosine annealing from `lr0` to `lr_min` over `total` epochs.
    Cosine {
        /// Initial rate.
        lr0: f64,
        /// Floor rate.
        lr_min: f64,
        /// Annealing horizon.
        total: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Step { lr0, factor, every } => {
                lr0 * factor.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Exponential { lr0, gamma } => lr0 * gamma.powi(epoch as i32),
            LrSchedule::Cosine { lr0, lr_min, total } => {
                let p = (epoch.min(total)) as f64 / total.max(1) as f64;
                lr_min + 0.5 * (lr0 - lr_min) * (1.0 + (std::f64::consts::PI * p).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(10_000), 0.01);
    }

    #[test]
    fn step_decay_stages() {
        let s = LrSchedule::Step {
            lr0: 1.0,
            factor: 0.5,
            every: 100,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(99), 1.0);
        assert_eq!(s.at(100), 0.5);
        assert_eq!(s.at(250), 0.25);
    }

    #[test]
    fn exponential_monotone() {
        let s = LrSchedule::Exponential {
            lr0: 0.1,
            gamma: 0.99,
        };
        assert!(s.at(10) < s.at(5));
        assert!((s.at(2) - 0.1 * 0.99f64.powi(2)).abs() < 1e-15);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            lr0: 1.0,
            lr_min: 0.1,
            total: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-12);
        assert!((s.at(100) - 0.1).abs() < 1e-12);
        assert!((s.at(200) - 0.1).abs() < 1e-12, "clamps past horizon");
        assert!((s.at(50) - 0.55).abs() < 1e-12);
    }
}
