//! # qpinn-optim
//!
//! Optimizers and learning-rate schedules for PINN training:
//!
//! * [`Sgd`] — stochastic gradient descent with optional momentum;
//! * [`Adam`] — the default PINN optimizer (Kingma & Ba), with bias
//!   correction and optional decoupled weight decay;
//! * [`Lbfgs`] — limited-memory BFGS with a strong-Wolfe line search,
//!   operating on flat parameter vectors; typically used to polish an
//!   Adam-trained model;
//! * [`schedule`] — step/exponential/cosine learning-rate decay;
//! * [`clip`] — global gradient-norm clipping.
//!
//! ```
//! use qpinn_optim::{Adam, Optimizer};
//! use qpinn_tensor::Tensor;
//! // fit θ → 2 by gradient descent on (θ − 2)²
//! let mut theta = vec![Tensor::scalar(0.0)];
//! let mut opt = Adam::new(0.1);
//! for _ in 0..500 {
//!     let g = theta[0].add_scalar(-2.0).scale(2.0);
//!     opt.step(&mut theta, &[g]);
//! }
//! assert!((theta[0].item() - 2.0).abs() < 1e-3);
//! ```

#![deny(missing_docs)]

pub mod adam;
pub mod clip;
pub mod lbfgs;
pub mod schedule;
pub mod sgd;

pub use adam::{Adam, AdamState};
pub use lbfgs::{Lbfgs, LbfgsConfig, LbfgsOutcome};
pub use schedule::LrSchedule;
pub use sgd::Sgd;

use qpinn_tensor::Tensor;

/// A first-order optimizer stepping a list of parameter tensors given
/// matching gradients.
pub trait Optimizer {
    /// Apply one update in place. `grads[i]` must have the shape of
    /// `params[i]`.
    fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]);

    /// Current learning rate.
    fn lr(&self) -> f64;

    /// Override the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f64);
}
