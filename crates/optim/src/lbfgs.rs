//! Limited-memory BFGS with a strong-Wolfe line search.
//!
//! Operates on flat `Vec<f64>` parameter vectors (use
//! `ParamSet::flatten`/`assign_flat` from `qpinn-nn` to adapt). The
//! implementation follows Nocedal & Wright: two-loop recursion for the
//! search direction, bracketing + zoom line search enforcing the strong
//! Wolfe conditions, and the standard `γ = sᵀy/yᵀy` initial Hessian
//! scaling.

/// Configuration for [`Lbfgs`].
#[derive(Clone, Debug)]
pub struct LbfgsConfig {
    /// History length `m` (pairs of (s, y) kept).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when `‖∇f‖∞ ≤ tol_grad`.
    pub tol_grad: f64,
    /// Stop when the relative decrease of `f` falls below this for one step.
    pub tol_rel_f: f64,
    /// Armijo constant (sufficient decrease).
    pub c1: f64,
    /// Curvature constant (strong Wolfe).
    pub c2: f64,
    /// Maximum line-search function evaluations per iteration.
    pub max_ls: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 10,
            max_iters: 200,
            tol_grad: 1e-10,
            tol_rel_f: 1e-14,
            c1: 1e-4,
            c2: 0.9,
            max_ls: 25,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbfgsOutcome {
    /// Gradient norm below tolerance.
    GradConverged,
    /// Function decrease stalled.
    FConverged,
    /// Hit the iteration budget.
    MaxIters,
    /// The line search could not satisfy the Wolfe conditions.
    LineSearchFailed,
}

/// Result of an L-BFGS run.
#[derive(Clone, Debug)]
pub struct LbfgsResult {
    /// Final point.
    pub x: Vec<f64>,
    /// Final objective value.
    pub f: f64,
    /// Final gradient.
    pub grad: Vec<f64>,
    /// Iterations taken.
    pub iters: usize,
    /// Termination reason.
    pub outcome: LbfgsOutcome,
}

/// The optimizer. Stateless between calls; all state lives in `minimize`.
#[derive(Clone, Debug, Default)]
pub struct Lbfgs {
    /// Configuration.
    pub cfg: LbfgsConfig,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn inf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

impl Lbfgs {
    /// With explicit configuration.
    pub fn new(cfg: LbfgsConfig) -> Self {
        Lbfgs { cfg }
    }

    /// Minimize `f` (returning `(value, gradient)`) from `x0`.
    pub fn minimize(
        &self,
        mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
        x0: Vec<f64>,
    ) -> LbfgsResult {
        let n = x0.len();
        let cfg = &self.cfg;
        // Resolved once: registry lookup takes a mutex, the per-iteration
        // updates below are lock-free atomic adds.
        let iters_ctr = qpinn_telemetry::counter("optim.lbfgs.iters");
        let ls_ctr = qpinn_telemetry::counter("optim.lbfgs.line_search_evals");
        let mut x = x0;
        let (mut fx, mut gx) = f(&x);
        let mut s_hist: Vec<Vec<f64>> = Vec::new();
        let mut y_hist: Vec<Vec<f64>> = Vec::new();
        let mut rho_hist: Vec<f64> = Vec::new();

        for iter in 0..cfg.max_iters {
            if inf_norm(&gx) <= cfg.tol_grad {
                return LbfgsResult {
                    x,
                    f: fx,
                    grad: gx,
                    iters: iter,
                    outcome: LbfgsOutcome::GradConverged,
                };
            }

            // Two-loop recursion for d = -H·g.
            let mut q = gx.clone();
            let k = s_hist.len();
            let mut alpha = vec![0.0; k];
            for i in (0..k).rev() {
                alpha[i] = rho_hist[i] * dot(&s_hist[i], &q);
                for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                    *qj -= alpha[i] * yj;
                }
            }
            let gamma = if k > 0 {
                let sy = dot(&s_hist[k - 1], &y_hist[k - 1]);
                let yy = dot(&y_hist[k - 1], &y_hist[k - 1]);
                if yy > 0.0 {
                    sy / yy
                } else {
                    1.0
                }
            } else {
                1.0
            };
            for qj in q.iter_mut() {
                *qj *= gamma;
            }
            for i in 0..k {
                let beta = rho_hist[i] * dot(&y_hist[i], &q);
                for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                    *qj += (alpha[i] - beta) * sj;
                }
            }
            let mut d: Vec<f64> = q.iter().map(|v| -v).collect();

            // Ensure a descent direction; fall back to steepest descent.
            let mut dg = dot(&d, &gx);
            if dg >= 0.0 {
                d = gx.iter().map(|v| -v).collect();
                dg = dot(&d, &gx);
            }

            // Strong-Wolfe line search (bracket + zoom).
            let phi0 = fx;
            let dphi0 = dg;
            let mut step = if iter == 0 {
                (1.0 / inf_norm(&gx).max(1.0)).min(1.0)
            } else {
                1.0
            };
            let eval =
                |alpha: f64, x: &[f64], d: &[f64], f: &mut dyn FnMut(&[f64]) -> (f64, Vec<f64>)| {
                    let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + alpha * di).collect();
                    let (ft, gt) = f(&xt);
                    let dphit = dot(&gt, d);
                    (xt, ft, gt, dphit)
                };

            let mut lo = 0.0f64;
            let mut f_lo = phi0;
            let mut dphi_lo = dphi0;
            let mut hi: Option<(f64, f64)> = None; // (alpha, f)
            let mut accepted: Option<(Vec<f64>, f64, Vec<f64>)> = None;
            let mut prev_alpha = 0.0f64;
            let mut prev_f = phi0;
            let mut ls_evals = 0usize;

            // Bracketing phase.
            while ls_evals < cfg.max_ls {
                let (xt, ft, gt, dphit) = eval(step, &x, &d, &mut f);
                ls_evals += 1;
                if ft > phi0 + cfg.c1 * step * dphi0 || (ls_evals > 1 && ft >= prev_f) {
                    lo = prev_alpha;
                    f_lo = prev_f;
                    dphi_lo = if prev_alpha == 0.0 { dphi0 } else { dphi_lo };
                    hi = Some((step, ft));
                    break;
                }
                if dphit.abs() <= -cfg.c2 * dphi0 {
                    accepted = Some((xt, ft, gt));
                    break;
                }
                if dphit >= 0.0 {
                    lo = step;
                    f_lo = ft;
                    dphi_lo = dphit;
                    hi = Some((prev_alpha, prev_f));
                    break;
                }
                prev_alpha = step;
                prev_f = ft;
                step *= 2.0;
            }

            // Zoom phase.
            if accepted.is_none() {
                if let Some((mut hi_a, mut hi_f)) = hi {
                    while ls_evals < cfg.max_ls {
                        let mid = 0.5 * (lo + hi_a);
                        let (xt, ft, gt, dphit) = eval(mid, &x, &d, &mut f);
                        ls_evals += 1;
                        if ft > phi0 + cfg.c1 * mid * dphi0 || ft >= f_lo {
                            hi_a = mid;
                            hi_f = ft;
                        } else {
                            if dphit.abs() <= -cfg.c2 * dphi0 {
                                accepted = Some((xt, ft, gt));
                                break;
                            }
                            if dphit * (hi_a - lo) >= 0.0 {
                                hi_a = lo;
                                hi_f = f_lo;
                            }
                            lo = mid;
                            f_lo = ft;
                            dphi_lo = dphit;
                        }
                        if (hi_a - lo).abs() < 1e-16 {
                            break;
                        }
                        let _ = hi_f;
                        let _ = dphi_lo;
                    }
                }
            }

            iters_ctr.inc();
            ls_ctr.add(ls_evals as u64);

            let Some((x_new, f_new, g_new)) = accepted else {
                return LbfgsResult {
                    x,
                    f: fx,
                    grad: gx,
                    iters: iter,
                    outcome: LbfgsOutcome::LineSearchFailed,
                };
            };

            // Update history.
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
            let yv: Vec<f64> = g_new.iter().zip(&gx).map(|(a, b)| a - b).collect();
            let sy = dot(&s, &yv);
            if sy > 1e-12 * dot(&yv, &yv).max(1e-300) {
                if s_hist.len() == cfg.memory {
                    s_hist.remove(0);
                    y_hist.remove(0);
                    rho_hist.remove(0);
                }
                rho_hist.push(1.0 / sy);
                s_hist.push(s);
                y_hist.push(yv);
            }

            let rel = (fx - f_new).abs() / fx.abs().max(1.0);
            x = x_new;
            fx = f_new;
            gx = g_new;
            let _ = n;
            if rel < cfg.tol_rel_f {
                return LbfgsResult {
                    x,
                    f: fx,
                    grad: gx,
                    iters: iter + 1,
                    outcome: LbfgsOutcome::FConverged,
                };
            }
        }
        LbfgsResult {
            x,
            f: fx,
            grad: gx,
            iters: self.cfg.max_iters,
            outcome: LbfgsOutcome::MaxIters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_in_few_iterations() {
        // f(x) = ½ xᵀ D x with D = diag(1..5): quadratic, should converge
        // far faster than gradient descent.
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let res = Lbfgs::default().minimize(
            |x| {
                let f = 0.5 * x.iter().zip(&d).map(|(xi, di)| di * xi * xi).sum::<f64>();
                let g = x.iter().zip(&d).map(|(xi, di)| di * xi).collect();
                (f, g)
            },
            vec![1.0, -1.0, 2.0, -2.0, 0.5],
        );
        assert!(res.f < 1e-16, "f = {}", res.f);
        assert!(res.iters < 30, "iters = {}", res.iters);
    }

    #[test]
    fn rosenbrock_to_machine_precision() {
        let res = Lbfgs::new(LbfgsConfig {
            max_iters: 500,
            ..Default::default()
        })
        .minimize(
            |x| {
                let (a, b) = (x[0], x[1]);
                let f = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
                let g = vec![
                    -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                    200.0 * (b - a * a),
                ];
                (f, g)
            },
            vec![-1.2, 1.0],
        );
        assert!((res.x[0] - 1.0).abs() < 1e-6, "{:?}", res);
        assert!((res.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn already_at_minimum() {
        let res = Lbfgs::default().minimize(|x| (x[0] * x[0], vec![2.0 * x[0]]), vec![0.0]);
        assert_eq!(res.outcome, LbfgsOutcome::GradConverged);
        assert_eq!(res.iters, 0);
    }

    #[test]
    fn high_dimensional_least_squares() {
        // f(x) = ½‖x − c‖² in 200 dims.
        let c: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let c2 = c.clone();
        let res = Lbfgs::default().minimize(
            move |x| {
                let f = 0.5
                    * x.iter()
                        .zip(&c2)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>();
                let g = x.iter().zip(&c2).map(|(a, b)| a - b).collect();
                (f, g)
            },
            vec![0.0; 200],
        );
        for (xi, ci) in res.x.iter().zip(&c) {
            assert!((xi - ci).abs() < 1e-7);
        }
    }

    #[test]
    fn beats_gradient_descent_on_ill_conditioned() {
        // condition number 1e4; GD with safe lr needs thousands of steps.
        let d = [1.0, 1e4];
        let res = Lbfgs::default().minimize(
            |x| {
                let f = 0.5 * (d[0] * x[0] * x[0] + d[1] * x[1] * x[1]);
                (f, vec![d[0] * x[0], d[1] * x[1]])
            },
            vec![1.0, 1.0],
        );
        assert!(res.f < 1e-12);
        assert!(res.iters < 60, "iters = {}", res.iters);
    }
}
