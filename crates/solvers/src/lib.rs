//! # qpinn-solvers
//!
//! High-fidelity reference solvers for the Schrödinger systems the PINNs
//! are scored against, built on the in-house FFT and tridiagonal linear
//! algebra:
//!
//! * [`crank_nicolson`] — unconditionally stable, norm-preserving
//!   Crank–Nicolson propagation of the 1D time-dependent Schrödinger
//!   equation (Dirichlet or periodic boundaries);
//! * [`split_step`] — Strang-split spectral propagation for periodic
//!   problems, including the cubic nonlinearity of the nonlinear
//!   Schrödinger equation;
//! * [`eigensolver`] — finite-difference bound states of
//!   `−½∂²/∂x² + V(x)` via Sturm bisection + inverse iteration;
//! * [`observables`] — norms, energies and expectation values used by the
//!   conservation diagnostics;
//! * [`mol`] — a generic method-of-lines RK4 stepper (plus a Strang-split
//!   spectral reaction-diffusion integrator) for the real-valued and
//!   coupled families of the problem registry;
//! * [`elliptic`] — dense-LU finite-difference Helmholtz boundary-value
//!   solver used as an independent elliptic cross-check.
//!
//! Units are natural (`ħ = m = 1`) throughout: `i ∂ψ/∂t = −½ ∂²ψ/∂x² + Vψ`.
//!
//! ```
//! use qpinn_solvers::{bound_states, Grid1d};
//! // harmonic-oscillator ground state energy ≈ ½
//! let grid = Grid1d::dirichlet(-8.0, 8.0, 401);
//! let states = bound_states(&grid, &|x| 0.5 * x * x, 1);
//! assert!((states[0].energy - 0.5).abs() < 1e-3);
//! ```

#![deny(missing_docs)]

pub mod crank_nicolson;
pub mod eigensolver;
pub mod elliptic;
pub mod field;
pub mod grid;
pub mod mol;
pub mod observables;
pub mod split_step;
pub mod split_step_2d;

pub use crank_nicolson::crank_nicolson_tdse;
pub use eigensolver::{bound_states, BoundState};
pub use elliptic::{helmholtz_fd_solve, HelmholtzFd};
pub use field::Field1d;
pub use grid::{Grid1d, GridKind};
pub use mol::{
    gradient_periodic, laplacian_periodic, mol_rk4, reaction_diffusion_spectral, FieldR1d,
};
pub use split_step::{split_step_evolve, Nonlinearity};
pub use split_step_2d::{split_step_evolve_2d, Field2d};
