//! Crank–Nicolson propagation of the 1D TDSE.
//!
//! The Cayley form `(I + iΔt/2·H) ψ^{n+1} = (I − iΔt/2·H) ψ^n` is exactly
//! unitary for Hermitian `H`, so the discrete norm is conserved to machine
//! precision — a property the conservation-loss experiments rely on. `H`
//! is the standard 3-point stencil `−½∂²/∂x² + V`, giving a (cyclic)
//! tridiagonal solve per step.

use crate::field::Field1d;
use crate::grid::{Grid1d, GridKind};
use qpinn_dual::Complex64;
use qpinn_linalg::{solve_cyclic_tridiag_complex, solve_tridiag_complex};

/// Propagate `psi0` from `t = 0` to `t_end` in `n_steps` CN steps, storing
/// every `store_every`-th slice (plus the first and last).
///
/// # Panics
/// Panics on degenerate arguments.
pub fn crank_nicolson_tdse(
    grid: &Grid1d,
    potential: &dyn Fn(f64) -> f64,
    psi0: &[Complex64],
    t_end: f64,
    n_steps: usize,
    store_every: usize,
) -> Field1d {
    assert_eq!(psi0.len(), grid.n, "initial state vs grid");
    assert!(n_steps > 0 && t_end > 0.0 && store_every > 0);
    let dt = t_end / n_steps as f64;
    let dx = grid.dx();
    let inv2dx2 = 1.0 / (2.0 * dx * dx);
    let n = grid.n;
    let periodic = grid.kind == GridKind::Periodic;

    // For Dirichlet boundaries the unknowns are the interior points only;
    // the boundary values are identically zero.
    let active: Vec<usize> = if periodic {
        (0..n).collect()
    } else {
        (1..n - 1).collect()
    };
    let vs: Vec<f64> = {
        let pts = grid.points();
        active.iter().map(|&i| potential(pts[i])).collect()
    };
    let m = active.len();

    // H: diag = 1/dx² + V, off = −1/(2dx²).
    let h_off = -inv2dx2;
    // A = I + i dt/2 H (solved), B = I − i dt/2 H (applied).
    let half = Complex64::new(0.0, 0.5 * dt);
    let a_off = half.scale(h_off);
    let b_off = (-half).scale(h_off);
    let a_diag: Vec<Complex64> = vs
        .iter()
        .map(|&v| Complex64::one() + half.scale(2.0 * inv2dx2 + v))
        .collect();
    let b_diag: Vec<Complex64> = vs
        .iter()
        .map(|&v| Complex64::one() - half.scale(2.0 * inv2dx2 + v))
        .collect();

    let apply_b = |psi: &[Complex64]| -> Vec<Complex64> {
        (0..m)
            .map(|i| {
                let mut r = b_diag[i] * psi[i];
                if i > 0 {
                    r += b_off * psi[i - 1];
                } else if periodic {
                    r += b_off * psi[m - 1];
                }
                if i + 1 < m {
                    r += b_off * psi[i + 1];
                } else if periodic {
                    r += b_off * psi[0];
                }
                r
            })
            .collect()
    };

    let embed = |interior: &[Complex64]| -> Vec<Complex64> {
        if periodic {
            interior.to_vec()
        } else {
            let mut full = vec![Complex64::zero(); n];
            full[1..n - 1].copy_from_slice(interior);
            full
        }
    };

    let mut psi: Vec<Complex64> = active.iter().map(|&i| psi0[i]).collect();
    let mut times = vec![0.0];
    let mut data = vec![embed(&psi)];
    for step in 1..=n_steps {
        let rhs = apply_b(&psi);
        psi = if periodic {
            solve_cyclic_tridiag_complex(a_off, &a_diag, a_off, &rhs)
        } else {
            solve_tridiag_complex(a_off, &a_diag, a_off, &rhs)
        };
        if step % store_every == 0 || step == n_steps {
            times.push(step as f64 * dt);
            data.push(embed(&psi));
        }
    }
    Field1d::new(*grid, times, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian(grid: &Grid1d, sigma: f64, k0: f64) -> Vec<Complex64> {
        let norm = 1.0 / (2.0 * std::f64::consts::PI * sigma * sigma).powf(0.25);
        grid.points()
            .iter()
            .map(|&x| {
                Complex64::from_polar(norm * (-x * x / (4.0 * sigma * sigma)).exp(), k0 * x)
            })
            .collect()
    }

    #[test]
    fn norm_is_conserved_to_machine_precision() {
        let grid = Grid1d::periodic(-8.0, 8.0, 128);
        let psi0 = gaussian(&grid, 0.7, 2.0);
        let f = crank_nicolson_tdse(&grid, &|_| 0.0, &psi0, 1.0, 200, 50);
        let n0 = f.norm_at(0);
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-10, "slice {k}");
        }
    }

    #[test]
    fn plane_wave_phase_evolution() {
        // ψ = e^{ikx} is an exact eigenstate on a periodic grid; the FD
        // eigenvalue is (1 − cos kΔx)/Δx², so CN advances the phase by
        // exactly e^{−iE_fd t} (Cayley form is exact for eigenstates up to
        // the rational approximation of the exponential).
        let n = 64;
        let grid = Grid1d::periodic(0.0, 2.0 * std::f64::consts::PI, n);
        let k = 3.0;
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| Complex64::cis(k * x)).collect();
        let t_end = 0.5;
        let steps = 4000;
        let f = crank_nicolson_tdse(&grid, &|_| 0.0, &psi0, t_end, steps, steps);
        let dx = grid.dx();
        let e_fd = (1.0 - (k * dx).cos()) / (dx * dx);
        let last = f.slice(f.n_slices() - 1);
        for (x, v) in grid.points().iter().zip(last) {
            let want = Complex64::cis(k * x - e_fd * t_end);
            assert!(
                (v.re - want.re).abs() < 1e-4 && (v.im - want.im).abs() < 1e-4,
                "at {x}: {v:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn harmonic_ground_state_is_stationary() {
        // The *discrete* ground state of the same 3-point Hamiltonian is an
        // exact eigenvector of the CN step matrix, so its density must be
        // static to near machine precision.
        let omega = 1.0;
        let grid = Grid1d::dirichlet(-8.0, 8.0, 257);
        let v = |x: f64| 0.5 * omega * omega * x * x;
        let gs = &crate::eigensolver::bound_states(&grid, &v, 1)[0];
        let psi0: Vec<Complex64> = gs.psi.iter().map(|&p| Complex64::new(p, 0.0)).collect();
        let f = crank_nicolson_tdse(&grid, &v, &psi0, 2.0, 400, 400);
        let last = f.slice(f.n_slices() - 1);
        for (a, b) in psi0.iter().zip(last) {
            assert!(
                (a.norm_sqr() - b.norm_sqr()).abs() < 1e-8,
                "density moved: {} vs {}",
                a.norm_sqr(),
                b.norm_sqr()
            );
        }
    }

    #[test]
    fn dirichlet_boundaries_stay_zero() {
        let grid = Grid1d::dirichlet(-5.0, 5.0, 101);
        let psi0 = gaussian(&grid, 0.5, 5.0);
        let f = crank_nicolson_tdse(&grid, &|_| 0.0, &psi0, 0.3, 60, 10);
        for k in 0..f.n_slices() {
            let s = f.slice(k);
            assert_eq!(s[0], Complex64::zero());
            assert_eq!(s[100], Complex64::zero());
        }
    }
}
