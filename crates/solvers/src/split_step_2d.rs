//! 2D split-step Fourier propagation of the time-dependent Schrödinger
//! equation `i ψ_t = −½∇²ψ + V(x, y)ψ` on a doubly periodic rectangle.
//!
//! Same Strang splitting as the 1D propagator; the kinetic factor becomes
//! `e^{−i(kx² + ky²)Δt/2}` applied after a 2D FFT.

use crate::grid::Grid1d;
use qpinn_dual::Complex64;
use qpinn_fft::{fft_freq, Fft2Plan};

/// A wavefunction `ψ(x, y, t)` on a tensor-product periodic grid × time
/// slices (row-major `nx × ny` spatial storage).
#[derive(Clone, Debug)]
pub struct Field2d {
    /// x-axis grid (periodic).
    pub gx: Grid1d,
    /// y-axis grid (periodic).
    pub gy: Grid1d,
    times: Vec<f64>,
    data: Vec<Vec<Complex64>>,
}

impl Field2d {
    /// Stored time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The slice at time index `k` (row-major `nx × ny`).
    pub fn slice(&self, k: usize) -> &[Complex64] {
        &self.data[k]
    }

    /// Number of stored slices.
    pub fn n_slices(&self) -> usize {
        self.data.len()
    }

    /// Bilinear-in-space, linear-in-time interpolation of ψ at `(x, y, t)`.
    pub fn sample(&self, x: f64, y: f64, t: f64) -> Complex64 {
        let (kt0, kt1, wt) = if t <= self.times[0] {
            (0, 0, 0.0)
        } else if t >= *self.times.last().unwrap() {
            let k = self.times.len() - 1;
            (k, k, 0.0)
        } else {
            let mut lo = 0usize;
            let mut hi = self.times.len() - 1;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if self.times[mid] <= t {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (lo, hi, (t - self.times[lo]) / (self.times[hi] - self.times[lo]))
        };
        let (i0, i1, wx) = self.gx.locate(x);
        let (j0, j1, wy) = self.gy.locate(y);
        let ny = self.gy.n;
        let interp = |k: usize| -> Complex64 {
            let s = &self.data[k];
            let a = s[i0 * ny + j0].scale((1.0 - wx) * (1.0 - wy));
            let b = s[i0 * ny + j1].scale((1.0 - wx) * wy);
            let c = s[i1 * ny + j0].scale(wx * (1.0 - wy));
            let d = s[i1 * ny + j1].scale(wx * wy);
            a + b + c + d
        };
        let a = interp(kt0);
        let b = interp(kt1);
        a.scale(1.0 - wt) + b.scale(wt)
    }

    /// `∫∫|ψ|² dx dy` at stored slice `k` (rectangle rule — exact-grade for
    /// periodic functions).
    pub fn norm_at(&self, k: usize) -> f64 {
        let da = self.gx.dx() * self.gy.dx();
        self.data[k].iter().map(|c| c.norm_sqr()).sum::<f64>() * da
    }
}

/// Propagate `psi0` (row-major `nx × ny`) to `t_end` in `n_steps` Strang
/// steps, storing every `store_every`-th slice.
///
/// # Panics
/// Panics for non-periodic grids, non-power-of-two sizes, or degenerate
/// arguments.
pub fn split_step_evolve_2d(
    gx: &Grid1d,
    gy: &Grid1d,
    potential: &dyn Fn(f64, f64) -> f64,
    psi0: &[Complex64],
    t_end: f64,
    n_steps: usize,
    store_every: usize,
) -> Field2d {
    use crate::grid::GridKind;
    assert_eq!(gx.kind, GridKind::Periodic);
    assert_eq!(gy.kind, GridKind::Periodic);
    assert!(gx.n.is_power_of_two() && gy.n.is_power_of_two());
    assert_eq!(psi0.len(), gx.n * gy.n);
    assert!(n_steps > 0 && t_end > 0.0 && store_every > 0);

    let dt = t_end / n_steps as f64;
    let plan = Fft2Plan::new(gx.n, gy.n);
    let xs = gx.points();
    let ys = gy.points();
    let half_v: Vec<Complex64> = xs
        .iter()
        .flat_map(|&x| {
            ys.iter()
                .map(move |&y| Complex64::cis(-potential(x, y) * 0.5 * dt))
        })
        .collect();
    let kxs = fft_freq(gx.n, gx.length());
    let kys = fft_freq(gy.n, gy.length());
    let kinetic: Vec<Complex64> = kxs
        .iter()
        .flat_map(|&kx| {
            kys.iter()
                .map(move |&ky| Complex64::cis(-0.5 * (kx * kx + ky * ky) * dt))
        })
        .collect();

    let mut psi = psi0.to_vec();
    let mut times = vec![0.0];
    let mut data = vec![psi.clone()];
    for step in 1..=n_steps {
        for (p, v) in psi.iter_mut().zip(&half_v) {
            *p *= *v;
        }
        plan.forward(&mut psi);
        for (p, k) in psi.iter_mut().zip(&kinetic) {
            *p *= *k;
        }
        plan.inverse(&mut psi);
        for (p, v) in psi.iter_mut().zip(&half_v) {
            *p *= *v;
        }
        if step % store_every == 0 || step == n_steps {
            times.push(step as f64 * dt);
            data.push(psi.clone());
        }
    }
    Field2d {
        gx: *gx,
        gy: *gy,
        times,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_2d(gx: &Grid1d, gy: &Grid1d, sigma: f64, x0: f64, y0: f64) -> Vec<Complex64> {
        // ψ = (2πσ²)^{-1/2} exp(−r²/(4σ²)) so that ∫∫|ψ|² = 1.
        let norm = 1.0 / (2.0 * std::f64::consts::PI * sigma * sigma).sqrt();
        let xs = gx.points();
        let ys = gy.points();
        xs.iter()
            .flat_map(|&x| {
                ys.iter()
                    .map(move |&y| {
                        let r2 = (x - x0).powi(2) + (y - y0).powi(2);
                        Complex64::new(norm * (-r2 / (4.0 * sigma * sigma)).exp(), 0.0)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn norm_is_conserved() {
        let gx = Grid1d::periodic(-6.0, 6.0, 64);
        let gy = Grid1d::periodic(-6.0, 6.0, 64);
        let psi0 = gaussian_2d(&gx, &gy, 0.6, 0.0, 0.0);
        let f = split_step_evolve_2d(&gx, &gy, &|_, _| 0.0, &psi0, 0.8, 200, 50);
        let n0 = f.norm_at(0);
        assert!((n0 - 1.0).abs() < 1e-6, "initial norm {n0}");
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-10 * n0);
        }
    }

    #[test]
    fn free_evolution_is_separable() {
        // A product Gaussian stays a product under free evolution; compare
        // the 2D solver with the tensor product of two 1D solutions.
        use crate::split_step::split_step_evolve;
        use crate::split_step::Nonlinearity;
        let g1 = Grid1d::periodic(-8.0, 8.0, 64);
        let sigma = 0.7;
        let norm1 = 1.0 / (2.0 * std::f64::consts::PI * sigma * sigma).powf(0.25);
        let psi1: Vec<Complex64> = g1
            .points()
            .iter()
            .map(|&x| Complex64::new(norm1 * (-x * x / (4.0 * sigma * sigma)).exp(), 0.0))
            .collect();
        let t = 0.6;
        let f1 = split_step_evolve(&g1, &|_| 0.0, Nonlinearity::None, &psi1, t, 300, 300);
        let last1 = f1.slice(f1.n_slices() - 1);

        let psi2d: Vec<Complex64> = psi1
            .iter()
            .flat_map(|&a| psi1.iter().map(move |&b| a * b))
            .collect();
        let f2 = split_step_evolve_2d(&g1, &g1, &|_, _| 0.0, &psi2d, t, 300, 300);
        let last2 = f2.slice(f2.n_slices() - 1);
        for i in 0..64 {
            for j in 0..64 {
                let want = last1[i] * last1[j];
                let got = last2[i * 64 + j];
                assert!(
                    (got - want).abs() < 1e-10,
                    "({i},{j}): {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn harmonic_2d_coherent_center_orbits() {
        // Displaced ground state in an isotropic trap: ⟨x⟩(t) = x₀cos(ωt).
        let omega = 1.5f64;
        let gx = Grid1d::periodic(-8.0, 8.0, 64);
        let gy = Grid1d::periodic(-8.0, 8.0, 64);
        let sigma = (1.0 / (2.0 * omega)).sqrt();
        let psi0 = gaussian_2d(&gx, &gy, sigma, 1.0, 0.0);
        let t_end = std::f64::consts::PI / omega; // half a period
        let f = split_step_evolve_2d(
            &gx,
            &gy,
            &|x, y| 0.5 * omega * omega * (x * x + y * y),
            &psi0,
            t_end,
            800,
            800,
        );
        let last = f.slice(f.n_slices() - 1);
        let xs = gx.points();
        let ys = gy.points();
        let mut mx = 0.0;
        let mut total = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            for j in 0..ys.len() {
                let d = last[i * ys.len() + j].norm_sqr();
                mx += x * d;
                total += d;
            }
        }
        mx /= total;
        assert!((mx + 1.0).abs() < 1e-2, "⟨x⟩ at half period: {mx}");
    }

    #[test]
    fn sample_interpolates_smoothly() {
        let gx = Grid1d::periodic(-4.0, 4.0, 32);
        let gy = Grid1d::periodic(-4.0, 4.0, 32);
        let psi0 = gaussian_2d(&gx, &gy, 0.8, 0.0, 0.0);
        let f = split_step_evolve_2d(&gx, &gy, &|_, _| 0.0, &psi0, 0.4, 40, 10);
        let a = f.sample(0.1, -0.2, 0.2);
        assert!(a.abs() > 0.01 && a.abs() < 1.0);
        // on-grid sample equals stored value
        let got = f.sample(gx.points()[5], gy.points()[7], 0.0);
        let want = f.slice(0)[5 * 32 + 7];
        assert!((got - want).abs() < 1e-12);
    }
}
