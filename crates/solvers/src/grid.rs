//! 1D spatial grids with boundary-aware spacing and quadrature.

/// Boundary handling of a [`Grid1d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridKind {
    /// `n` points `x0 + i·Δx`, `Δx = L/n`; `x1` identified with `x0`.
    Periodic,
    /// `n` points including both endpoints, `Δx = L/(n−1)`; the
    /// wavefunction vanishes at (and beyond) the endpoints.
    Dirichlet,
}

/// A uniform 1D grid on `[x0, x1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid1d {
    /// Left edge.
    pub x0: f64,
    /// Right edge.
    pub x1: f64,
    /// Number of stored points.
    pub n: usize,
    /// Boundary handling.
    pub kind: GridKind,
}

impl Grid1d {
    /// Periodic grid with `n` points.
    ///
    /// # Panics
    /// Panics for `n < 2` or an inverted interval.
    pub fn periodic(x0: f64, x1: f64, n: usize) -> Self {
        assert!(x1 > x0 && n >= 2);
        Grid1d {
            x0,
            x1,
            n,
            kind: GridKind::Periodic,
        }
    }

    /// Dirichlet grid with `n` points including endpoints.
    ///
    /// # Panics
    /// Panics for `n < 3` or an inverted interval.
    pub fn dirichlet(x0: f64, x1: f64, n: usize) -> Self {
        assert!(x1 > x0 && n >= 3);
        Grid1d {
            x0,
            x1,
            n,
            kind: GridKind::Dirichlet,
        }
    }

    /// Domain length.
    pub fn length(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Grid spacing.
    pub fn dx(&self) -> f64 {
        match self.kind {
            GridKind::Periodic => self.length() / self.n as f64,
            GridKind::Dirichlet => self.length() / (self.n - 1) as f64,
        }
    }

    /// The stored abscissae.
    pub fn points(&self) -> Vec<f64> {
        let dx = self.dx();
        (0..self.n).map(|i| self.x0 + dx * i as f64).collect()
    }

    /// Quadrature of samples on this grid: rectangle rule (exact for
    /// periodic functions) or trapezoid (Dirichlet).
    ///
    /// # Panics
    /// Panics when `f.len() != n`.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.n, "sample count vs grid");
        let dx = self.dx();
        match self.kind {
            GridKind::Periodic => dx * f.iter().sum::<f64>(),
            GridKind::Dirichlet => {
                let inner: f64 = f[1..self.n - 1].iter().sum();
                dx * (0.5 * (f[0] + f[self.n - 1]) + inner)
            }
        }
    }

    /// Index pair and weight for linear interpolation at `x` (periodic
    /// wraps; Dirichlet clamps).
    pub fn locate(&self, x: f64) -> (usize, usize, f64) {
        let dx = self.dx();
        match self.kind {
            GridKind::Periodic => {
                let l = self.length();
                let mut u = (x - self.x0).rem_euclid(l) / dx;
                if u >= self.n as f64 {
                    u = 0.0;
                }
                let i = u.floor() as usize % self.n;
                let frac = u - u.floor();
                ((i) % self.n, (i + 1) % self.n, frac)
            }
            GridKind::Dirichlet => {
                let u = ((x - self.x0) / dx).clamp(0.0, (self.n - 1) as f64);
                let i = (u.floor() as usize).min(self.n - 2);
                (i, i + 1, u - i as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_spacing_excludes_right_edge() {
        let g = Grid1d::periodic(-1.0, 1.0, 4);
        assert_eq!(g.points(), vec![-1.0, -0.5, 0.0, 0.5]);
        assert!((g.dx() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn dirichlet_includes_both_edges() {
        let g = Grid1d::dirichlet(0.0, 1.0, 5);
        assert_eq!(g.points(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn quadrature_is_exact_for_constants() {
        let gp = Grid1d::periodic(0.0, 3.0, 7);
        assert!((gp.integrate(&[2.0; 7]) - 6.0).abs() < 1e-12);
        let gd = Grid1d::dirichlet(0.0, 3.0, 7);
        assert!((gd.integrate(&[2.0; 7]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_quadrature_is_spectrally_accurate_for_smooth_periodic() {
        // ∫₀^{2π} sin²x dx = π; rectangle rule on a periodic grid nails it.
        let n = 32;
        let g = Grid1d::periodic(0.0, 2.0 * std::f64::consts::PI, n);
        let f: Vec<f64> = g.points().iter().map(|x| x.sin().powi(2)).collect();
        assert!((g.integrate(&f) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn locate_periodic_wraps() {
        let g = Grid1d::periodic(0.0, 1.0, 4);
        let (i, j, w) = g.locate(0.95); // between 0.75 (i=3) and wrap to 0
        assert_eq!((i, j), (3, 0));
        assert!((w - 0.8).abs() < 1e-12);
        let (i2, j2, _w2) = g.locate(1.1); // wraps to 0.1
        assert_eq!((i2, j2), (0, 1));
    }

    #[test]
    fn locate_dirichlet_clamps() {
        let g = Grid1d::dirichlet(0.0, 1.0, 5);
        let (i, j, w) = g.locate(2.0);
        assert_eq!((i, j), (3, 4));
        assert!((w - 1.0).abs() < 1e-12);
    }
}
