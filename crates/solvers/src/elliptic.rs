//! Finite-difference solution of the 2D Helmholtz boundary-value problem
//! `u_xx + u_yy + k²u = f` with homogeneous Dirichlet boundaries, via the
//! 5-point Laplacian and a dense LU solve.
//!
//! The grid is deliberately coarse (the system is solved densely), which
//! is exactly what a cross-check wants: an *independent* discretization of
//! the same operator, not a second copy of the reference.

use qpinn_linalg::dense::{solve_dense, Dense};

/// Solution of a Helmholtz Dirichlet problem on a tensor grid.
#[derive(Clone, Debug)]
pub struct HelmholtzFd {
    /// x nodes (including boundaries).
    pub xs: Vec<f64>,
    /// y nodes (including boundaries).
    pub ys: Vec<f64>,
    /// `u[i][j]` at `(xs[i], ys[j])`; boundary rows/columns are zero.
    pub u: Vec<Vec<f64>>,
}

impl HelmholtzFd {
    /// Bilinear sample (clamped to the domain).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let f = |nodes: &[f64], v: f64| -> (usize, f64) {
            let h = nodes[1] - nodes[0];
            let s = ((v - nodes[0]) / h).clamp(0.0, (nodes.len() - 1) as f64);
            let i = (s.floor() as usize).min(nodes.len() - 2);
            (i, s - i as f64)
        };
        let (i, wx) = f(&self.xs, x);
        let (j, wy) = f(&self.ys, y);
        let lo = self.u[i][j] * (1.0 - wx) + self.u[i + 1][j] * wx;
        let hi = self.u[i][j + 1] * (1.0 - wx) + self.u[i + 1][j + 1] * wx;
        lo * (1.0 - wy) + hi * wy
    }
}

/// Solve `u_xx + u_yy + k²u = f` on `[x0,x1]×[y0,y1]`, `u = 0` on the
/// boundary, with `nx × ny` *intervals* (so `(nx−1)(ny−1)` interior
/// unknowns, solved densely).
///
/// # Panics
/// Panics for degenerate domains or fewer than 2 intervals per axis; the
/// dense solve panics if `k²` hits a discrete Dirichlet eigenvalue.
pub fn helmholtz_fd_solve(
    x: (f64, f64),
    y: (f64, f64),
    nx: usize,
    ny: usize,
    k: f64,
    f: &dyn Fn(f64, f64) -> f64,
) -> HelmholtzFd {
    assert!(x.1 > x.0 && y.1 > y.0 && nx >= 2 && ny >= 2);
    let dx = (x.1 - x.0) / nx as f64;
    let dy = (y.1 - y.0) / ny as f64;
    let xs: Vec<f64> = (0..=nx).map(|i| x.0 + dx * i as f64).collect();
    let ys: Vec<f64> = (0..=ny).map(|j| y.0 + dy * j as f64).collect();

    // Interior unknown index: (i, j) with i ∈ 1..nx, j ∈ 1..ny.
    let (mx, my) = (nx - 1, ny - 1);
    let n = mx * my;
    let idx = |i: usize, j: usize| (i - 1) * my + (j - 1);
    let mut a = Dense::zeros(n);
    let mut b = vec![0.0; n];
    let (cx, cy) = (1.0 / (dx * dx), 1.0 / (dy * dy));
    for i in 1..nx {
        for j in 1..ny {
            let r = idx(i, j);
            a.set(r, r, -2.0 * cx - 2.0 * cy + k * k);
            if i > 1 {
                a.set(r, idx(i - 1, j), cx);
            }
            if i < nx - 1 {
                a.set(r, idx(i + 1, j), cx);
            }
            if j > 1 {
                a.set(r, idx(i, j - 1), cy);
            }
            if j < ny - 1 {
                a.set(r, idx(i, j + 1), cy);
            }
            b[r] = f(xs[i], ys[j]);
        }
    }
    let sol = solve_dense(&a, &b);
    let mut u = vec![vec![0.0; ny + 1]; nx + 1];
    for i in 1..nx {
        for j in 1..ny {
            u[i][j] = sol[idx(i, j)];
        }
    }
    HelmholtzFd { xs, ys, u }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn recovers_manufactured_sine_solution() {
        // u* = sin(πx) sin(2πy) ⇒ f = (k² − π²(1 + 4)) u*.
        let k = 1.0;
        let c = k * k - PI * PI * 5.0;
        let f = move |x: f64, y: f64| c * (PI * x).sin() * (2.0 * PI * y).sin();
        let sol = helmholtz_fd_solve((0.0, 1.0), (0.0, 1.0), 28, 28, k, &f);
        for &(x, y) in &[(0.25, 0.15), (0.5, 0.4), (0.8, 0.7)] {
            let want = (PI * x).sin() * (2.0 * PI * y).sin();
            let got = sol.sample(x, y);
            assert!((got - want).abs() < 2e-2, "at ({x},{y}): {got} vs {want}");
        }
    }

    #[test]
    fn boundary_is_exactly_zero() {
        let sol = helmholtz_fd_solve((0.0, 1.0), (0.0, 1.0), 8, 8, 0.5, &|_, _| 1.0);
        for i in 0..sol.xs.len() {
            assert_eq!(sol.u[i][0], 0.0);
            assert_eq!(sol.u[i][sol.ys.len() - 1], 0.0);
        }
        for j in 0..sol.ys.len() {
            assert_eq!(sol.u[0][j], 0.0);
            assert_eq!(sol.u[sol.xs.len() - 1][j], 0.0);
        }
    }
}
