//! Physical observables of wavefunction samples: norm, energy, position
//! moments — used by the conservation diagnostics (experiment F4).

use crate::grid::{Grid1d, GridKind};
use qpinn_dual::Complex64;

/// `∫ |ψ|² dx`.
pub fn norm(grid: &Grid1d, psi: &[Complex64]) -> f64 {
    let dens: Vec<f64> = psi.iter().map(|c| c.norm_sqr()).collect();
    grid.integrate(&dens)
}

/// `⟨x⟩ = ∫ x|ψ|² dx / ∫|ψ|² dx`.
pub fn position_mean(grid: &Grid1d, psi: &[Complex64]) -> f64 {
    let xs = grid.points();
    let dens: Vec<f64> = psi.iter().map(|c| c.norm_sqr()).collect();
    let weighted: Vec<f64> = xs.iter().zip(&dens).map(|(x, d)| x * d).collect();
    grid.integrate(&weighted) / grid.integrate(&dens)
}

/// Total energy `⟨ψ|H|ψ⟩ = ∫ (½|ψ′|² + V|ψ|²) dx` with a central-difference
/// derivative (one-sided at Dirichlet edges, wrapped at periodic ones).
pub fn energy(grid: &Grid1d, potential: &dyn Fn(f64) -> f64, psi: &[Complex64]) -> f64 {
    let n = grid.n;
    let dx = grid.dx();
    let xs = grid.points();
    let deriv = |i: usize| -> Complex64 {
        match grid.kind {
            GridKind::Periodic => {
                let prev = psi[(i + n - 1) % n];
                let next = psi[(i + 1) % n];
                (next - prev).scale(0.5 / dx)
            }
            GridKind::Dirichlet => {
                if i == 0 {
                    (psi[1] - psi[0]).scale(1.0 / dx)
                } else if i == n - 1 {
                    (psi[n - 1] - psi[n - 2]).scale(1.0 / dx)
                } else {
                    (psi[i + 1] - psi[i - 1]).scale(0.5 / dx)
                }
            }
        }
    };
    let integrand: Vec<f64> = (0..n)
        .map(|i| 0.5 * deriv(i).norm_sqr() + potential(xs[i]) * psi[i].norm_sqr())
        .collect();
    grid.integrate(&integrand)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_box_state() {
        let grid = Grid1d::periodic(0.0, 2.0, 64);
        let psi = vec![Complex64::new(1.0 / 2f64.sqrt(), 0.0); 64];
        assert!((norm(&grid, &psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn position_mean_of_displaced_gaussian() {
        let grid = Grid1d::periodic(-10.0, 10.0, 512);
        let x0 = 1.3;
        let psi: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::new((-0.5 * (x - x0) * (x - x0)).exp(), 0.0))
            .collect();
        assert!((position_mean(&grid, &psi) - x0).abs() < 1e-8);
    }

    #[test]
    fn plane_wave_kinetic_energy() {
        // E = k²/2 per unit norm for e^{ikx}.
        let l = 2.0 * std::f64::consts::PI;
        let grid = Grid1d::periodic(0.0, l, 256);
        let k = 3.0;
        let psi: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::cis(k * x).scale(1.0 / l.sqrt()))
            .collect();
        let e = energy(&grid, &|_| 0.0, &psi);
        // central differences underestimate: sin(kΔx)/Δx instead of k
        let dx = grid.dx();
        let k_eff = (k * dx).sin() / dx;
        assert!((e - 0.5 * k_eff * k_eff).abs() < 1e-10, "e={e}");
    }

    #[test]
    fn harmonic_ground_state_energy() {
        let omega = 1.0;
        let grid = Grid1d::dirichlet(-10.0, 10.0, 2001);
        let c = (omega / std::f64::consts::PI).powf(0.25);
        let psi: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::new(c * (-0.5 * omega * x * x).exp(), 0.0))
            .collect();
        let e = energy(&grid, &|x| 0.5 * omega * omega * x * x, &psi);
        assert!((e - 0.5).abs() < 1e-4, "e = {e}");
    }
}
