//! Finite-difference bound states of the 1D Hamiltonian
//! `H = −½∂²/∂x² + V(x)` with Dirichlet boundaries.
//!
//! The 3-point stencil turns `H` into a symmetric tridiagonal matrix over
//! the interior points; eigenvalues come from Sturm bisection, vectors from
//! inverse iteration, and the continuum normalization `∫ψ² dx = 1` is
//! applied afterwards.

use crate::grid::Grid1d;
use qpinn_linalg::{symmetric_tridiagonal_eigen, SymTridiag};

/// One computed bound state.
#[derive(Clone, Debug)]
pub struct BoundState {
    /// Energy eigenvalue.
    pub energy: f64,
    /// Wavefunction samples on the full grid (zero at the endpoints),
    /// normalized so `∫ψ² dx = 1` with positive leading lobe.
    pub psi: Vec<f64>,
}

/// The lowest `k` bound states of `−½∂²/∂x² + V` on a Dirichlet grid.
///
/// # Panics
/// Panics for non-Dirichlet grids or `k` exceeding the interior dimension.
pub fn bound_states(grid: &Grid1d, potential: &dyn Fn(f64) -> f64, k: usize) -> Vec<BoundState> {
    assert_eq!(
        grid.kind,
        crate::grid::GridKind::Dirichlet,
        "bound states need Dirichlet boundaries"
    );
    let n_interior = grid.n - 2;
    assert!(k <= n_interior, "requested more states than grid supports");
    let dx = grid.dx();
    let xs = grid.points();
    let m = SymTridiag {
        d: xs[1..grid.n - 1]
            .iter()
            .map(|&x| 1.0 / (dx * dx) + potential(x))
            .collect(),
        e: vec![-0.5 / (dx * dx); n_interior - 1],
    };
    symmetric_tridiagonal_eigen(&m, k)
        .into_iter()
        .map(|(energy, v)| {
            let mut psi = vec![0.0; grid.n];
            psi[1..grid.n - 1].copy_from_slice(&v);
            // continuum normalization
            let dens: Vec<f64> = psi.iter().map(|p| p * p).collect();
            let norm = grid.integrate(&dens).sqrt();
            for p in psi.iter_mut() {
                *p /= norm;
            }
            // sign convention: first significant lobe positive
            if let Some(first) = psi.iter().find(|p| p.abs() > 1e-8) {
                if *first < 0.0 {
                    for p in psi.iter_mut() {
                        *p = -*p;
                    }
                }
            }
            BoundState { energy, psi }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_well_levels() {
        // V = 0 on [0, L], Dirichlet: E_n = n²π²/(2L²), n = 1, 2, …
        let l = 1.0;
        let grid = Grid1d::dirichlet(0.0, l, 401);
        let states = bound_states(&grid, &|_| 0.0, 4);
        for (j, s) in states.iter().enumerate() {
            let n = (j + 1) as f64;
            let want = n * n * std::f64::consts::PI.powi(2) / (2.0 * l * l);
            assert!(
                (s.energy - want).abs() < 2e-3 * want,
                "n={n}: {} vs {want}",
                s.energy
            );
        }
    }

    #[test]
    fn harmonic_oscillator_levels() {
        // E_n = ω(n + ½).
        let omega = 1.0;
        let grid = Grid1d::dirichlet(-10.0, 10.0, 801);
        let states = bound_states(&grid, &|x| 0.5 * omega * omega * x * x, 5);
        for (n, s) in states.iter().enumerate() {
            let want = omega * (n as f64 + 0.5);
            assert!(
                (s.energy - want).abs() < 1e-3,
                "n={n}: {} vs {want}",
                s.energy
            );
        }
    }

    #[test]
    fn ground_state_matches_gaussian() {
        let omega = 1.0;
        let grid = Grid1d::dirichlet(-10.0, 10.0, 801);
        let s = &bound_states(&grid, &|x| 0.5 * omega * omega * x * x, 1)[0];
        let c = (omega / std::f64::consts::PI).powf(0.25);
        for (x, p) in grid.points().iter().zip(&s.psi) {
            let want = c * (-0.5 * omega * x * x).exp();
            assert!((p - want).abs() < 1e-4, "at {x}: {p} vs {want}");
        }
    }

    #[test]
    fn states_are_normalized_and_orthogonal() {
        let grid = Grid1d::dirichlet(-6.0, 6.0, 301);
        let states = bound_states(&grid, &|x| 0.5 * x * x, 3);
        for (i, a) in states.iter().enumerate() {
            let dens: Vec<f64> = a.psi.iter().map(|p| p * p).collect();
            assert!((grid.integrate(&dens) - 1.0).abs() < 1e-10);
            for b in states.iter().take(i) {
                let cross: Vec<f64> = a.psi.iter().zip(&b.psi).map(|(x, y)| x * y).collect();
                assert!(grid.integrate(&cross).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn double_well_has_near_degenerate_doublet() {
        // V = (x² − a²)²/(4b): the two lowest states split by tunneling and
        // are far closer to each other than to the next level.
        let grid = Grid1d::dirichlet(-6.0, 6.0, 601);
        let v = |x: f64| 2.0 * (x * x - 2.25).powi(2);
        let states = bound_states(&grid, &v, 3);
        let gap01 = states[1].energy - states[0].energy;
        let gap12 = states[2].energy - states[1].energy;
        assert!(gap01 > 0.0 && gap12 > 0.0);
        assert!(gap01 < 0.2 * gap12, "doublet {gap01} vs next gap {gap12}");
    }
}
