//! Space-time wavefunction storage with bilinear sampling — the interface
//! between the reference solvers and the PINN error metrics.

use crate::grid::Grid1d;
use qpinn_dual::Complex64;

/// A complex field `ψ(x, t)` stored on a uniform space grid × a list of
/// time slices.
#[derive(Clone, Debug)]
pub struct Field1d {
    grid: Grid1d,
    times: Vec<f64>,
    /// `data[k][i] = ψ(x_i, t_k)`.
    data: Vec<Vec<Complex64>>,
}

impl Field1d {
    /// Assemble from slices.
    ///
    /// # Panics
    /// Panics when slice lengths disagree with the grid or times are not
    /// strictly increasing.
    pub fn new(grid: Grid1d, times: Vec<f64>, data: Vec<Vec<Complex64>>) -> Self {
        assert_eq!(times.len(), data.len(), "time/slice arity");
        assert!(!times.is_empty(), "empty field");
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "times must be strictly increasing"
        );
        for s in &data {
            assert_eq!(s.len(), grid.n, "slice length vs grid");
        }
        Field1d { grid, times, data }
    }

    /// The spatial grid.
    pub fn grid(&self) -> &Grid1d {
        &self.grid
    }

    /// Stored time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The slice at time index `k`.
    pub fn slice(&self, k: usize) -> &[Complex64] {
        &self.data[k]
    }

    /// Number of stored slices.
    pub fn n_slices(&self) -> usize {
        self.data.len()
    }

    /// Bilinear interpolation of `ψ` at `(x, t)`; `t` is clamped to the
    /// stored range, `x` follows the grid's boundary convention.
    pub fn sample(&self, x: f64, t: f64) -> Complex64 {
        // temporal bracket
        let (kt0, kt1, wt) = if t <= self.times[0] {
            (0, 0, 0.0)
        } else if t >= *self.times.last().unwrap() {
            let k = self.times.len() - 1;
            (k, k, 0.0)
        } else {
            // binary search for the bracketing pair
            let mut lo = 0usize;
            let mut hi = self.times.len() - 1;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if self.times[mid] <= t {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let w = (t - self.times[lo]) / (self.times[hi] - self.times[lo]);
            (lo, hi, w)
        };
        let (i, j, wx) = self.grid.locate(x);
        let interp_x = |k: usize| -> Complex64 {
            let a = self.data[k][i];
            let b = self.data[k][j];
            a.scale(1.0 - wx) + b.scale(wx)
        };
        let a = interp_x(kt0);
        let b = interp_x(kt1);
        a.scale(1.0 - wt) + b.scale(wt)
    }

    /// `∫|ψ(·, t_k)|² dx` at stored slice `k`.
    pub fn norm_at(&self, k: usize) -> f64 {
        let dens: Vec<f64> = self.data[k].iter().map(|c| c.norm_sqr()).collect();
        self.grid.integrate(&dens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_field() -> Field1d {
        // ψ(x, t) = (x + t) + 0i on a Dirichlet grid: linear, so bilinear
        // interpolation is exact.
        let grid = Grid1d::dirichlet(0.0, 1.0, 5);
        let times = vec![0.0, 0.5, 1.0];
        let data = times
            .iter()
            .map(|&t| {
                grid.points()
                    .iter()
                    .map(|&x| Complex64::new(x + t, 0.0))
                    .collect()
            })
            .collect();
        Field1d::new(grid, times, data)
    }

    #[test]
    fn exact_on_linear_fields() {
        let f = toy_field();
        for &(x, t) in &[(0.1, 0.2), (0.6, 0.75), (0.95, 0.01)] {
            let s = f.sample(x, t);
            assert!((s.re - (x + t)).abs() < 1e-12, "at ({x},{t}): {}", s.re);
        }
    }

    #[test]
    fn clamps_time_out_of_range() {
        let f = toy_field();
        assert!((f.sample(0.5, -1.0).re - 0.5).abs() < 1e-12);
        assert!((f.sample(0.5, 9.0).re - 1.5).abs() < 1e-12);
    }

    #[test]
    fn norm_of_uniform_density() {
        let grid = Grid1d::periodic(0.0, 2.0, 8);
        let data = vec![vec![Complex64::new(0.0, 3.0); 8]];
        let f = Field1d::new(grid, vec![0.0], data);
        assert!((f.norm_at(0) - 18.0).abs() < 1e-12); // |3i|²·length = 9·2
    }

    #[test]
    #[should_panic]
    fn nonmonotone_times_rejected() {
        let grid = Grid1d::periodic(0.0, 1.0, 4);
        let s = vec![Complex64::zero(); 4];
        let _ = Field1d::new(grid, vec![0.0, 0.0], vec![s.clone(), s]);
    }
}
