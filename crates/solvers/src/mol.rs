//! Generic method-of-lines (MOL) integration for real-valued, possibly
//! coupled, 1D evolution equations, plus an independent Strang-split
//! spectral integrator for reaction-diffusion systems.
//!
//! The MOL stepper discretizes space on a [`Grid1d`] and advances the
//! resulting ODE system with classic fixed-step RK4. It is deliberately
//! generic: the caller supplies the semi-discrete right-hand side as a
//! closure over the flat state vector, so one stepper serves
//! convection-diffusion, wave/Klein-Gordon (as first-order systems), and
//! coupled Turing systems alike. Results are stored in a [`FieldR1d`] —
//! the real, multi-component sibling of [`crate::Field1d`].

use crate::grid::{Grid1d, GridKind};
use qpinn_fft::{fft_freq, FftPlan};
use qpinn_dual::Complex64;

/// A real-valued space-time field with `n_comp` components, sampled on a
/// uniform spatial grid at a set of stored time slices.
///
/// Slice layout is component-major: entry `c * nx + i` of a slice holds
/// component `c` at grid node `i`.
#[derive(Clone, Debug)]
pub struct FieldR1d {
    grid: Grid1d,
    times: Vec<f64>,
    n_comp: usize,
    data: Vec<Vec<f64>>,
}

impl FieldR1d {
    /// Wrap raw slices. Each slice must hold `n_comp * grid.n` values.
    ///
    /// # Panics
    /// Panics on shape mismatch or an empty/unsorted time list.
    pub fn new(grid: Grid1d, times: Vec<f64>, n_comp: usize, data: Vec<Vec<f64>>) -> Self {
        assert_eq!(times.len(), data.len());
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[1] > w[0]), "times must increase");
        for s in &data {
            assert_eq!(s.len(), n_comp * grid.n);
        }
        FieldR1d {
            grid,
            times,
            n_comp,
            data,
        }
    }

    /// Number of components.
    pub fn n_comp(&self) -> usize {
        self.n_comp
    }

    /// Stored time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The spatial grid.
    pub fn grid(&self) -> &Grid1d {
        &self.grid
    }

    /// Number of stored slices.
    pub fn n_slices(&self) -> usize {
        self.data.len()
    }

    /// Raw slice `k` (component-major).
    pub fn slice(&self, k: usize) -> &[f64] {
        &self.data[k]
    }

    /// Value of component `c` at node `i` of slice `k`.
    pub fn value(&self, k: usize, c: usize, i: usize) -> f64 {
        self.data[k][c * self.grid.n + i]
    }

    /// Bilinear sample of all components at `(x, t)`; `t` is clamped to
    /// the stored range, `x` wraps on periodic grids and clamps on
    /// Dirichlet grids.
    pub fn sample(&self, x: f64, t: f64) -> Vec<f64> {
        let (k0, k1, wt) = locate_time(&self.times, t);
        let (i0, i1, wx) = self.locate_x(x);
        (0..self.n_comp)
            .map(|c| {
                let f = |k: usize, i: usize| self.value(k, c, i);
                let lo = f(k0, i0) * (1.0 - wx) + f(k0, i1) * wx;
                let hi = f(k1, i0) * (1.0 - wx) + f(k1, i1) * wx;
                lo * (1.0 - wt) + hi * wt
            })
            .collect()
    }

    fn locate_x(&self, x: f64) -> (usize, usize, f64) {
        let n = self.grid.n;
        let dx = self.grid.dx();
        match self.grid.kind {
            GridKind::Periodic => {
                let len = self.grid.length();
                let mut u = (x - self.grid.x0) / len;
                u -= u.floor();
                let s = u * n as f64;
                let i0 = (s.floor() as usize).min(n - 1);
                (i0, (i0 + 1) % n, s - i0 as f64)
            }
            GridKind::Dirichlet => {
                let s = ((x - self.grid.x0) / dx).clamp(0.0, (n - 1) as f64);
                let i0 = (s.floor() as usize).min(n - 2);
                (i0, i0 + 1, s - i0 as f64)
            }
        }
    }
}

fn locate_time(times: &[f64], t: f64) -> (usize, usize, f64) {
    if t <= times[0] {
        return (0, 0, 0.0);
    }
    let last = times.len() - 1;
    if t >= times[last] {
        return (last, last, 0.0);
    }
    let k = times.partition_point(|&s| s <= t) - 1;
    let w = (t - times[k]) / (times[k + 1] - times[k]);
    (k, k + 1, w)
}

/// Second-order periodic FD Laplacian of one component into `out`.
pub fn laplacian_periodic(u: &[f64], dx: f64, out: &mut [f64]) {
    let n = u.len();
    let inv = 1.0 / (dx * dx);
    for i in 0..n {
        let l = u[(i + n - 1) % n];
        let r = u[(i + 1) % n];
        out[i] = (l + r - 2.0 * u[i]) * inv;
    }
}

/// Second-order periodic central first derivative of one component.
pub fn gradient_periodic(u: &[f64], dx: f64, out: &mut [f64]) {
    let n = u.len();
    let inv = 0.5 / dx;
    for i in 0..n {
        let l = u[(i + n - 1) % n];
        let r = u[(i + 1) % n];
        out[i] = (r - l) * inv;
    }
}

/// Integrate `y' = rhs(t, y)` with classic RK4, storing slice 0, every
/// `store_every`-th step, and the final step.
///
/// `y0` is the flat component-major initial state (`n_comp * grid.n`
/// values); `rhs` writes the time derivative of the full state.
///
/// # Panics
/// Panics on degenerate arguments or a state length mismatch.
pub fn mol_rk4<F>(
    grid: &Grid1d,
    n_comp: usize,
    rhs: &F,
    y0: &[f64],
    t_end: f64,
    n_steps: usize,
    store_every: usize,
) -> FieldR1d
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    assert_eq!(y0.len(), n_comp * grid.n);
    assert!(n_steps > 0 && t_end > 0.0 && store_every > 0);
    let dt = t_end / n_steps as f64;
    let m = y0.len();
    let mut y = y0.to_vec();
    let (mut k1, mut k2, mut k3, mut k4) = (vec![0.0; m], vec![0.0; m], vec![0.0; m], vec![0.0; m]);
    let mut tmp = vec![0.0; m];

    let mut times = vec![0.0];
    let mut data = vec![y.clone()];
    for step in 1..=n_steps {
        let t = (step - 1) as f64 * dt;
        rhs(t, &y, &mut k1);
        for i in 0..m {
            tmp[i] = y[i] + 0.5 * dt * k1[i];
        }
        rhs(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..m {
            tmp[i] = y[i] + 0.5 * dt * k2[i];
        }
        rhs(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..m {
            tmp[i] = y[i] + dt * k3[i];
        }
        rhs(t + dt, &tmp, &mut k4);
        for i in 0..m {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        if step % store_every == 0 || step == n_steps {
            times.push(step as f64 * dt);
            data.push(y.clone());
        }
    }
    FieldR1d::new(*grid, times, n_comp, data)
}

/// Strang-split spectral integrator for periodic reaction-diffusion
/// systems `∂_t u_c = D_c ∂_xx u_c + R_c(u)`.
///
/// Diffusion is applied exactly in Fourier space (`û_c ← e^{−D_c k² Δt} û_c`)
/// and the pointwise reaction in two midpoint-rule half-steps — a spatial
/// and temporal discretization entirely different from [`mol_rk4`]'s FD
/// Laplacian + RK4, which makes the pair a genuine cross-check.
///
/// # Panics
/// Panics for non-periodic or non-power-of-two grids, or a shape mismatch.
pub fn reaction_diffusion_spectral<R>(
    grid: &Grid1d,
    diffusion: &[f64],
    react: &R,
    y0: &[f64],
    t_end: f64,
    n_steps: usize,
    store_every: usize,
) -> FieldR1d
where
    R: Fn(&[f64], &mut [f64]),
{
    assert_eq!(grid.kind, GridKind::Periodic, "spectral step needs periodicity");
    assert!(grid.n.is_power_of_two(), "grid size must be 2^k for the FFT");
    let n_comp = diffusion.len();
    assert_eq!(y0.len(), n_comp * grid.n);
    assert!(n_steps > 0 && t_end > 0.0 && store_every > 0);

    let n = grid.n;
    let dt = t_end / n_steps as f64;
    let plan = FftPlan::new(n);
    let decay: Vec<Vec<f64>> = diffusion
        .iter()
        .map(|&d| {
            fft_freq(n, grid.length())
                .iter()
                .map(|&k| (-d * k * k * dt).exp())
                .collect()
        })
        .collect();

    let mut y = y0.to_vec();
    let mut point = vec![0.0; n_comp];
    let mut mid = vec![0.0; n_comp];
    let mut dy = vec![0.0; n_comp];
    let mut half_react = |y: &mut [f64]| {
        // midpoint rule over Δt/2, applied pointwise
        for i in 0..n {
            for c in 0..n_comp {
                point[c] = y[c * n + i];
            }
            react(&point, &mut dy);
            for c in 0..n_comp {
                mid[c] = point[c] + 0.25 * dt * dy[c];
            }
            react(&mid, &mut dy);
            for c in 0..n_comp {
                y[c * n + i] = point[c] + 0.5 * dt * dy[c];
            }
        }
    };

    let mut times = vec![0.0];
    let mut data = vec![y.clone()];
    let mut buf: Vec<Complex64> = vec![Complex64::new(0.0, 0.0); n];
    for step in 1..=n_steps {
        half_react(&mut y);
        for c in 0..n_comp {
            for i in 0..n {
                buf[i] = Complex64::new(y[c * n + i], 0.0);
            }
            plan.forward(&mut buf);
            for (b, &d) in buf.iter_mut().zip(&decay[c]) {
                *b = *b * Complex64::new(d, 0.0);
            }
            plan.inverse(&mut buf);
            for i in 0..n {
                y[c * n + i] = buf[i].re;
            }
        }
        half_react(&mut y);
        if step % store_every == 0 || step == n_steps {
            times.push(step as f64 * dt);
            data.push(y.clone());
        }
    }
    FieldR1d::new(*grid, times, n_comp, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_heat_decay_matches_exact_rate() {
        // u_t = ν u_xx with u0 = sin(x) on [0, 2π] decays as e^{−νt}.
        let grid = Grid1d::periodic(0.0, 2.0 * std::f64::consts::PI, 128);
        let nu = 0.3;
        let y0: Vec<f64> = grid.points().iter().map(|&x| x.sin()).collect();
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            laplacian_periodic(y, grid.dx(), dy);
            for d in dy.iter_mut() {
                *d *= nu;
            }
        };
        let f = mol_rk4(&grid, 1, &rhs, &y0, 1.0, 400, 100);
        let got = f.sample(1.3, 1.0)[0];
        let want = (-nu * 1.0f64).exp() * 1.3f64.sin();
        assert!((got - want).abs() < 5e-4, "{got} vs {want}");
    }

    #[test]
    fn rk4_wave_system_preserves_standing_wave() {
        // u_tt = u_xx as the system (u, w = u_t); u = sin(x) cos(t).
        let grid = Grid1d::periodic(0.0, 2.0 * std::f64::consts::PI, 128);
        let n = grid.n;
        let mut y0 = vec![0.0; 2 * n];
        for (i, &x) in grid.points().iter().enumerate() {
            y0[i] = x.sin();
        }
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            let (u, w) = y.split_at(n);
            let (du, dw) = dy.split_at_mut(n);
            du.copy_from_slice(w);
            laplacian_periodic(u, grid.dx(), dw);
        };
        let f = mol_rk4(&grid, 2, &rhs, &y0, 2.0, 800, 200);
        for &x in &[0.5, 2.0, 4.4] {
            let got = f.sample(x, 2.0)[0];
            let want = x.sin() * 2.0f64.cos();
            assert!((got - want).abs() < 2e-3, "at {x}: {got} vs {want}");
        }
    }

    #[test]
    fn spectral_and_rk4_agree_on_coupled_reaction_diffusion() {
        // A toy coupled system with cross reaction, integrated both ways.
        let grid = Grid1d::periodic(0.0, 2.0 * std::f64::consts::PI, 64);
        let n = grid.n;
        let (du, dv) = (0.08, 0.04);
        let mut y0 = vec![0.0; 2 * n];
        for (i, &x) in grid.points().iter().enumerate() {
            y0[i] = 1.0 + 0.2 * x.sin();
            y0[n + i] = 0.3 + 0.1 * (2.0 * x).cos();
        }
        let react = |p: &[f64], out: &mut [f64]| {
            out[0] = -p[0] * p[1] * p[1] + 0.04 * (1.0 - p[0]);
            out[1] = p[0] * p[1] * p[1] - 0.1 * p[1];
        };
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            let (u, v) = y.split_at(n);
            let (ou, ov) = dy.split_at_mut(n);
            laplacian_periodic(u, grid.dx(), ou);
            laplacian_periodic(v, grid.dx(), ov);
            let mut p = [0.0; 2];
            let mut r = [0.0; 2];
            for i in 0..n {
                p[0] = u[i];
                p[1] = v[i];
                react(&p, &mut r);
                ou[i] = du * ou[i] + r[0];
                ov[i] = dv * ov[i] + r[1];
            }
        };
        let a = mol_rk4(&grid, 2, &rhs, &y0, 3.0, 600, 600);
        let b = reaction_diffusion_spectral(&grid, &[du, dv], &react, &y0, 3.0, 600, 600);
        for &x in &[0.7, 3.1, 5.5] {
            let pa = a.sample(x, 3.0);
            let pb = b.sample(x, 3.0);
            for c in 0..2 {
                assert!(
                    (pa[c] - pb[c]).abs() < 2e-3,
                    "comp {c} at {x}: {} vs {}",
                    pa[c],
                    pb[c]
                );
            }
        }
    }

    #[test]
    fn field_sampling_wraps_periodically_and_clamps_time() {
        let grid = Grid1d::periodic(0.0, 1.0, 8);
        let data = vec![(0..8).map(|i| i as f64).collect::<Vec<_>>()];
        let f = FieldR1d::new(grid, vec![0.0], 1, data);
        assert!((f.sample(0.0, 0.0)[0] - f.sample(1.0, 5.0)[0]).abs() < 1e-12);
        assert!((f.sample(-0.125, -3.0)[0] - 7.0).abs() < 1e-12);
    }
}
