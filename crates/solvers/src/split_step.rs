//! Strang-split spectral (split-step Fourier) propagation for periodic
//! Schrödinger problems, linear and cubic-nonlinear.
//!
//! One step of `i ψ_t = −½ψ_xx + V(x)ψ − g|ψ|²ψ`:
//!
//! 1. half potential/nonlinear kick `ψ ← e^{−i(V − g|ψ|²)Δt/2} ψ`,
//! 2. full kinetic step in Fourier space `ψ̂ ← e^{−ik²Δt/2} ψ̂`,
//! 3. second half kick.
//!
//! The scheme is second-order in Δt, exactly norm-preserving, and
//! spectrally accurate in space.

use crate::field::Field1d;
use crate::grid::{Grid1d, GridKind};
use qpinn_dual::Complex64;
use qpinn_fft::{fft_freq, FftPlan};

/// The nonlinear term of the equation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Nonlinearity {
    /// Linear Schrödinger (`g = 0`).
    None,
    /// Focusing/defocusing cubic term `−g|ψ|²ψ` on the Hamiltonian side
    /// (`g = 1` gives the standard focusing NLS `i h_t + ½h_xx + |h|²h = 0`).
    Cubic {
        /// Coupling strength.
        g: f64,
    },
}

/// Evolve `psi0` to `t_end` with `n_steps` Strang steps on a periodic grid
/// whose size is a power of two, storing every `store_every`-th slice.
///
/// # Panics
/// Panics for non-periodic grids, non-power-of-two sizes, or degenerate
/// arguments.
pub fn split_step_evolve(
    grid: &Grid1d,
    potential: &dyn Fn(f64) -> f64,
    nonlinearity: Nonlinearity,
    psi0: &[Complex64],
    t_end: f64,
    n_steps: usize,
    store_every: usize,
) -> Field1d {
    assert_eq!(grid.kind, GridKind::Periodic, "split-step needs periodicity");
    assert!(grid.n.is_power_of_two(), "grid size must be 2^k for the FFT");
    assert_eq!(psi0.len(), grid.n);
    assert!(n_steps > 0 && t_end > 0.0 && store_every > 0);

    let dt = t_end / n_steps as f64;
    let plan = FftPlan::new(grid.n);
    let vs: Vec<f64> = grid.points().iter().map(|&x| potential(x)).collect();
    let kinetic: Vec<Complex64> = fft_freq(grid.n, grid.length())
        .iter()
        .map(|&k| Complex64::cis(-0.5 * k * k * dt))
        .collect();

    let g = match nonlinearity {
        Nonlinearity::None => 0.0,
        Nonlinearity::Cubic { g } => g,
    };
    let half_kick = |psi: &mut [Complex64]| {
        for (p, &v) in psi.iter_mut().zip(&vs) {
            let veff = v - g * p.norm_sqr();
            *p *= Complex64::cis(-veff * 0.5 * dt);
        }
    };

    let mut psi = psi0.to_vec();
    let mut times = vec![0.0];
    let mut data = vec![psi.clone()];
    for step in 1..=n_steps {
        half_kick(&mut psi);
        plan.forward(&mut psi);
        for (p, k) in psi.iter_mut().zip(&kinetic) {
            *p *= *k;
        }
        plan.inverse(&mut psi);
        half_kick(&mut psi);
        if step % store_every == 0 || step == n_steps {
            times.push(step as f64 * dt);
            data.push(psi.clone());
        }
    }
    Field1d::new(*grid, times, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_plane_wave_is_exact() {
        // e^{ikx} evolves exactly as e^{i(kx − k²t/2)} under split-step
        // (the kinetic factor is exact for Fourier modes).
        let n = 64;
        let l = 2.0 * std::f64::consts::PI;
        let grid = Grid1d::periodic(0.0, l, n);
        let k = 4.0;
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| Complex64::cis(k * x)).collect();
        let t = 0.37;
        let f = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, t, 10, 10);
        let last = f.slice(f.n_slices() - 1);
        for (x, v) in grid.points().iter().zip(last) {
            let want = Complex64::cis(k * x - 0.5 * k * k * t);
            assert!((v.re - want.re).abs() < 1e-12 && (v.im - want.im).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_spreading_matches_analytic_width() {
        // Free Gaussian: σ(t)² = σ₀² (1 + (t/(2σ₀²))²).
        let grid = Grid1d::periodic(-12.0, 12.0, 256);
        let sigma0 = 0.8f64;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * sigma0 * sigma0).powf(0.25);
        let psi0: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::new(norm * (-x * x / (4.0 * sigma0 * sigma0)).exp(), 0.0))
            .collect();
        let t = 1.2;
        let f = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, t, 600, 600);
        let last = f.slice(f.n_slices() - 1);
        // measured variance of |ψ|²
        let xs = grid.points();
        let dens: Vec<f64> = last.iter().map(|c| c.norm_sqr()).collect();
        let total = grid.integrate(&dens);
        let mean: f64 = grid.integrate(
            &xs.iter().zip(&dens).map(|(x, d)| x * d).collect::<Vec<_>>(),
        ) / total;
        let var: f64 = grid.integrate(
            &xs.iter()
                .zip(&dens)
                .map(|(x, d)| (x - mean).powi(2) * d)
                .collect::<Vec<_>>(),
        ) / total;
        let want = sigma0 * sigma0 * (1.0 + (t / (2.0 * sigma0 * sigma0)).powi(2));
        assert!((var - want).abs() < 1e-3 * want, "var {var} vs {want}");
    }

    #[test]
    fn harmonic_coherent_state_oscillates_with_period() {
        // A displaced ground state in V = ½ω²x² returns to its initial
        // density after T = 2π/ω.
        let omega = 2.0;
        let grid = Grid1d::periodic(-10.0, 10.0, 256);
        let x0 = 1.5;
        let psi0: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| {
                Complex64::new(
                    (omega / std::f64::consts::PI).powf(0.25)
                        * (-0.5 * omega * (x - x0) * (x - x0)).exp(),
                    0.0,
                )
            })
            .collect();
        let t_end = 2.0 * std::f64::consts::PI / omega;
        let f = split_step_evolve(
            &grid,
            &|x| 0.5 * omega * omega * x * x,
            Nonlinearity::None,
            &psi0,
            t_end,
            2000,
            500,
        );
        // halfway through, the packet sits at −x₀; at the end, back at +x₀.
        let center = |k: usize| -> f64 {
            let dens: Vec<f64> = f.slice(k).iter().map(|c| c.norm_sqr()).collect();
            let total = grid.integrate(&dens);
            grid.integrate(
                &grid
                    .points()
                    .iter()
                    .zip(&dens)
                    .map(|(x, d)| x * d)
                    .collect::<Vec<_>>(),
            ) / total
        };
        let mid = center(2); // t = T/2
        let end = center(f.n_slices() - 1);
        assert!((mid + x0).abs() < 1e-3, "midpoint center {mid}");
        assert!((end - x0).abs() < 1e-3, "final center {end}");
    }

    #[test]
    fn nls_soliton_keeps_its_shape() {
        // q(x, t) = a·sech(a x)·e^{i a² t/2} solves i q_t + ½q_xx + |q|²q = 0.
        let a = 1.0;
        let grid = Grid1d::periodic(-20.0, 20.0, 256);
        let psi0: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::new(a / (a * x).cosh(), 0.0))
            .collect();
        let t_end = 1.0;
        let f = split_step_evolve(
            &grid,
            &|_| 0.0,
            Nonlinearity::Cubic { g: 1.0 },
            &psi0,
            t_end,
            2000,
            2000,
        );
        let last = f.slice(f.n_slices() - 1);
        for (x, v) in grid.points().iter().zip(last) {
            let want = Complex64::from_polar(a / (a * x).cosh(), 0.5 * a * a * t_end);
            assert!(
                (v.re - want.re).abs() < 2e-4 && (v.im - want.im).abs() < 2e-4,
                "at {x}: {v:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn norm_conservation_nonlinear() {
        let grid = Grid1d::periodic(-10.0, 10.0, 128);
        let psi0: Vec<Complex64> = grid
            .points()
            .iter()
            .map(|&x| Complex64::new(2.0 / x.cosh(), 0.0))
            .collect();
        let f = split_step_evolve(
            &grid,
            &|_| 0.0,
            Nonlinearity::Cubic { g: 1.0 },
            &psi0,
            0.5,
            500,
            100,
        );
        let n0 = f.norm_at(0);
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-9 * n0);
        }
    }
}
