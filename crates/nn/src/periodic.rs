//! Exact periodic coordinate embeddings (Dong & Ni 2021).
//!
//! A coordinate `x` on a periodic domain of length `L` is replaced by the
//! pair `(sin(2πx/L), cos(2πx/L))` before entering the network, which makes
//! the represented function *exactly* `L`-periodic — no boundary loss term
//! is needed. A learnable-period variant supports time coordinates whose
//! natural period is unknown a priori.

use crate::params::{GraphCtx, ParamId, ParamSet};
use qpinn_autodiff::jet::Jet;
use qpinn_tensor::Tensor;
use std::f64::consts::TAU;

/// Fixed-period sin/cos embedding of one coordinate.
#[derive(Clone, Copy, Debug)]
pub struct PeriodicEmbedding {
    /// Domain length `L`.
    pub length: f64,
}

impl PeriodicEmbedding {
    /// Embedding with period `length`.
    pub fn new(length: f64) -> Self {
        assert!(length > 0.0, "period must be positive");
        PeriodicEmbedding { length }
    }

    /// Map a coordinate jet to a 2-column feature jet
    /// `[sin(2πx/L), cos(2πx/L)]` with exact derivative propagation.
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let c = TAU / self.length;
        let z = x.scale(ctx.g, c);
        let s = z.sin(ctx.g);
        let co = z.cos(ctx.g);
        Jet::hstack(ctx.g, &[&s, &co])
    }
}

/// Sin/cos embedding whose period is a trainable parameter — used for the
/// time coordinate when the simulated window is shorter than one period.
#[derive(Clone, Copy, Debug)]
pub struct LearnedPeriodEmbedding {
    inv_period: ParamId,
}

impl LearnedPeriodEmbedding {
    /// Register the inverse-period parameter, initialized to `1/period0`.
    pub fn new(params: &mut ParamSet, period0: f64, name: &str) -> Self {
        assert!(period0 > 0.0, "initial period must be positive");
        let inv = params.add(
            format!("{name}.inv_period"),
            Tensor::from_vec([1, 1], vec![1.0 / period0]),
        );
        LearnedPeriodEmbedding { inv_period: inv }
    }

    /// The parameter handle (for inspection).
    pub fn param_id(&self) -> ParamId {
        self.inv_period
    }

    /// Map a coordinate jet to `[sin(2πx/P), cos(2πx/P)]` where `1/P` is the
    /// trainable parameter. Gradients flow into the period through the
    /// `[batch,1]·[1,1]` matmul on each jet slot.
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let inv = ctx.param(self.inv_period);
        // z = 2π · x · (1/P); the map is linear in x, so every slot goes
        // through the same matmul-then-scale.
        let z = x.map_linear(ctx.g, |g, s| {
            let m = g.matmul(s, inv);
            g.scale(m, TAU)
        });
        let s = z.sin(ctx.g);
        let c = z.cos(ctx.g);
        Jet::hstack(ctx.g, &[&s, &c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Graph;

    #[test]
    fn embedding_is_exactly_periodic() {
        let emb = PeriodicEmbedding::new(2.0);
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[0.3, 0.3 + 2.0, 0.3 - 4.0]));
        let jet = Jet::seed_coordinate(ctx.g, x, 0, 1);
        let out = emb.forward_jet(&mut ctx, &jet);
        let v = g.value(out.v);
        for col in 0..2 {
            let base = v.get(&[0, col]);
            assert!((v.get(&[1, col]) - base).abs() < 1e-12);
            assert!((v.get(&[2, col]) - base).abs() < 1e-12);
        }
    }

    #[test]
    fn derivatives_match_analytic() {
        let emb = PeriodicEmbedding::new(2.0);
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x0 = 0.7;
        let x = ctx.g.constant(Tensor::column(&[x0]));
        let jet = Jet::seed_coordinate(ctx.g, x, 0, 1);
        let out = emb.forward_jet(&mut ctx, &jet);
        let c = TAU / 2.0;
        let d = g.value(out.d[0]);
        assert!((d.get(&[0, 0]) - c * (c * x0).cos()).abs() < 1e-13);
        assert!((d.get(&[0, 1]) + c * (c * x0).sin()).abs() < 1e-13);
        let dd = g.value(out.dd[0]);
        assert!((dd.get(&[0, 0]) + c * c * (c * x0).sin()).abs() < 1e-13);
    }

    #[test]
    fn learned_period_receives_gradient() {
        let mut params = ParamSet::new();
        let emb = LearnedPeriodEmbedding::new(&mut params, 3.0, "t");
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let t = ctx.g.constant(Tensor::column(&[0.4, 0.9]));
        let jet = Jet::seed_coordinate(ctx.g, t, 0, 1);
        let out = emb.forward_jet(&mut ctx, &jet);
        // mse(out.v) is identically 0.5 (sin²+cos²), so use the derivative
        // features, whose magnitude scales with 2π/P.
        let loss = ctx.g.mse(out.d[0]);
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        assert_eq!(collected.len(), 1);
        assert!(collected[0].max_abs() > 1e-6, "period gradient missing");
    }

    #[test]
    fn learned_period_gradient_matches_finite_difference() {
        let eval = |inv_p: f64| -> f64 {
            let mut params = ParamSet::new();
            let emb = LearnedPeriodEmbedding::new(&mut params, 1.0 / inv_p, "t");
            let mut g = Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let t = ctx.g.constant(Tensor::column(&[0.4, 0.9]));
            let jet = Jet::seed_coordinate(ctx.g, t, 0, 1);
            let out = emb.forward_jet(&mut ctx, &jet);
            let loss = ctx.g.mse(out.d[0]);
            let v = ctx.g.value(loss).item();
            let _ = emb;
            v
        };
        let inv0 = 1.0 / 3.0;
        let h = 1e-6;
        let fd = (eval(inv0 + h) - eval(inv0 - h)) / (2.0 * h);

        let mut params = ParamSet::new();
        let emb = LearnedPeriodEmbedding::new(&mut params, 3.0, "t");
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let t = ctx.g.constant(Tensor::column(&[0.4, 0.9]));
        let jet = Jet::seed_coordinate(ctx.g, t, 0, 1);
        let out = emb.forward_jet(&mut ctx, &jet);
        let loss = ctx.g.mse(out.d[0]);
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        assert!(
            (collected[0].item() - fd).abs() < 1e-4 * fd.abs().max(1.0),
            "analytic {} vs fd {fd}",
            collected[0].item()
        );
    }
}
