//! Activation functions with jet propagation.

use crate::params::GraphCtx;
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::Var;

/// Smooth activations usable in PINNs (must be C² for second-order
/// residuals).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent — the standard PINN activation.
    Tanh,
    /// Sine — useful for highly oscillatory solutions (SIREN-style).
    Sin,
}

impl Activation {
    /// Plain elementwise application.
    pub fn forward(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Var {
        match self {
            Activation::Tanh => ctx.g.tanh(x),
            Activation::Sin => ctx.g.sin(x),
        }
    }

    /// Jet application (value + first + second derivative propagation).
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        match self {
            Activation::Tanh => x.tanh(ctx.g),
            Activation::Sin => x.sin(ctx.g),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Tanh => "tanh",
            Activation::Sin => "sin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use qpinn_autodiff::Graph;
    use qpinn_tensor::Tensor;

    #[test]
    fn forward_matches_tensor_ops() {
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::from_slice(&[-0.5, 0.0, 1.2]));
        let t = Activation::Tanh.forward(&mut ctx, x);
        let s = Activation::Sin.forward(&mut ctx, x);
        assert!((g.value(t).data()[2] - 1.2f64.tanh()).abs() < 1e-15);
        assert!((g.value(s).data()[0] - (-0.5f64).sin()).abs() < 1e-15);
    }

    #[test]
    fn jet_second_derivative_of_sin_activation() {
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[0.3]));
        let jet = Jet::seed_coordinate(ctx.g, x, 0, 1);
        let out = Activation::Sin.forward_jet(&mut ctx, &jet);
        assert!((g.value(out.dd[0]).item() + 0.3f64.sin()).abs() < 1e-14);
    }
}
