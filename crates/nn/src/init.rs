//! Weight initialization schemes.

use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Glorot/Xavier uniform initialization for a `[fan_in, fan_out]` weight
/// matrix: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`. The standard
/// choice for tanh networks (and therefore for PINNs).
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Tensor::rand_uniform([fan_in, fan_out], -a, a, rng)
}

/// LeCun normal initialization: `N(0, 1/fan_in)`. Used for `sin`-activated
/// layers where glorot over-saturates.
pub fn lecun_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    Tensor::randn([fan_in, fan_out], (1.0 / fan_in as f64).sqrt(), rng)
}

/// Zero bias of length `n`.
pub fn zero_bias(n: usize) -> Tensor {
    Tensor::zeros([n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = glorot_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f64).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
        // and actually uses the range
        assert!(w.max_abs() > 0.5 * a);
    }

    #[test]
    fn lecun_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = lecun_normal(100, 400, &mut rng);
        let var = w.sum_sq() / w.len() as f64;
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn bias_is_zero() {
        assert!(zero_bias(7).data().iter().all(|&x| x == 0.0));
    }
}
