//! Random Fourier feature embedding (Tancik et al. 2020; Rahimi & Recht
//! 2007).
//!
//! Inputs `x ∈ ℝᵈ` are mapped to `[sin(x·Ω), cos(x·Ω)]` with a fixed random
//! projection `Ω ∈ ℝ^{d×F}` whose entries are `N(0, σ²)`. The embedding
//! injects high-frequency structure into the first layer and is the
//! standard mitigation for spectral bias in PINNs. `Ω` is **not**
//! trainable.

use crate::params::GraphCtx;
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::Var;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Fixed sinusoidal feature map `x ↦ [sin(xΩ), cos(xΩ)]`.
#[derive(Clone, Debug)]
pub struct RandomFourierFeatures {
    omega: Tensor,
}

impl RandomFourierFeatures {
    /// Sample a projection for `input_dim` inputs and `n_features`
    /// frequencies with scale `sigma` (output width is `2·n_features`).
    pub fn new(input_dim: usize, n_features: usize, sigma: f64, rng: &mut StdRng) -> Self {
        RandomFourierFeatures {
            omega: Tensor::randn([input_dim, n_features], sigma, rng),
        }
    }

    /// Build from an explicit projection matrix `[input_dim, n_features]`.
    pub fn from_matrix(omega: Tensor) -> Self {
        assert_eq!(omega.shape().rank(), 2, "Ω must be a matrix");
        RandomFourierFeatures { omega }
    }

    /// Output width (`2 · n_features`).
    pub fn output_dim(&self) -> usize {
        2 * self.omega.shape().ncols()
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.omega.shape().nrows()
    }

    /// Plain forward pass on a `[batch, input_dim]` node.
    pub fn forward(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Var {
        let omega = ctx.g.constant(self.omega.clone());
        let z = ctx.g.matmul(x, omega);
        let s = ctx.g.sin(z);
        let c = ctx.g.cos(z);
        ctx.g.hstack(&[s, c])
    }

    /// Jet forward pass: the projection is linear, sin/cos propagate by the
    /// chain rule, and the two feature blocks are stacked slot-wise.
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let omega = ctx.g.constant(self.omega.clone());
        let z = x.map_linear(ctx.g, |g, s| g.matmul(s, omega));
        let s = z.sin(ctx.g);
        let c = z.cos(ctx.g);
        Jet::hstack(ctx.g, &[&s, &c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use qpinn_autodiff::Graph;
    use rand::SeedableRng;

    #[test]
    fn forward_values_match_manual() {
        let omega = Tensor::from_rows(&[&[2.0], &[0.5]]); // d=2, F=1
        let rff = RandomFourierFeatures::from_matrix(omega);
        assert_eq!(rff.output_dim(), 2);
        assert_eq!(rff.input_dim(), 2);
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::from_rows(&[&[0.3, 0.8]]));
        let y = rff.forward(&mut ctx, x);
        let z: f64 = 0.3 * 2.0 + 0.8 * 0.5;
        let out = g.value(y);
        assert!((out.get(&[0, 0]) - z.sin()).abs() < 1e-14);
        assert!((out.get(&[0, 1]) - z.cos()).abs() < 1e-14);
    }

    #[test]
    fn jet_derivatives_match_analytic() {
        // With x = (x0,), Ω = [[w]]: features are sin(w x), cos(w x);
        // d/dx = w cos, -w sin; d²/dx² = -w² sin, -w² cos.
        let w = 1.7;
        let rff = RandomFourierFeatures::from_matrix(Tensor::from_rows(&[&[w]]));
        let params = ParamSet::new();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x0 = 0.4;
        let x = ctx.g.constant(Tensor::column(&[x0]));
        let jet = Jet::seed_coordinate(ctx.g, x, 0, 1);
        let out = rff.forward_jet(&mut ctx, &jet);
        let d = g.value(out.d[0]);
        assert!((d.get(&[0, 0]) - w * (w * x0).cos()).abs() < 1e-13);
        assert!((d.get(&[0, 1]) + w * (w * x0).sin()).abs() < 1e-13);
        let dd = g.value(out.dd[0]);
        assert!((dd.get(&[0, 0]) + w * w * (w * x0).sin()).abs() < 1e-13);
        assert!((dd.get(&[0, 1]) + w * w * (w * x0).cos()).abs() < 1e-13);
    }

    #[test]
    fn sampled_projection_is_reproducible() {
        let a = RandomFourierFeatures::new(3, 16, 1.0, &mut StdRng::seed_from_u64(11));
        let b = RandomFourierFeatures::new(3, 16, 1.0, &mut StdRng::seed_from_u64(11));
        assert!(a.omega.approx_eq(&b.omega, 0.0));
    }
}
