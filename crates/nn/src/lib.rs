//! # qpinn-nn
//!
//! Neural-network building blocks over the `qpinn-autodiff` tape, designed
//! for physics-informed training:
//!
//! * [`ParamSet`] / [`GraphCtx`] — an external parameter store that is
//!   injected into a fresh tape every training step, so optimizers own the
//!   persistent state and graphs stay cheap;
//! * [`Dense`] and [`Mlp`] — fully connected layers with **jet-aware**
//!   forward passes: [`Dense::forward_jet`] propagates
//!   `(value, ∂/∂cᵢ, ∂²/∂cᵢ²)` per coordinate, giving PDE residual
//!   derivatives as first-class differentiable tape nodes;
//! * [`RandomFourierFeatures`] — the multiscale input embedding of Tancik
//!   et al. used to combat spectral bias in PINNs;
//! * [`PeriodicEmbedding`] — exact sin/cos periodization of spatial
//!   coordinates (Dong & Ni), which removes the need for a boundary loss on
//!   periodic domains.

#![deny(missing_docs)]

pub mod activation;
pub mod fourier;
pub mod init;
pub mod linear;
pub mod mlp;
pub mod params;
pub mod periodic;

pub use activation::Activation;
pub use fourier::RandomFourierFeatures;
pub use linear::Dense;
pub use mlp::{Mlp, MlpConfig};
pub use params::{GraphCtx, ParamId, ParamSet};
pub use periodic::PeriodicEmbedding;
