//! Multi-layer perceptron with jet-aware forward passes.

use crate::activation::Activation;
use crate::linear::Dense;
use crate::params::{GraphCtx, ParamSet};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::Var;
use rand::rngs::StdRng;

/// Architecture description for an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Input feature width (after any embedding).
    pub input_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output width (number of predicted fields).
    pub output_dim: usize,
    /// Hidden activation.
    pub activation: Activation,
}

impl MlpConfig {
    /// Convenience constructor: `depth` hidden layers of `width` tanh units.
    pub fn uniform(input_dim: usize, width: usize, depth: usize, output_dim: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: vec![width; depth],
            output_dim,
            activation: Activation::Tanh,
        }
    }
}

/// A fully connected network `dense → act → … → dense` (linear output).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
}

impl Mlp {
    /// Register all layers in `params`.
    pub fn new(params: &mut ParamSet, rng: &mut StdRng, cfg: &MlpConfig, name: &str) -> Self {
        assert!(!cfg.hidden.is_empty(), "MLP needs at least one hidden layer");
        let mut layers = Vec::with_capacity(cfg.hidden.len() + 1);
        let mut fan_in = cfg.input_dim;
        for (i, &w) in cfg.hidden.iter().enumerate() {
            layers.push(Dense::new(params, rng, fan_in, w, &format!("{name}.h{i}")));
            fan_in = w;
        }
        layers.push(Dense::new(
            params,
            rng,
            fan_in,
            cfg.output_dim,
            &format!("{name}.out"),
        ));
        Mlp {
            layers,
            activation: cfg.activation,
        }
    }

    /// Layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Plain forward pass on `[batch, input_dim]`. Hidden tanh layers run
    /// through the fused `affine_tanh` kernel (one node per layer instead
    /// of matmul → bias → tanh).
    pub fn forward(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            if i < last {
                h = match self.activation {
                    Activation::Tanh => layer.forward_tanh(ctx, h),
                    _ => {
                        let z = layer.forward(ctx, h);
                        self.activation.forward(ctx, z)
                    }
                };
            } else {
                h = layer.forward(ctx, h);
            }
        }
        h
    }

    /// Jet forward pass, propagating first and second coordinate
    /// derivatives through every layer.
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward_jet(ctx, &h);
            if i < last {
                h = self.activation.forward_jet(ctx, &h);
            }
        }
        h
    }

    /// Forward pass that stops just before the final linear layer,
    /// returning the last hidden activation (used to splice in a quantum
    /// layer as the second-to-last stage).
    pub fn forward_jet_hidden(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let mut h = x.clone();
        for layer in &self.layers[..self.layers.len() - 1] {
            h = layer.forward_jet(ctx, &h);
            h = self.activation.forward_jet(ctx, &h);
        }
        h
    }

    /// Apply only the final linear layer (the companion of
    /// [`Mlp::forward_jet_hidden`]).
    pub fn output_layer_jet(&self, ctx: &mut GraphCtx<'_>, h: &Jet) -> Jet {
        self.layers[self.layers.len() - 1].forward_jet(ctx, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Graph;
    use qpinn_tensor::Tensor;
    use rand::SeedableRng;

    fn tiny_mlp() -> (ParamSet, Mlp) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MlpConfig::uniform(1, 8, 2, 1);
        let mlp = Mlp::new(&mut params, &mut rng, &cfg, "net");
        (params, mlp)
    }

    #[test]
    fn forward_and_jet_values_agree() {
        let (params, mlp) = tiny_mlp();
        let xs = Tensor::column(&[0.1, -0.4, 0.9]);

        let mut g1 = Graph::new();
        let mut ctx1 = GraphCtx::new(&mut g1, &params);
        let x1 = ctx1.g.constant(xs.clone());
        let y_plain = mlp.forward(&mut ctx1, x1);
        let y_plain = g1.value(y_plain).clone();

        let mut g2 = Graph::new();
        let mut ctx2 = GraphCtx::new(&mut g2, &params);
        let x2 = ctx2.g.constant(xs);
        let jet = Jet::seed_coordinate(ctx2.g, x2, 0, 1);
        let out = mlp.forward_jet(&mut ctx2, &jet);
        assert!(g2.value(out.v).approx_eq(&y_plain, 1e-13));
    }

    #[test]
    fn jet_derivatives_match_finite_differences() {
        let (params, mlp) = tiny_mlp();
        let x0 = 0.35;
        let h = 1e-4;

        let eval = |x: f64| -> f64 {
            let mut g = Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let xc = ctx.g.constant(Tensor::column(&[x]));
            let y = mlp.forward(&mut ctx, xc);
            g.value(y).item()
        };

        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[x0]));
        let jet = Jet::seed_coordinate(ctx.g, xc, 0, 1);
        let out = mlp.forward_jet(&mut ctx, &jet);

        let fd1 = (eval(x0 + h) - eval(x0 - h)) / (2.0 * h);
        let fd2 = (eval(x0 + h) - 2.0 * eval(x0) + eval(x0 - h)) / (h * h);
        let d1 = g.value(out.d[0]).item();
        let d2 = g.value(out.dd[0]).item();
        assert!((d1 - fd1).abs() < 1e-6, "d1 {d1} vs {fd1}");
        assert!((d2 - fd2).abs() < 1e-4, "d2 {d2} vs {fd2}");
    }

    #[test]
    fn residual_loss_gradients_pass_gradcheck() {
        // Loss = mse(u_xx) for a 1-input 1-output net: the full Taylor-mode
        // + reverse composition must match finite differences in parameter
        // space.
        let (params, mlp) = tiny_mlp();
        let tensors: Vec<Tensor> = params.tensors().to_vec();
        qpinn_autodiff::gradcheck::assert_gradients(
            move |g, vars| {
                // Wire manually through the tape vars: layers alternate
                // (w, b) in registration order.
                let xc = g.constant(Tensor::column(&[0.2, -0.6, 0.7]));
                let jet = Jet::seed_coordinate(g, xc, 0, 1);
                let mut h = jet;
                let n_layers = vars.len() / 2;
                for li in 0..n_layers {
                    let w = vars[2 * li];
                    let b = vars[2 * li + 1];
                    let v = g.matmul(h.v, w);
                    let v = g.add_bias(v, b);
                    let d: Vec<_> = h.d.iter().map(|&s| g.matmul(s, w)).collect();
                    let dd: Vec<_> = h.dd.iter().map(|&s| g.matmul(s, w)).collect();
                    h = Jet { v, d, dd };
                    if li < n_layers - 1 {
                        h = h.tanh(g);
                    }
                }
                g.mse(h.dd[0])
            },
            &tensors,
            2e-4,
        );
        let _ = mlp;
    }
}
