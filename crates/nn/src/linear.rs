//! Fully connected (dense) layers with jet-aware forward passes.

use crate::init;
use crate::params::{GraphCtx, ParamId, ParamSet};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::Var;
use rand::rngs::StdRng;

/// A dense layer `y = x·W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Clone, Copy, Debug)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    fan_in: usize,
    fan_out: usize,
}

impl Dense {
    /// Register a glorot-initialized layer in `params`.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        fan_in: usize,
        fan_out: usize,
        name: &str,
    ) -> Self {
        let w = params.add(format!("{name}.w"), init::glorot_uniform(fan_in, fan_out, rng));
        let b = params.add(format!("{name}.b"), init::zero_bias(fan_out));
        Dense {
            w,
            b,
            fan_in,
            fan_out,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// Handles to this layer's parameters (weight, bias).
    pub fn param_ids(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Plain forward pass, via the fused affine kernel (one sweep, no
    /// intermediate `x·W` tensor).
    pub fn forward(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Var {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        ctx.g.affine(x, w, b)
    }

    /// Fused forward pass `tanh(x·W + b)` — the dense-plus-activation step
    /// of every hidden MLP layer collapsed into a single tape node.
    pub fn forward_tanh(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Var {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        ctx.g.affine_tanh(x, w, b)
    }

    /// Jet forward pass: the affine map is linear, so derivative slots pass
    /// through the weight matrix and the bias touches only the value slot
    /// (which uses the fused affine kernel).
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, x: &Jet) -> Jet {
        let w = ctx.param(self.w);
        let b = ctx.param(self.b);
        let v = ctx.g.affine(x.v, w, b);
        let d = x.d.iter().map(|&s| ctx.g.matmul(s, w)).collect();
        let dd = x.dd.iter().map(|&s| ctx.g.matmul(s, w)).collect();
        Jet { v, d, dd }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Graph;
    use qpinn_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(&mut params, &mut rng, 2, 3, "l0");
        // overwrite with known values
        params
            .get_mut(layer.param_ids().0)
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        params
            .get_mut(layer.param_ids().1)
            .data_mut()
            .copy_from_slice(&[0.1, 0.2, 0.3]);
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::from_rows(&[&[1.0, 1.0]]));
        let y = layer.forward(&mut ctx, x);
        // [1,1]·[[1,2,3],[4,5,6]] + [0.1,0.2,0.3] = [5.1, 7.2, 9.3]
        let out = g.value(y);
        assert!(out.approx_eq(&Tensor::from_rows(&[&[5.1, 7.2, 9.3]]), 1e-12));
    }

    #[test]
    fn jet_forward_derivatives_are_weights() {
        // u(x) = x·W + b ⇒ ∂u/∂x = W row, ∂²u/∂x² = 0.
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut params, &mut rng, 1, 2, "l0");
        let wvals = params.get(layer.param_ids().0).clone();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[0.5, -1.5]));
        let jet = Jet::seed_coordinate(ctx.g, x, 0, 1);
        let out = layer.forward_jet(&mut ctx, &jet);
        let d = g.value(out.d[0]);
        for i in 0..2 {
            assert!((d.get(&[i, 0]) - wvals.get(&[0, 0])).abs() < 1e-14);
            assert!((d.get(&[i, 1]) - wvals.get(&[0, 1])).abs() < 1e-14);
        }
        assert!(g.value(out.dd[0]).max_abs() < 1e-15);
    }

    #[test]
    fn gradcheck_through_dense_tanh_dense() {
        use qpinn_autodiff::gradcheck;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let l0 = Dense::new(&mut params, &mut rng, 2, 4, "l0");
        let l1 = Dense::new(&mut params, &mut rng, 4, 1, "l1");
        let x = Tensor::from_rows(&[&[0.3, -0.2], &[0.8, 0.5]]);
        let tensors: Vec<Tensor> = params.tensors().to_vec();
        gradcheck::assert_gradients(
            move |g, vars| {
                // vars are [w0, b0, w1, b1] in registration order.
                let xc = g.constant(x.clone());
                let z0 = g.matmul(xc, vars[0]);
                let z0b = g.add_bias(z0, vars[1]);
                let h = g.tanh(z0b);
                let z1 = g.matmul(h, vars[2]);
                let z1b = g.add_bias(z1, vars[3]);
                g.mse(z1b)
            },
            &tensors,
            1e-5,
        );
        let _ = (l0, l1);
    }
}
