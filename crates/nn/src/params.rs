//! Parameter storage decoupled from the tape.
//!
//! Training rebuilds a fresh [`qpinn_autodiff::Graph`] every step.
//! [`ParamSet`] owns the persistent parameter tensors; [`GraphCtx`] injects
//! them into the current graph on demand and afterwards collects their
//! gradients in a stable order for the optimizer.

use qpinn_autodiff::{Grads, Graph, Var};
use qpinn_tensor::Tensor;

/// Stable handle to a parameter tensor inside a [`ParamSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Named, ordered collection of trainable tensors.
#[derive(Clone, Debug, Default)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tensor and return its handle.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        self.tensors.push(t);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of trainable scalars — the "parameter count" reported
    /// by the experiments.
    pub fn n_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// The tensor behind a handle.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access for optimizers.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All tensors in registration order.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Mutable view of all tensors in registration order.
    pub fn tensors_mut(&mut self) -> &mut [Tensor] {
        &mut self.tensors
    }

    /// Concatenate every parameter into one flat vector (L-BFGS layout).
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_scalars());
        for t in &self.tensors {
            out.extend_from_slice(t.data());
        }
        out
    }

    /// Overwrite every parameter from a flat vector produced by
    /// [`ParamSet::flatten`].
    ///
    /// # Panics
    /// Panics when the flat length disagrees with the stored layout.
    pub fn assign_flat(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.n_scalars(), "flat parameter length");
        let mut off = 0;
        for t in &mut self.tensors {
            let n = t.len();
            t.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }

    /// Iterate over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }
}

/// A per-step view tying a [`ParamSet`] to the graph being built.
pub struct GraphCtx<'a> {
    /// The tape under construction.
    pub g: &'a mut Graph,
    params: &'a ParamSet,
    injected: Vec<Option<Var>>,
}

impl<'a> GraphCtx<'a> {
    /// Wrap a graph and a parameter set for one forward/backward step.
    pub fn new(g: &'a mut Graph, params: &'a ParamSet) -> Self {
        let injected = vec![None; params.len()];
        GraphCtx {
            g,
            params,
            injected,
        }
    }

    /// The tape [`Var`] for a parameter, injecting it on first use so each
    /// parameter appears exactly once per graph (gradient accumulation
    /// across layers then happens naturally on the tape).
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.injected[id.0] {
            return v;
        }
        let v = self.g.input(self.params.get(id).clone());
        self.injected[id.0] = Some(v);
        v
    }

    /// After `backward`, collect one gradient tensor per parameter in
    /// registration order (zeros for parameters that did not participate).
    pub fn collect_grads(&self, grads: &mut Grads) -> Vec<Tensor> {
        self.injected
            .iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(v) => grads
                    .take(*v)
                    .unwrap_or_else(|| Tensor::zeros(self.params.tensors()[i].shape().clone())),
                None => Tensor::zeros(self.params.tensors()[i].shape().clone()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut p = ParamSet::new();
        let id = p.add("w", Tensor::from_slice(&[1.0, 2.0]));
        assert_eq!(p.get(id).data(), &[1.0, 2.0]);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.len(), 1);
        assert_eq!(p.n_scalars(), 2);
    }

    #[test]
    fn flatten_assign_roundtrip() {
        let mut p = ParamSet::new();
        p.add("a", Tensor::from_slice(&[1.0, 2.0]));
        p.add("b", Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]));
        let flat = p.flatten();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut q = p.clone();
        q.assign_flat(&[6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(q.tensors()[1].get(&[1, 1]), 1.0);
        assert_eq!(p.tensors()[0].data(), &[1.0, 2.0], "original untouched");
    }

    #[test]
    fn params_injected_once() {
        let mut p = ParamSet::new();
        let id = p.add("w", Tensor::from_slice(&[2.0]));
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &p);
        let v1 = ctx.param(id);
        let v2 = ctx.param(id);
        assert_eq!(v1, v2, "same Var on repeated injection");
    }

    #[test]
    fn gradient_collection_handles_unused_params() {
        let mut p = ParamSet::new();
        let used = p.add("used", Tensor::from_slice(&[3.0]));
        let _unused = p.add("unused", Tensor::from_slice(&[1.0, 1.0]));
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &p);
        let w = ctx.param(used);
        let sq = ctx.g.square(w);
        let loss = ctx.g.sum(sq);
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].data(), &[6.0]);
        assert_eq!(collected[1].data(), &[0.0, 0.0]);
    }

    #[test]
    fn fanout_accumulates_param_gradient() {
        // Using the same param twice must sum both contributions.
        let mut p = ParamSet::new();
        let id = p.add("w", Tensor::from_slice(&[2.0]));
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &p);
        let w = ctx.param(id);
        let w2 = ctx.param(id);
        let s = ctx.g.mul(w, w2); // w² → d/dw = 2w = 4
        let loss = ctx.g.sum(s);
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        assert_eq!(collected[0].data(), &[4.0]);
    }
}
