//! Iterative radix-2 Cooley–Tukey FFT with precomputed twiddles and
//! bit-reversal permutation, reusable across transforms of the same length
//! (the split-step propagator calls it thousands of times).

use qpinn_dual::Complex64;

/// Precomputed tables for transforms of a fixed power-of-two length.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    // Twiddle factors e^{-2πik/N} for k < N/2.
    twiddles: Vec<Complex64>,
    // Bit-reversal permutation.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for length `n`.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and ≥ 1.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 1, "FFT length {n} not 2^k");
        let half = n / 2;
        let twiddles = (0..half)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        FftPlan { n, twiddles, rev }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex64], conj: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if conj {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }

    /// In-place forward transform.
    ///
    /// # Panics
    /// Panics on a length mismatch with the plan.
    pub fn forward(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length vs plan");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse transform (normalized by `1/N`).
    ///
    /// # Panics
    /// Panics on a length mismatch with the plan.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "buffer length vs plan");
        self.permute(buf);
        self.butterflies(buf, true);
        let inv = 1.0 / self.n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft_naive;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let fast = crate::fft(&x);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 256;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sqrt().sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = crate::ifft(&crate::fft(&x));
        assert_close(&back, &x, 1e-11);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 16;
        let mut x = vec![Complex64::zero(); n];
        x[0] = Complex64::one();
        let spec = crate::fft(&x);
        for v in spec {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let spec = crate::fft(&x);
        for (k, v) in spec.iter().enumerate() {
            let want = if k == k0 { n as f64 } else { 0.0 };
            assert!((v.abs() - want).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = FftPlan::new(12);
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = FftPlan::new(64);
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut a = x.clone();
        plan.forward(&mut a);
        let mut b = x;
        plan.forward(&mut b);
        assert_close(&a, &b, 1e-15);
    }
}
