//! Property-based tests for the FFT.

use crate::{dft_naive, fft, fft_freq, ifft};
use proptest::prelude::*;
use qpinn_dual::Complex64;

fn signal(log_n: u32) -> impl Strategy<Value = Vec<Complex64>> {
    let n = 1usize << log_n;
    proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), n)
        .prop_map(|v| v.into_iter().map(|(r, i)| Complex64::new(r, i)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip(x in (0u32..8).prop_flat_map(signal)) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn linearity(x in signal(5), y in signal(5), a in -3.0..3.0f64) {
        let lhs: Vec<Complex64> = {
            let sum: Vec<Complex64> = x.iter().zip(&y).map(|(u, v)| u.scale(a) + *v).collect();
            fft(&sum)
        };
        let fx = fft(&x);
        let fy = fft(&y);
        for ((l, u), v) in lhs.iter().zip(&fx).zip(&fy) {
            let want = u.scale(a) + *v;
            prop_assert!((l.re - want.re).abs() < 1e-8);
            prop_assert!((l.im - want.im).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval(x in signal(6)) {
        // Σ|x|² = (1/N) Σ|X|².
        let n = x.len() as f64;
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() < 1e-7 * time.max(1.0));
    }

    #[test]
    fn agrees_with_naive(x in signal(4)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn freqs_are_antisymmetric(log_n in 2u32..9) {
        let n = 1usize << log_n;
        let f = fft_freq(n, 1.0);
        // bin j and bin n−j carry opposite frequencies (j ≠ 0, n/2).
        for j in 1..n / 2 {
            prop_assert!((f[j] + f[n - j]).abs() < 1e-12);
        }
        prop_assert_eq!(f[0], 0.0);
    }
}
