//! Spectral utilities for periodic grids: FFT wavenumbers and spectral
//! differentiation.

use crate::{fft, ifft};
use qpinn_dual::Complex64;

/// Angular wavenumbers `k` in FFT bin order for a periodic domain of length
/// `l` sampled at `n` points: `k_j = 2π·f_j/l` with `f_j = 0, 1, …, n/2−1,
//  −n/2, …, −1`.
pub fn fft_freq(n: usize, l: f64) -> Vec<f64> {
    let base = 2.0 * std::f64::consts::PI / l;
    (0..n)
        .map(|j| {
            let f = if j < n.div_ceil(2) {
                j as isize
            } else {
                j as isize - n as isize
            };
            base * f as f64
        })
        .collect()
}

/// First derivative of a periodic complex signal via `ik` multiplication in
/// Fourier space.
pub fn spectral_derivative(x: &[Complex64], l: f64) -> Vec<Complex64> {
    let ks = fft_freq(x.len(), l);
    let mut spec = fft(x);
    for (s, k) in spec.iter_mut().zip(ks) {
        *s *= Complex64::new(0.0, k);
    }
    ifft(&spec)
}

/// Second derivative via `−k²` multiplication in Fourier space.
pub fn spectral_second_derivative(x: &[Complex64], l: f64) -> Vec<Complex64> {
    let ks = fft_freq(x.len(), l);
    let mut spec = fft(x);
    for (s, k) in spec.iter_mut().zip(ks) {
        *s = s.scale(-k * k);
    }
    ifft(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_ordering_matches_convention() {
        // n = 8, l = 2π → base = 1; bins 0..3 positive, 4..7 negative.
        let f = fft_freq(8, 2.0 * std::f64::consts::PI);
        assert_eq!(
            f.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, -4, -3, -2, -1]
        );
    }

    #[test]
    fn derivative_of_sine_is_cosine() {
        let n = 128;
        let l = 2.0 * std::f64::consts::PI;
        let xs: Vec<f64> = (0..n).map(|i| l * i as f64 / n as f64).collect();
        let sig: Vec<Complex64> = xs.iter().map(|&x| Complex64::new((3.0 * x).sin(), 0.0)).collect();
        let d = spectral_derivative(&sig, l);
        for (x, v) in xs.iter().zip(&d) {
            assert!((v.re - 3.0 * (3.0 * x).cos()).abs() < 1e-9, "at {x}");
            assert!(v.im.abs() < 1e-9);
        }
    }

    #[test]
    fn second_derivative_of_plane_wave() {
        let n = 64;
        let l = 4.0;
        let k = 2.0 * std::f64::consts::PI * 5.0 / l;
        let sig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(k * l * i as f64 / n as f64))
            .collect();
        let d2 = spectral_second_derivative(&sig, l);
        for (s, v) in sig.iter().zip(&d2) {
            let want = s.scale(-k * k);
            assert!((v.re - want.re).abs() < 1e-6 && (v.im - want.im).abs() < 1e-6);
        }
    }

    #[test]
    fn derivative_of_gaussian_matches_analytic() {
        // A periodic-enough Gaussian on [-8, 8): f' = -2x·σ⁻²/2 … use
        // f = exp(-x²), f' = -2x e^{-x²}.
        let n = 256;
        let l = 16.0;
        let d = spectral_derivative(
            &(0..n)
                .map(|i| {
                    let x = -8.0 + l * i as f64 / n as f64;
                    Complex64::new((-x * x).exp(), 0.0)
                })
                .collect::<Vec<_>>(),
            l,
        );
        for i in 0..n {
            let x = -8.0 + l * i as f64 / n as f64;
            let want = -2.0 * x * (-x * x).exp();
            assert!((d[i].re - want).abs() < 1e-8, "at {x}: {} vs {want}", d[i].re);
        }
    }
}
