//! 2D FFT on row-major `nx × ny` complex buffers: 1D transforms along both
//! axes. Used by the 2D split-step Schrödinger propagator.

use crate::plan::FftPlan;
use qpinn_dual::Complex64;

/// Plans for a fixed `nx × ny` transform (both powers of two).
#[derive(Clone, Debug)]
pub struct Fft2Plan {
    nx: usize,
    ny: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2Plan {
    /// Build plans for an `nx × ny` grid.
    ///
    /// # Panics
    /// Panics unless both extents are powers of two.
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2Plan {
            nx,
            ny,
            row_plan: FftPlan::new(ny),
            col_plan: FftPlan::new(nx),
        }
    }

    /// Grid extents `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn transform(&self, buf: &mut [Complex64], inverse: bool) {
        assert_eq!(buf.len(), self.nx * self.ny, "buffer size");
        // rows (y-axis contiguous)
        for row in buf.chunks_mut(self.ny) {
            if inverse {
                self.row_plan.inverse(row);
            } else {
                self.row_plan.forward(row);
            }
        }
        // columns
        let mut col = vec![Complex64::zero(); self.nx];
        for j in 0..self.ny {
            for i in 0..self.nx {
                col[i] = buf[i * self.ny + j];
            }
            if inverse {
                self.col_plan.inverse(&mut col);
            } else {
                self.col_plan.forward(&mut col);
            }
            for i in 0..self.nx {
                buf[i * self.ny + j] = col[i];
            }
        }
    }

    /// In-place forward 2D transform.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.transform(buf, false);
    }

    /// In-place inverse 2D transform (normalized by `1/(nx·ny)`).
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.transform(buf, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let (nx, ny) = (16, 32);
        let plan = Fft2Plan::new(nx, ny);
        let orig: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let mut buf = orig.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_hits_single_bin() {
        let (nx, ny) = (8, 8);
        let plan = Fft2Plan::new(nx, ny);
        let (kx, ky) = (3usize, 5usize);
        let mut buf: Vec<Complex64> = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                let phase = 2.0 * std::f64::consts::PI
                    * (kx * i) as f64
                    / nx as f64
                    + 2.0 * std::f64::consts::PI * (ky * j) as f64 / ny as f64;
                buf.push(Complex64::cis(phase));
            }
        }
        plan.forward(&mut buf);
        for i in 0..nx {
            for j in 0..ny {
                let want = if i == kx && j == ky {
                    (nx * ny) as f64
                } else {
                    0.0
                };
                assert!(
                    (buf[i * ny + j].abs() - want).abs() < 1e-8,
                    "bin ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn parseval_2d() {
        let (nx, ny) = (16, 16);
        let plan = Fft2Plan::new(nx, ny);
        let sig: Vec<Complex64> = (0..nx * ny)
            .map(|i| Complex64::new((i as f64).sqrt().sin(), 0.3 * (i as f64 * 0.21).cos()))
            .collect();
        let time: f64 = sig.iter().map(|v| v.norm_sqr()).sum();
        let mut buf = sig;
        plan.forward(&mut buf);
        let freq: f64 = buf.iter().map(|v| v.norm_sqr()).sum::<f64>() / (nx * ny) as f64;
        assert!((time - freq).abs() < 1e-8 * time);
    }

    #[test]
    fn separable_signal_transforms_separably() {
        // f(i,j) = g(i)·h(j) → F(k,l) = G(k)·H(l).
        let n = 8;
        let plan = Fft2Plan::new(n, n);
        let g: Vec<Complex64> = (0..n).map(|i| Complex64::new((i as f64).cos(), 0.0)).collect();
        let h: Vec<Complex64> = (0..n).map(|j| Complex64::new(0.0, (j as f64).sin())).collect();
        let mut buf: Vec<Complex64> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                buf.push(g[i] * h[j]);
            }
        }
        plan.forward(&mut buf);
        let gf = crate::fft(&g);
        let hf = crate::fft(&h);
        for i in 0..n {
            for j in 0..n {
                let want = gf[i] * hf[j];
                let got = buf[i * n + j];
                assert!((got.re - want.re).abs() < 1e-8 && (got.im - want.im).abs() < 1e-8);
            }
        }
    }
}
