//! # qpinn-fft
//!
//! A self-contained radix-2 fast Fourier transform over
//! [`qpinn_dual::Complex64`], plus the spectral helpers the split-step
//! Schrödinger propagator needs (wavenumber grids, spectral derivatives).
//!
//! Conventions: `fft` computes `X[k] = Σ_n x[n]·e^{-2πikn/N}` (unnormalized
//! forward transform); `ifft` divides by `N` so `ifft(fft(x)) = x`.
//!
//! ```
//! use qpinn_dual::Complex64;
//! let x: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
//! let back = qpinn_fft::ifft(&qpinn_fft::fft(&x));
//! assert!((back[3].re - 3.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod fft2;
pub mod plan;
pub mod spectral;

pub use fft2::Fft2Plan;
pub use plan::FftPlan;
pub use spectral::{fft_freq, spectral_derivative, spectral_second_derivative};

use qpinn_dual::Complex64;

/// Forward FFT of a power-of-two-length buffer (out of place).
///
/// # Panics
/// Panics when the length is not a power of two.
pub fn fft(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    FftPlan::new(x.len()).forward(&mut buf);
    buf
}

/// Inverse FFT (normalized by `1/N`).
///
/// # Panics
/// Panics when the length is not a power of two.
pub fn ifft(x: &[Complex64]) -> Vec<Complex64> {
    let mut buf = x.to_vec();
    FftPlan::new(x.len()).inverse(&mut buf);
    buf
}

/// Naive O(N²) discrete Fourier transform, kept as the test oracle.
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::zero();
            for (j, &xj) in x.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc += xj * Complex64::cis(angle);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod proptests;
