//! The dense [`Tensor`] type: storage, constructors, accessors.

use crate::Shape;
use std::fmt;

/// A dense, row-major, `f64` tensor.
///
/// Most tensors in the PINN stack are rank-2 (`[batch, features]` activations
/// and `[in, out]` weights) or rank-1 (bias vectors, coordinate columns);
/// scalars are rank-0.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Tensor {
    /// Build from an explicit shape and row-major data.
    ///
    /// # Panics
    /// Panics when `data.len()` disagrees with the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f64>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(v: f64) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![v],
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, v: f64) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![v; n],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Rank-1 tensor from a slice.
    pub fn from_slice(v: &[f64]) -> Self {
        Tensor {
            shape: Shape::new(&[v.len()]),
            data: v.to_vec(),
        }
    }

    /// Rank-2 tensor from row slices.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            shape: Shape::new(&[nrows, ncols]),
            data,
        }
    }

    /// A `[n, 1]` column tensor from a slice (the shape PINN coordinates use).
    pub fn column(v: &[f64]) -> Self {
        Tensor {
            shape: Shape::new(&[v.len(), 1]),
            data: v.to_vec(),
        }
    }

    /// `n` evenly spaced points covering `[a, b]` inclusive, as a rank-1
    /// tensor.
    ///
    /// # Panics
    /// Panics when `n < 2`.
    pub fn linspace(a: f64, b: f64, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least 2 points");
        let step = (b - a) / (n as f64 - 1.0);
        Tensor::from_vec(
            [n],
            (0..n).map(|i| a + step * i as f64).collect::<Vec<_>>(),
        )
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-index.
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.shape.offset(idx);
        self.data[off] = v;
    }

    /// The single value of a scalar or 1-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {}", self.shape);
        self.data[0]
    }

    /// Reinterpret with a new shape of the same total length.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {}",
            self.data.len(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Matrix transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.shape.nrows(), self.shape.ncols());
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec([n, m], out)
    }

    /// Row `i` of a rank-2 tensor as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        let n = self.shape.ncols();
        &self.data[i * n..(i + 1) * n]
    }

    /// Column `j` of a rank-2 tensor, copied out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let (m, n) = (self.shape.nrows(), self.shape.ncols());
        (0..m).map(|i| self.data[i * n + j]).collect()
    }

    /// Horizontally stack rank-2 tensors with equal row counts.
    ///
    /// # Panics
    /// Panics when `parts` is empty or row counts differ.
    pub fn hstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "hstack of nothing");
        let m = parts[0].shape.nrows();
        let total: usize = parts.iter().map(|p| p.shape.ncols()).sum();
        let mut data = Vec::with_capacity(m * total);
        for i in 0..m {
            for p in parts {
                assert_eq!(p.shape.nrows(), m, "hstack row mismatch");
                data.extend_from_slice(p.row(i));
            }
        }
        Tensor::from_vec([m, total], data)
    }

    /// Elementwise approximate equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Largest absolute difference against another tensor of equal shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 12;
        if self.len() <= MAX {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "{:?}…", &self.data[..MAX])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let e = Tensor::eye(3);
        assert_eq!(e.get(&[1, 1]), 1.0);
        assert_eq!(e.get(&[0, 2]), 0.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    fn linspace_endpoints() {
        let l = Tensor::linspace(-1.0, 1.0, 5);
        assert_eq!(l.data(), &[-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros([2, 2]);
        t.set(&[1, 0], 7.0);
        assert_eq!(t.get(&[1, 0]), 7.0);
        assert_eq!(t.get(&[0, 1]), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let att = a.transpose().transpose();
        assert!(a.approx_eq(&att, 0.0));
        assert_eq!(a.transpose().get(&[2, 1]), 6.0);
    }

    #[test]
    fn hstack_columns() {
        let a = Tensor::column(&[1.0, 2.0]);
        let b = Tensor::column(&[3.0, 4.0]);
        let c = Tensor::hstack(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.row(0), &[1.0, 3.0]);
        assert_eq!(c.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape([2, 2]);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic]
    fn reshape_len_mismatch_panics() {
        let _ = Tensor::from_slice(&[1.0, 2.0, 3.0]).reshape([2, 2]);
    }

    #[test]
    fn row_col_views() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::ones([3]);
        assert!(t.all_finite());
        t.set(&[1], f64::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn max_abs_diff_reports_worst() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[1.0, 2.5, 2.0]);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-15);
    }
}
