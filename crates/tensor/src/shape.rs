//! Shape handling: a thin wrapper over `Vec<usize>` with the handful of
//! queries the tensor kernels need.

use std::fmt;

/// The extent of a tensor along each axis (row-major).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Construct from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Scalar shape (rank 0).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the tensor holds no elements (some axis has extent 0).
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Rows of a rank-2 shape.
    ///
    /// # Panics
    /// Panics when the rank is not 2.
    pub fn nrows(&self) -> usize {
        assert_eq!(self.rank(), 2, "nrows on shape {self}");
        self.0[0]
    }

    /// Columns of a rank-2 shape.
    ///
    /// # Panics
    /// Panics when the rank is not 2.
    pub fn ncols(&self) -> usize {
        assert_eq!(self.rank(), 2, "ncols on shape {self}");
        self.0[1]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat (row-major) offset of a multi-index.
    ///
    /// # Panics
    /// Panics when the index rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch for {self}");
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, (&ix, &d)) in idx.iter().zip(self.0.iter()).enumerate().rev() {
            assert!(ix < d, "index {ix} out of range for axis {i} of {self}");
            off += ix * stride;
            stride *= d;
            let _ = i;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(d: [usize; N]) -> Self {
        Shape(d.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Shape::new(&[3, 4]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.strides(), vec![4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offsets_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 0, 0]), 12);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn empty_shape_detection() {
        assert!(Shape::new(&[0, 5]).is_empty());
        assert_eq!(Shape::new(&[0, 5]).len(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
