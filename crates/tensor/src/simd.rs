//! Runtime-dispatched SIMD kernels for the f64 hot paths.
//!
//! One dispatch width is selected per process — 8 lanes (AVX-512F), 4 lanes
//! (AVX2), or the portable scalar fallback — from CPUID at first use, and
//! can be overridden by the `QPINN_SIMD` environment variable
//! (`scalar`/`1`, `avx2`/`4`, `avx512`/`8`; requests above what the CPU
//! supports are clamped down). [`set_width`] lets benches and tests force a
//! width in-process.
//!
//! # Determinism contract
//!
//! Every kernel here is **bit-identical across dispatch widths and thread
//! counts**:
//!
//! * reductions (`vsum`/`vsum_sq`/`vdot`) accumulate in eight fixed lanes
//!   regardless of width — the scalar path keeps eight running partials,
//!   AVX2 keeps two 4-lane registers, AVX-512 one 8-lane register — and
//!   combine them in the fixed tree `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`
//!   followed by the `len % 8` tail in ascending order;
//! * elementwise kernels are per-element IEEE operations with no fused
//!   multiply-add anywhere (explicit mul-then-add intrinsics), so a lane
//!   computes exactly what the scalar expression computes;
//! * the transcendental kernels (`vtanh`/`vexp` and friends) use one
//!   branch-free polynomial algorithm shared verbatim by all three paths —
//!   the scalar fallback runs the same Cephes-style code one element at a
//!   time rather than calling libm, so even `tanh`/`exp` results do not
//!   depend on the dispatch width. They agree with libm to a few ulp
//!   (≪ 1e-12) on finite inputs; NaN payloads are not preserved.
//!
//! Width selection happens once and is cached in a relaxed atomic; the
//! per-kernel cost of dispatch is one load and a two-arm match.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Cached dispatch width in f64 lanes (0 = not yet initialised).
static WIDTH: AtomicU8 = AtomicU8::new(0);

/// The dispatch width currently in effect: 1 (scalar), 4 (AVX2) or
/// 8 (AVX-512F). Initialised on first call from CPUID and the `QPINN_SIMD`
/// environment variable.
#[inline]
pub fn width() -> usize {
    match WIDTH.load(Relaxed) {
        0 => init_width(),
        w => w as usize,
    }
}

/// The widest path this CPU supports, ignoring any override.
pub fn detected_width() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return 8;
        }
        if is_x86_feature_detected!("avx2") {
            return 4;
        }
    }
    1
}

/// Force the dispatch width in-process (bench/test hook). Requests wider
/// than the CPU supports are clamped down; returns the width actually in
/// effect. Kernels already running on other threads finish at the old
/// width, so only call this between kernel invocations.
pub fn set_width(requested: usize) -> usize {
    let w = clamp_width(requested);
    WIDTH.store(w as u8, Relaxed);
    w
}

#[cold]
fn init_width() -> usize {
    let req = std::env::var("QPINN_SIMD")
        .ok()
        .and_then(|v| parse_width(&v));
    let w = clamp_width(req.unwrap_or(usize::MAX));
    WIDTH.store(w as u8, Relaxed);
    w
}

fn parse_width(v: &str) -> Option<usize> {
    match v.trim().to_ascii_lowercase().as_str() {
        "scalar" | "1" => Some(1),
        "avx2" | "4" => Some(4),
        "avx512" | "8" => Some(8),
        _ => None, // unknown values fall back to auto-detection
    }
}

fn clamp_width(req: usize) -> usize {
    let d = detected_width();
    if req >= 8 && d >= 8 {
        8
    } else if req >= 4 && d >= 4 {
        4
    } else {
        1
    }
}

// ---------------------------------------------------------------------------
// Lane abstraction: one trait, three implementations (f64 / __m256d /
// __m512d). Algorithms are written once against the trait as
// #[inline(always)] functions and instantiated inside #[target_feature]
// shims so the intrinsics inline into feature-enabled code.
// ---------------------------------------------------------------------------

/// A pack of `W` f64 lanes with IEEE elementwise semantics. `min`/`max`
/// follow the `minpd`/`maxpd` convention (second operand on NaN); there is
/// deliberately no fused multiply-add.
pub(crate) trait Lanes: Copy {
    /// Lane count.
    const W: usize;
    /// Comparison result consumed by [`Lanes::select`].
    type Mask: Copy;
    unsafe fn splat(v: f64) -> Self;
    unsafe fn load(s: &[f64]) -> Self;
    unsafe fn store(self, d: &mut [f64]);
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn sub(self, o: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    unsafe fn div(self, o: Self) -> Self;
    unsafe fn sqrt(self) -> Self;
    unsafe fn floor(self) -> Self;
    /// `self < o ? self : o` (returns `o` when unordered, like `minpd`).
    unsafe fn min(self, o: Self) -> Self;
    /// `self > o ? self : o` (returns `o` when unordered, like `maxpd`).
    unsafe fn max(self, o: Self) -> Self;
    unsafe fn and(self, o: Self) -> Self;
    unsafe fn or(self, o: Self) -> Self;
    unsafe fn xor(self, o: Self) -> Self;
    /// `(!self) & o` — the `andnot_pd` operand order.
    unsafe fn andnot(self, o: Self) -> Self;
    unsafe fn lt(self, o: Self) -> Self::Mask;
    /// Per-lane `m ? t : f`.
    unsafe fn select(m: Self::Mask, t: Self, f: Self) -> Self;
    /// `self · 2ⁿ` for `n` holding exact integral values in `[-1022, 1024]`,
    /// via two half-exponent scalings so `2¹⁰²⁴` never has to exist as a
    /// single factor.
    unsafe fn ldexp(self, n: Self) -> Self;
}

impl Lanes for f64 {
    const W: usize = 1;
    type Mask = bool;
    #[inline(always)]
    unsafe fn splat(v: f64) -> Self {
        v
    }
    #[inline(always)]
    unsafe fn load(s: &[f64]) -> Self {
        s[0]
    }
    #[inline(always)]
    unsafe fn store(self, d: &mut [f64]) {
        d[0] = self;
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        self / o
    }
    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    unsafe fn floor(self) -> Self {
        f64::floor(self)
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        if self < o {
            self
        } else {
            o
        }
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        if self > o {
            self
        } else {
            o
        }
    }
    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() & o.to_bits())
    }
    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() | o.to_bits())
    }
    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        f64::from_bits(self.to_bits() ^ o.to_bits())
    }
    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        f64::from_bits(!self.to_bits() & o.to_bits())
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> bool {
        self < o
    }
    #[inline(always)]
    unsafe fn select(m: bool, t: Self, f: Self) -> Self {
        if m {
            t
        } else {
            f
        }
    }
    #[inline(always)]
    unsafe fn ldexp(self, n: Self) -> Self {
        let n = n as i64;
        let n1 = n >> 1;
        let n2 = n - n1;
        let s1 = f64::from_bits(((n1 + 1023) << 52) as u64);
        let s2 = f64::from_bits(((n2 + 1023) << 52) as u64);
        self * s1 * s2
    }
}

/// 4 × f64 via AVX2.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub(crate) struct V4(__m256d);

#[cfg(target_arch = "x86_64")]
impl Lanes for V4 {
    const W: usize = 4;
    type Mask = __m256d;
    #[inline(always)]
    unsafe fn splat(v: f64) -> Self {
        V4(_mm256_set1_pd(v))
    }
    #[inline(always)]
    unsafe fn load(s: &[f64]) -> Self {
        debug_assert!(s.len() >= 4);
        V4(_mm256_loadu_pd(s.as_ptr()))
    }
    #[inline(always)]
    unsafe fn store(self, d: &mut [f64]) {
        debug_assert!(d.len() >= 4);
        _mm256_storeu_pd(d.as_mut_ptr(), self.0);
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        V4(_mm256_add_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        V4(_mm256_sub_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        V4(_mm256_mul_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        V4(_mm256_div_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        V4(_mm256_sqrt_pd(self.0))
    }
    #[inline(always)]
    unsafe fn floor(self) -> Self {
        V4(_mm256_floor_pd(self.0))
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        V4(_mm256_min_pd(o.0, self.0))
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        V4(_mm256_max_pd(o.0, self.0))
    }
    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        V4(_mm256_and_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        V4(_mm256_or_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        V4(_mm256_xor_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        V4(_mm256_andnot_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> __m256d {
        _mm256_cmp_pd::<_CMP_LT_OQ>(self.0, o.0)
    }
    #[inline(always)]
    unsafe fn select(m: __m256d, t: Self, f: Self) -> Self {
        V4(_mm256_blendv_pd(f.0, t.0, m))
    }
    #[inline(always)]
    unsafe fn ldexp(self, n: Self) -> Self {
        let n32 = _mm256_cvtpd_epi32(n.0);
        let n1 = _mm_srai_epi32::<1>(n32);
        let n2 = _mm_sub_epi32(n32, n1);
        let bias = _mm256_set1_epi64x(1023);
        let s1 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
            _mm256_cvtepi32_epi64(n1),
            bias,
        )));
        let s2 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
            _mm256_cvtepi32_epi64(n2),
            bias,
        )));
        V4(_mm256_mul_pd(_mm256_mul_pd(self.0, s1), s2))
    }
}

/// 8 × f64 via AVX-512F.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub(crate) struct V8(__m512d);

#[cfg(target_arch = "x86_64")]
impl Lanes for V8 {
    const W: usize = 8;
    type Mask = __mmask8;
    #[inline(always)]
    unsafe fn splat(v: f64) -> Self {
        V8(_mm512_set1_pd(v))
    }
    #[inline(always)]
    unsafe fn load(s: &[f64]) -> Self {
        debug_assert!(s.len() >= 8);
        V8(_mm512_loadu_pd(s.as_ptr()))
    }
    #[inline(always)]
    unsafe fn store(self, d: &mut [f64]) {
        debug_assert!(d.len() >= 8);
        _mm512_storeu_pd(d.as_mut_ptr(), self.0);
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        V8(_mm512_add_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        V8(_mm512_sub_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        V8(_mm512_mul_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn div(self, o: Self) -> Self {
        V8(_mm512_div_pd(self.0, o.0))
    }
    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        V8(_mm512_sqrt_pd(self.0))
    }
    #[inline(always)]
    unsafe fn floor(self) -> Self {
        V8(_mm512_roundscale_pd::<0x01>(self.0)) // round toward −∞
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        V8(_mm512_min_pd(o.0, self.0))
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        V8(_mm512_max_pd(o.0, self.0))
    }
    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        V8(_mm512_castsi512_pd(_mm512_and_si512(
            _mm512_castpd_si512(self.0),
            _mm512_castpd_si512(o.0),
        )))
    }
    #[inline(always)]
    unsafe fn or(self, o: Self) -> Self {
        V8(_mm512_castsi512_pd(_mm512_or_si512(
            _mm512_castpd_si512(self.0),
            _mm512_castpd_si512(o.0),
        )))
    }
    #[inline(always)]
    unsafe fn xor(self, o: Self) -> Self {
        V8(_mm512_castsi512_pd(_mm512_xor_si512(
            _mm512_castpd_si512(self.0),
            _mm512_castpd_si512(o.0),
        )))
    }
    #[inline(always)]
    unsafe fn andnot(self, o: Self) -> Self {
        V8(_mm512_castsi512_pd(_mm512_andnot_si512(
            _mm512_castpd_si512(self.0),
            _mm512_castpd_si512(o.0),
        )))
    }
    #[inline(always)]
    unsafe fn lt(self, o: Self) -> __mmask8 {
        _mm512_cmp_pd_mask::<_CMP_LT_OQ>(self.0, o.0)
    }
    #[inline(always)]
    unsafe fn select(m: __mmask8, t: Self, f: Self) -> Self {
        V8(_mm512_mask_blend_pd(m, f.0, t.0))
    }
    #[inline(always)]
    unsafe fn ldexp(self, n: Self) -> Self {
        let n32 = _mm512_cvtpd_epi32(n.0);
        let n1 = _mm256_srai_epi32::<1>(n32);
        let n2 = _mm256_sub_epi32(n32, n1);
        let bias = _mm512_set1_epi64(1023);
        let s1 = _mm512_castsi512_pd(_mm512_slli_epi64::<52>(_mm512_add_epi64(
            _mm512_cvtepi32_epi64(n1),
            bias,
        )));
        let s2 = _mm512_castsi512_pd(_mm512_slli_epi64::<52>(_mm512_add_epi64(
            _mm512_cvtepi32_epi64(n2),
            bias,
        )));
        V8(_mm512_mul_pd(_mm512_mul_pd(self.0, s1), s2))
    }
}

// ---------------------------------------------------------------------------
// Transcendental cores: Cephes-style exp and tanh written once against
// `Lanes`. Every path — including the scalar fallback — runs this exact
// operation sequence, which is what makes results width-invariant.
// ---------------------------------------------------------------------------

const EXP_HI: f64 = 709.782712893383996732;
const EXP_LO: f64 = -708.396418532264106224;
const LOG2E: f64 = 1.44269504088896340736;
/// Cody–Waite split of ln 2 (high part exactly representable).
const LN2_HI: f64 = 6.93145751953125e-1;
const LN2_LO: f64 = 1.42860682030941723212e-6;
const EXP_P: [f64; 3] = [
    1.26177193074810590878e-4,
    3.02994407707441961300e-2,
    9.99999999999999999910e-1,
];
const EXP_Q: [f64; 4] = [
    3.00198505138664455042e-6,
    2.52448340349684104192e-3,
    2.27265548208155028766e-1,
    2.00000000000000000005e0,
];
const TANH_P: [f64; 3] = [
    -9.64399179425052238628e-1,
    -9.92877231001918586564e1,
    -1.61468768441708447952e3,
];
const TANH_Q: [f64; 3] = [
    1.12811678491632931402e2,
    2.23548839060100448583e3,
    4.84406305325125486048e3,
];
/// Below this |x| the rational polynomial is used; above it, the exp form.
const TANH_CUT: f64 = 0.625;

/// `eˣ` with Cody–Waite range reduction, a 2/2 rational kernel and
/// two-step exponent scaling. Under/overflow saturate to 0 / +∞.
#[inline(always)]
unsafe fn exp_l<L: Lanes>(x: L) -> L {
    let hi = L::splat(EXP_HI);
    let lo = L::splat(EXP_LO);
    let under = x.lt(lo);
    let over = hi.lt(x);
    let xc = x.min(hi).max(lo);
    let n = xc.mul(L::splat(LOG2E)).add(L::splat(0.5)).floor();
    let r = xc.sub(n.mul(L::splat(LN2_HI))).sub(n.mul(L::splat(LN2_LO)));
    let rr = r.mul(r);
    let p = L::splat(EXP_P[0])
        .mul(rr)
        .add(L::splat(EXP_P[1]))
        .mul(rr)
        .add(L::splat(EXP_P[2]))
        .mul(r);
    let q = L::splat(EXP_Q[0])
        .mul(rr)
        .add(L::splat(EXP_Q[1]))
        .mul(rr)
        .add(L::splat(EXP_Q[2]))
        .mul(rr)
        .add(L::splat(EXP_Q[3]));
    let e = L::splat(1.0)
        .add(L::splat(2.0).mul(p.div(q.sub(p))))
        .ldexp(n);
    let e = L::select(under, L::splat(0.0), e);
    L::select(over, L::splat(f64::INFINITY), e)
}

/// `tanh x`: rational polynomial for |x| < 0.625, `sign · (1 − 2z/(1+z))`
/// with `z = e^{−2|x|}` beyond. Both branches are evaluated and blended so
/// scalar and vector paths stay instruction-for-instruction identical.
#[inline(always)]
unsafe fn tanh_l<L: Lanes>(x: L) -> L {
    let neg0 = L::splat(-0.0);
    let sign = x.and(neg0);
    let a = neg0.andnot(x);
    let s = x.mul(x);
    let p = L::splat(TANH_P[0])
        .mul(s)
        .add(L::splat(TANH_P[1]))
        .mul(s)
        .add(L::splat(TANH_P[2]));
    let q = s
        .add(L::splat(TANH_Q[0]))
        .mul(s)
        .add(L::splat(TANH_Q[1]))
        .mul(s)
        .add(L::splat(TANH_Q[2]));
    let small = x.add(x.mul(s).mul(p.div(q)));
    let z = exp_l(L::splat(-2.0).mul(a));
    let large = L::splat(1.0)
        .sub(L::splat(2.0).mul(z).div(L::splat(1.0).add(z)))
        .or(sign);
    L::select(a.lt(L::splat(TANH_CUT)), small, large)
}

// ---------------------------------------------------------------------------
// Elementwise drive loops. `c` is an optional scalar operand (ignored by
// ops that do not need one); tails shorter than a vector run the identical
// algorithm through the f64 lane.
// ---------------------------------------------------------------------------

/// A `dst[i] = f(c, src[i])` kernel body.
pub(crate) trait MapOp {
    unsafe fn ap<L: Lanes>(c: L, x: L) -> L;
}

/// A `dst[i] = f(a[i], b[i])` kernel body.
pub(crate) trait BinOp {
    unsafe fn ap<L: Lanes>(x: L, y: L) -> L;
}

macro_rules! map_op {
    ($name:ident, |$c:ident, $x:ident| $body:expr) => {
        pub(crate) struct $name;
        impl MapOp for $name {
            #[inline(always)]
            unsafe fn ap<L: Lanes>($c: L, $x: L) -> L {
                $body
            }
        }
    };
}

macro_rules! bin_op {
    ($name:ident, |$x:ident, $y:ident| $body:expr) => {
        pub(crate) struct $name;
        impl BinOp for $name {
            #[inline(always)]
            unsafe fn ap<L: Lanes>($x: L, $y: L) -> L {
                $body
            }
        }
    };
}

bin_op!(OpAdd, |x, y| x.add(y));
bin_op!(OpSub, |x, y| x.sub(y));
bin_op!(OpMul, |x, y| x.mul(y));
bin_op!(OpDiv, |x, y| x.div(y));
// g · (1 − y²): the tanh backward fused into one pass.
bin_op!(OpGradTanh, |g, y| g.mul(L::splat(1.0).sub(y.mul(y))));

map_op!(OpScale, |c, x| c.mul(x));
map_op!(OpAddScalar, |c, x| c.add(x));
map_op!(OpNeg, |_c, x| x.xor(L::splat(-0.0)));
map_op!(OpSquare, |_c, x| x.mul(x));
map_op!(OpSqrt, |_c, x| x.sqrt());
map_op!(OpAbs, |_c, x| L::splat(-0.0).andnot(x));
// c / x with c = 1 is the reciprocal.
map_op!(OpRecipOf, |c, x| c.div(x));
// c − x² with c = 1 is the tanh derivative from the stored activation.
map_op!(OpConstMinusSquare, |c, x| c.sub(x.mul(x)));
map_op!(OpTanh, |_c, x| tanh_l(x));
map_op!(OpExp, |_c, x| exp_l(x));

#[inline(always)]
unsafe fn map_drive<L: Lanes, O: MapOp>(c: f64, src: &[f64], dst: &mut [f64]) {
    let w = L::W;
    let main = src.len() - src.len() % w;
    let cv = L::splat(c);
    let (sm, st) = src.split_at(main);
    let (dm, dt) = dst.split_at_mut(main);
    for (dc, sc) in dm.chunks_exact_mut(w).zip(sm.chunks_exact(w)) {
        O::ap(cv, L::load(sc)).store(dc);
    }
    if L::W > 1 {
        map_drive::<f64, O>(c, st, dt);
    }
}

#[inline(always)]
unsafe fn map_inplace_drive<L: Lanes, O: MapOp>(c: f64, d: &mut [f64]) {
    let w = L::W;
    let main = d.len() - d.len() % w;
    let cv = L::splat(c);
    let (dm, dt) = d.split_at_mut(main);
    for dc in dm.chunks_exact_mut(w) {
        O::ap(cv, L::load(dc)).store(dc);
    }
    if L::W > 1 {
        map_inplace_drive::<f64, O>(c, dt);
    }
}

#[inline(always)]
unsafe fn bin_drive<L: Lanes, O: BinOp>(a: &[f64], b: &[f64], dst: &mut [f64]) {
    let w = L::W;
    let main = a.len() - a.len() % w;
    let (am, at) = a.split_at(main);
    let (bm, bt) = b.split_at(main);
    let (dm, dt) = dst.split_at_mut(main);
    for ((dc, ac), bc) in dm
        .chunks_exact_mut(w)
        .zip(am.chunks_exact(w))
        .zip(bm.chunks_exact(w))
    {
        O::ap(L::load(ac), L::load(bc)).store(dc);
    }
    if L::W > 1 {
        bin_drive::<f64, O>(at, bt, dt);
    }
}

#[inline(always)]
unsafe fn axpy_drive<L: Lanes>(alpha: f64, x: &[f64], y: &mut [f64]) {
    let w = L::W;
    let main = x.len() - x.len() % w;
    let av = L::splat(alpha);
    let (xm, xt) = x.split_at(main);
    let (ym, yt) = y.split_at_mut(main);
    for (yc, xc) in ym.chunks_exact_mut(w).zip(xm.chunks_exact(w)) {
        L::load(yc).add(av.mul(L::load(xc))).store(yc);
    }
    if L::W > 1 {
        axpy_drive::<f64>(alpha, xt, yt);
    }
}

/// Panel of `nk` fused axpy sweeps: `out[j] += Σ_t coeffs[t·cstride] ·
/// b[t·ldb + j]`, ascending `t`. Per element this is the identical
/// mul-then-add chain a sequence of `nk` [`vaxpy`] calls produces — the
/// register accumulator only replaces an exact store/reload round trip —
/// so the result is bit-identical to the unfused sequence at every width.
#[inline(always)]
unsafe fn axpy_panel_drive<L: Lanes>(
    coeffs: &[f64],
    cstride: usize,
    nk: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
) {
    let n = out.len();
    let w = L::W;
    let main = n - n % w;
    let mut j = 0;
    while j < main {
        let mut acc = L::load(&out[j..]);
        for t in 0..nk {
            acc = acc.add(L::splat(coeffs[t * cstride]).mul(L::load(&b[t * ldb + j..])));
        }
        acc.store(&mut out[j..]);
        j += w;
    }
    for j in main..n {
        let mut acc = out[j];
        for t in 0..nk {
            acc += coeffs[t * cstride] * b[t * ldb + j];
        }
        out[j] = acc;
    }
}

#[inline(always)]
unsafe fn tanh_deriv_drive<L: Lanes>(src: &[f64], t_out: &mut [f64], d_out: &mut [f64]) {
    let w = L::W;
    let main = src.len() - src.len() % w;
    let one = L::splat(1.0);
    let (sm, st) = src.split_at(main);
    let (tm, tt) = t_out.split_at_mut(main);
    let (dm, dt) = d_out.split_at_mut(main);
    for ((sc, tc), dc) in sm
        .chunks_exact(w)
        .zip(tm.chunks_exact_mut(w))
        .zip(dm.chunks_exact_mut(w))
    {
        let t = tanh_l(L::load(sc));
        t.store(tc);
        one.sub(t.mul(t)).store(dc);
    }
    if L::W > 1 {
        tanh_deriv_drive::<f64>(st, tt, dt);
    }
}

// ---------------------------------------------------------------------------
// Target-feature shims: the only unsafe boundary. Dispatch guarantees a
// shim is entered only when its feature was detected.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn map_w4<O: MapOp>(c: f64, s: &[f64], d: &mut [f64]) {
    map_drive::<V4, O>(c, s, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn map_w8<O: MapOp>(c: f64, s: &[f64], d: &mut [f64]) {
    map_drive::<V8, O>(c, s, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn map_inplace_w4<O: MapOp>(c: f64, d: &mut [f64]) {
    map_inplace_drive::<V4, O>(c, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn map_inplace_w8<O: MapOp>(c: f64, d: &mut [f64]) {
    map_inplace_drive::<V8, O>(c, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bin_w4<O: BinOp>(a: &[f64], b: &[f64], d: &mut [f64]) {
    bin_drive::<V4, O>(a, b, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bin_w8<O: BinOp>(a: &[f64], b: &[f64], d: &mut [f64]) {
    bin_drive::<V8, O>(a, b, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_w4(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_drive::<V4>(alpha, x, y)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_w8(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_drive::<V8>(alpha, x, y)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_panel_w4(c: &[f64], cs: usize, nk: usize, b: &[f64], ldb: usize, o: &mut [f64]) {
    axpy_panel_drive::<V4>(c, cs, nk, b, ldb, o)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_panel_w8(c: &[f64], cs: usize, nk: usize, b: &[f64], ldb: usize, o: &mut [f64]) {
    axpy_panel_drive::<V8>(c, cs, nk, b, ldb, o)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tanh_deriv_w4(s: &[f64], t: &mut [f64], d: &mut [f64]) {
    tanh_deriv_drive::<V4>(s, t, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tanh_deriv_w8(s: &[f64], t: &mut [f64], d: &mut [f64]) {
    tanh_deriv_drive::<V8>(s, t, d)
}

// ---------------------------------------------------------------------------
// Dispatched kernels (crate-internal API).
// ---------------------------------------------------------------------------

#[inline]
pub(crate) fn map_k<O: MapOp>(c: f64, s: &[f64], d: &mut [f64]) {
    debug_assert_eq!(s.len(), d.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { map_w4::<O>(c, s, d) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { map_w8::<O>(c, s, d) },
        _ => unsafe { map_drive::<f64, O>(c, s, d) },
    }
}

#[inline]
pub(crate) fn map_inplace_k<O: MapOp>(c: f64, d: &mut [f64]) {
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { map_inplace_w4::<O>(c, d) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { map_inplace_w8::<O>(c, d) },
        _ => unsafe { map_inplace_drive::<f64, O>(c, d) },
    }
}

#[inline]
pub(crate) fn bin_k<O: BinOp>(a: &[f64], b: &[f64], d: &mut [f64]) {
    debug_assert!(a.len() == b.len() && a.len() == d.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { bin_w4::<O>(a, b, d) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { bin_w8::<O>(a, b, d) },
        _ => unsafe { bin_drive::<f64, O>(a, b, d) },
    }
}

/// `y += alpha · x` (no FMA, so bit-identical at every width).
#[inline]
pub(crate) fn vaxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { axpy_w4(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { axpy_w8(alpha, x, y) },
        _ => unsafe { axpy_drive::<f64>(alpha, x, y) },
    }
}

/// `out[j] += Σ_t coeffs[t·cstride] · b[t·ldb + j]` for `t` ascending —
/// the matmul k-panel. Equivalent to `nk` successive [`vaxpy`] calls but
/// pays the dispatch cost once per panel (the inner sweeps of a `[m,32]·
/// [32,32]` product are far too short to amortize a per-sweep indirect
/// call) and keeps the output row in registers across the whole panel.
/// Bit-identical to the unfused sequence at every width.
#[inline]
pub(crate) fn vaxpy_panel(
    coeffs: &[f64],
    cstride: usize,
    nk: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
) {
    if nk == 0 || out.is_empty() {
        return;
    }
    debug_assert!(coeffs.len() > (nk - 1) * cstride);
    debug_assert!(b.len() >= (nk - 1) * ldb + out.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { axpy_panel_w4(coeffs, cstride, nk, b, ldb, out) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { axpy_panel_w8(coeffs, cstride, nk, b, ldb, out) },
        _ => unsafe { axpy_panel_drive::<f64>(coeffs, cstride, nk, b, ldb, out) },
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_panel_w4(a: &[f64], b: &[f64], ldb: usize, out: &mut [f64]) {
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot_w4(a, &b[j * ldb..j * ldb + a.len()]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_panel_w8(a: &[f64], b: &[f64], ldb: usize, out: &mut [f64]) {
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot_w8(a, &b[j * ldb..j * ldb + a.len()]);
    }
}

/// `out[j] = a · b[j·ldb ..][..a.len()]` — a panel of row dots sharing one
/// dispatch. Each dot uses the same fixed eight-lane accumulation as
/// [`vdot`], so results are bit-identical to per-call dispatch.
#[inline]
pub(crate) fn vdot_panel(a: &[f64], b: &[f64], ldb: usize, out: &mut [f64]) {
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { dot_panel_w4(a, b, ldb, out) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { dot_panel_w8(a, b, ldb, out) },
        _ => {
            for (j, o) in out.iter_mut().enumerate() {
                *o = dot_w1(a, &b[j * ldb..j * ldb + a.len()]);
            }
        }
    }
}

/// `t[i] = tanh(s[i])`, `d[i] = 1 − t[i]²` in a single sweep.
#[inline]
pub(crate) fn vtanh_with_deriv(s: &[f64], t: &mut [f64], d: &mut [f64]) {
    debug_assert!(s.len() == t.len() && s.len() == d.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { tanh_deriv_w4(s, t, d) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { tanh_deriv_w8(s, t, d) },
        _ => unsafe { tanh_deriv_drive::<f64>(s, t, d) },
    }
}

// ---------------------------------------------------------------------------
// Reductions: eight fixed accumulation lanes at every width.
// ---------------------------------------------------------------------------

#[inline(always)]
fn finish8(acc: &[f64; 8], tail: &[f64]) -> f64 {
    let mut t = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for &v in tail {
        t += v;
    }
    t
}

#[inline(always)]
fn finish8_sq(acc: &[f64; 8], tail: &[f64]) -> f64 {
    let mut t = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for &v in tail {
        t += v * v;
    }
    t
}

#[inline(always)]
fn finish8_dot(acc: &[f64; 8], xt: &[f64], yt: &[f64]) -> f64 {
    let mut t = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (xi, yi) in xt.iter().zip(yt) {
        t += xi * yi;
    }
    t
}

fn sum_w1(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut acc = [0.0f64; 8];
    for c in x[..main].chunks_exact(8) {
        for (a, v) in acc.iter_mut().zip(c) {
            *a += v;
        }
    }
    finish8(&acc, &x[main..])
}

fn sum_sq_w1(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut acc = [0.0f64; 8];
    for c in x[..main].chunks_exact(8) {
        for (a, v) in acc.iter_mut().zip(c) {
            *a += v * v;
        }
    }
    finish8_sq(&acc, &x[main..])
}

fn dot_w1(x: &[f64], y: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut acc = [0.0f64; 8];
    for (xc, yc) in x[..main].chunks_exact(8).zip(y[..main].chunks_exact(8)) {
        for ((a, xv), yv) in acc.iter_mut().zip(xc).zip(yc) {
            *a += xv * yv;
        }
    }
    finish8_dot(&acc, &x[main..], &y[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_w4(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    for c in x[..main].chunks_exact(8) {
        a0 = _mm256_add_pd(a0, _mm256_loadu_pd(c.as_ptr()));
        a1 = _mm256_add_pd(a1, _mm256_loadu_pd(c.as_ptr().add(4)));
    }
    let mut acc = [0.0f64; 8];
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
    finish8(&acc, &x[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_sq_w4(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    for c in x[..main].chunks_exact(8) {
        let v0 = _mm256_loadu_pd(c.as_ptr());
        let v1 = _mm256_loadu_pd(c.as_ptr().add(4));
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(v0, v0));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(v1, v1));
    }
    let mut acc = [0.0f64; 8];
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
    finish8_sq(&acc, &x[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_w4(x: &[f64], y: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    for (xc, yc) in x[..main].chunks_exact(8).zip(y[..main].chunks_exact(8)) {
        let x0 = _mm256_loadu_pd(xc.as_ptr());
        let x1 = _mm256_loadu_pd(xc.as_ptr().add(4));
        let y0 = _mm256_loadu_pd(yc.as_ptr());
        let y1 = _mm256_loadu_pd(yc.as_ptr().add(4));
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(x0, y0));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(x1, y1));
    }
    let mut acc = [0.0f64; 8];
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
    finish8_dot(&acc, &x[main..], &y[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sum_w8(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a = _mm512_setzero_pd();
    for c in x[..main].chunks_exact(8) {
        a = _mm512_add_pd(a, _mm512_loadu_pd(c.as_ptr()));
    }
    let mut acc = [0.0f64; 8];
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
    finish8(&acc, &x[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn sum_sq_w8(x: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a = _mm512_setzero_pd();
    for c in x[..main].chunks_exact(8) {
        let v = _mm512_loadu_pd(c.as_ptr());
        a = _mm512_add_pd(a, _mm512_mul_pd(v, v));
    }
    let mut acc = [0.0f64; 8];
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
    finish8_sq(&acc, &x[main..])
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_w8(x: &[f64], y: &[f64]) -> f64 {
    let main = x.len() - x.len() % 8;
    let mut a = _mm512_setzero_pd();
    for (xc, yc) in x[..main].chunks_exact(8).zip(y[..main].chunks_exact(8)) {
        let xv = _mm512_loadu_pd(xc.as_ptr());
        let yv = _mm512_loadu_pd(yc.as_ptr());
        a = _mm512_add_pd(a, _mm512_mul_pd(xv, yv));
    }
    let mut acc = [0.0f64; 8];
    _mm512_storeu_pd(acc.as_mut_ptr(), a);
    finish8_dot(&acc, &x[main..], &y[main..])
}

/// Sum with the fixed eight-lane association.
#[inline]
pub(crate) fn vsum(x: &[f64]) -> f64 {
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { sum_w4(x) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { sum_w8(x) },
        _ => sum_w1(x),
    }
}

/// Sum of squares with the fixed eight-lane association.
#[inline]
pub(crate) fn vsum_sq(x: &[f64]) -> f64 {
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { sum_sq_w4(x) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { sum_sq_w8(x) },
        _ => sum_sq_w1(x),
    }
}

/// Dot product with the fixed eight-lane association.
#[inline]
pub(crate) fn vdot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    match width() {
        #[cfg(target_arch = "x86_64")]
        4 => unsafe { dot_w4(x, y) },
        #[cfg(target_arch = "x86_64")]
        8 => unsafe { dot_w8(x, y) },
        _ => dot_w1(x, y),
    }
}

/// Tests that flip the global dispatch width serialize on this.
#[cfg(test)]
pub(crate) static WIDTH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with the dispatch forced to `w` lanes, restoring the previous
/// width afterwards. Returns `None` when the host cannot run `w` lanes.
/// Callers must hold [`WIDTH_LOCK`].
#[cfg(test)]
pub(crate) fn with_width<R>(w: usize, f: impl FnOnce() -> R) -> Option<R> {
    if clamp_width(w) != w {
        return None; // width not available on this host
    }
    let prev = width();
    set_width(w);
    let r = f();
    set_width(prev);
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward(n: usize) -> Vec<f64> {
        // Mixed magnitudes and signs, including values that straddle the
        // tanh branch point and exp's reduction boundaries.
        (0..n)
            .map(|i| {
                let t = (i as f64 * 0.7251).sin() * 10f64.powi((i % 13) as i32 - 6);
                if i % 7 == 0 {
                    -t
                } else {
                    t
                }
            })
            .collect()
    }

    #[test]
    fn env_parsing_and_clamping() {
        assert_eq!(parse_width("scalar"), Some(1));
        assert_eq!(parse_width("AVX2"), Some(4));
        assert_eq!(parse_width(" 8 "), Some(8));
        assert_eq!(parse_width("weird"), None);
        assert_eq!(clamp_width(1), 1);
        assert!(clamp_width(usize::MAX) == detected_width());
    }

    #[test]
    fn exp_matches_libm_to_ulps() {
        let _g = WIDTH_LOCK.lock().unwrap();
        for w in [1usize, 4, 8] {
            with_width(w, || {
                for &x in &[
                    0.0, 1.0, -1.0, 0.5, -0.5, 10.0, -10.0, 100.0, -100.0, 700.0, -700.0,
                    1e-8, -1e-8, 0.6931471805599453, 709.7, -708.3,
                ] {
                    let mut out = [0.0];
                    map_k::<OpExp>(0.0, &[x], &mut out);
                    let want = x.exp();
                    let rel = ((out[0] - want) / want.max(f64::MIN_POSITIVE)).abs();
                    assert!(rel < 1e-13, "w{w} exp({x}) = {} want {want}", out[0]);
                }
                // saturation
                let mut out = [0.0, 0.0];
                map_k::<OpExp>(0.0, &[800.0, -800.0], &mut out);
                assert_eq!(out[0], f64::INFINITY);
                assert_eq!(out[1], 0.0);
            });
        }
    }

    #[test]
    fn tanh_matches_libm_to_ulps() {
        let _g = WIDTH_LOCK.lock().unwrap();
        for w in [1usize, 4, 8] {
            with_width(w, || {
                for &x in &[
                    0.0, 1e-12, -1e-12, 0.1, -0.1, 0.624, 0.626, -0.625, 1.0, -3.0, 19.0,
                    -19.0, 40.0, -40.0, 1e3, -1e3, f64::INFINITY, f64::NEG_INFINITY,
                ] {
                    let mut out = [0.0];
                    map_k::<OpTanh>(0.0, &[x], &mut out);
                    let want = x.tanh();
                    assert!(
                        (out[0] - want).abs() < 1e-14,
                        "w{w} tanh({x}) = {} want {want}",
                        out[0]
                    );
                }
            });
        }
    }

    #[test]
    fn all_widths_bit_identical_on_every_kernel() {
        let _g = WIDTH_LOCK.lock().unwrap();
        // Ragged length exercises the tail lanes.
        let x = awkward(1003);
        let y: Vec<f64> = x.iter().map(|v| v * 0.37 + 0.11).collect();
        let run = |w: usize| {
            with_width(w, || {
                let mut r: Vec<u64> = Vec::new();
                r.push(vsum(&x).to_bits());
                r.push(vsum_sq(&x).to_bits());
                r.push(vdot(&x, &y).to_bits());
                let mut d = vec![0.0; x.len()];
                bin_k::<OpAdd>(&x, &y, &mut d);
                r.extend(d.iter().map(|v| v.to_bits()));
                bin_k::<OpMul>(&x, &y, &mut d);
                r.extend(d.iter().map(|v| v.to_bits()));
                map_k::<OpTanh>(0.0, &x, &mut d);
                r.extend(d.iter().map(|v| v.to_bits()));
                map_k::<OpExp>(0.0, &x, &mut d);
                r.extend(d.iter().map(|v| v.to_bits()));
                let mut a = y.clone();
                vaxpy(0.77, &x, &mut a);
                r.extend(a.iter().map(|v| v.to_bits()));
                let mut t = vec![0.0; x.len()];
                vtanh_with_deriv(&x, &mut t, &mut d);
                r.extend(t.iter().map(|v| v.to_bits()));
                r.extend(d.iter().map(|v| v.to_bits()));
                r
            })
        };
        let want = run(1).expect("scalar always available");
        for w in [4usize, 8] {
            if let Some(got) = run(w) {
                assert_eq!(got, want, "width {w} diverged from scalar bits");
            }
        }
    }

    #[test]
    fn ldexp_edges() {
        let _g = WIDTH_LOCK.lock().unwrap();
        // exp just below overflow must stay finite, just above must be inf.
        for w in [1usize, 4, 8] {
            with_width(w, || {
                let mut out = [0.0];
                map_k::<OpExp>(0.0, &[709.7], &mut out);
                assert!(out[0].is_finite() && out[0] > 1e308);
                map_k::<OpExp>(0.0, &[-708.0], &mut out);
                assert!(out[0] > 0.0 && out[0] < 1e-307);
            });
        }
    }
}
