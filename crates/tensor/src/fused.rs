//! Fused single-pass kernels for the chains that dominate PINN residuals.
//!
//! The reverse-mode tape historically materialized every link of
//! `tanh → square → neg → add_scalar` and `matmul → add_bias → tanh` as a
//! separate tensor. These kernels collapse the two hottest chains:
//!
//! * [`Tensor::tanh_with_deriv`] — `tanh x` and `1 − tanh²x` in one sweep
//!   over the input (the forward value and the exact backward factor);
//! * [`Tensor::affine_act`] — `act(X·W + b)` with the bias seeded into the
//!   output accumulator and the activation applied in place per row block,
//!   so the pre-activation matrix never exists.
//!
//! Both draw their outputs from the buffer pool ([`crate::pool`]) and run
//! on the dispatched SIMD width ([`crate::simd`]). Accumulation order in
//! `affine_act` is bias-first then ascending `k`, fixed by the blocking
//! constants — bit-identical at any pool width, though (by design) not
//! bit-identical to the unfused `matmul` + `add_row_broadcast` pair, whose
//! rounding sequence differs.

use crate::tune::{CHUNK, K_BLOCK, PAR_FLOPS, ROW_BLOCK};
use crate::{pool, simd, Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

/// Activation fused into [`Tensor::affine_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation: plain `X·W + b`.
    Identity,
    /// Hyperbolic tangent applied in place after accumulation.
    Tanh,
}

impl Tensor {
    /// `(tanh x, 1 − tanh²x)` in a single pass: the forward activation and
    /// its derivative, sharing one traversal of the input.
    pub fn tanh_with_deriv(&self) -> (Tensor, Tensor) {
        let n = self.len();
        let mut t = pool::take(n);
        let mut d = pool::take(n);
        let src = self.data();
        if n >= PAR_THRESHOLD {
            t.par_chunks_mut(CHUNK)
                .zip(d.par_chunks_mut(CHUNK).zip(src.par_chunks(CHUNK)))
                .for_each(|(tc, (dc, sc))| simd::vtanh_with_deriv(sc, tc, dc));
        } else {
            simd::vtanh_with_deriv(src, &mut t, &mut d);
        }
        (
            Tensor::from_vec(self.shape().clone(), t),
            Tensor::from_vec(self.shape().clone(), d),
        )
    }

    /// Elementwise `1 − x²` (the tanh derivative from a stored activation),
    /// fused into one kernel instead of `square → neg → add_scalar`.
    pub fn one_minus_square(&self) -> Tensor {
        self.map_simd::<simd::OpConstMinusSquare>(1.0)
    }

    /// Elementwise `self · (1 − y²)` — the tanh backward (upstream gradient
    /// times activation derivative) in one pass.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn grad_tanh(&self, y: &Tensor) -> Tensor {
        self.zip_simd::<simd::OpGradTanh>(y, "grad_tanh")
    }

    /// Fused affine layer `act(self · w + bias)` for rank-2 `self[m,k]`,
    /// `w[k,n]` and rank-1 `bias[n]`.
    ///
    /// The output block is seeded with the bias, the `X·W` contraction
    /// accumulates on top in ascending `k`, and the activation is applied
    /// in place per row block — one output allocation, no intermediate
    /// pre-activation tensor.
    ///
    /// # Panics
    /// Panics when shapes are incompatible.
    pub fn affine_act(&self, w: &Tensor, bias: &Tensor, act: FusedAct) -> Tensor {
        let (m, k) = (self.shape().nrows(), self.shape().ncols());
        let (kb, n) = (w.shape().nrows(), w.shape().ncols());
        assert_eq!(k, kb, "affine_act: {} · {}", self.shape(), w.shape());
        assert_eq!(
            bias.shape().dims(),
            &[n],
            "affine_act bias shape {} incompatible with {}",
            bias.shape(),
            w.shape()
        );
        let a = self.data();
        let wd = w.data();
        let bd = bias.data();
        let mut out = pool::take(m * n);
        if out.is_empty() {
            return Tensor::from_vec([m, n], out);
        }
        let body = |blk: usize, out_blk: &mut [f64]| {
            let i0 = blk * ROW_BLOCK;
            let rows = out_blk.len() / n;
            for row in out_blk.chunks_mut(n) {
                row.copy_from_slice(bd);
            }
            let mut kb0 = 0;
            while kb0 < k {
                let kb1 = (kb0 + K_BLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(i0 + r) * k..(i0 + r) * k + k];
                    let row_out = &mut out_blk[r * n..(r + 1) * n];
                    simd::vaxpy_panel(&a_row[kb0..kb1], 1, kb1 - kb0, &wd[kb0 * n..kb1 * n], n, row_out);
                }
                kb0 = kb1;
            }
            if matches!(act, FusedAct::Tanh) {
                simd::map_inplace_k::<simd::OpTanh>(0.0, out_blk);
            }
        };
        if m * k.max(1) * n >= PAR_FLOPS && m > ROW_BLOCK {
            out.par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(|(blk, chunk)| body(blk, chunk));
        } else {
            for (blk, chunk) in out.chunks_mut(ROW_BLOCK * n).enumerate() {
                body(blk, chunk);
            }
        }
        Tensor::from_vec([m, n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_with_deriv_matches_separate_ops() {
        let x = Tensor::from_slice(&[-3.0, -0.5, 0.0, 0.3, 2.0, 25.0, -0.625]);
        let (t, d) = x.tanh_with_deriv();
        for (i, &xi) in x.data().iter().enumerate() {
            assert!((t.data()[i] - xi.tanh()).abs() < 1e-14);
            let want = 1.0 - xi.tanh() * xi.tanh();
            assert!((d.data()[i] - want).abs() < 1e-14, "deriv at {xi}");
        }
    }

    #[test]
    fn one_minus_square_and_grad_tanh() {
        let y = Tensor::from_slice(&[0.5, -0.25, 0.0, 0.99]);
        let g = Tensor::from_slice(&[2.0, 1.0, -1.0, 0.5]);
        let d = y.one_minus_square();
        for (di, yi) in d.data().iter().zip(y.data()) {
            assert!((di - (1.0 - yi * yi)).abs() < 1e-15);
        }
        let gt = g.grad_tanh(&y);
        for ((gi, yi), oi) in g.data().iter().zip(y.data()).zip(gt.data()) {
            assert!((oi - gi * (1.0 - yi * yi)).abs() < 1e-15);
        }
    }

    #[test]
    fn affine_act_matches_unfused_chain() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for (m, k, n) in [(3, 4, 5), (17, 33, 9), (40, 7, 65), (1, 1, 1)] {
            let x = Tensor::from_vec(
                [m, k],
                (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>(),
            );
            let w = Tensor::from_vec(
                [k, n],
                (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>(),
            );
            let b = Tensor::from_vec(
                [n],
                (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>(),
            );
            let want_lin = x.matmul(&w).add_row_broadcast(&b);
            let got_lin = x.affine_act(&w, &b, FusedAct::Identity);
            assert!(got_lin.approx_eq(&want_lin, 1e-12), "identity {m}x{k}x{n}");
            let got_tanh = x.affine_act(&w, &b, FusedAct::Tanh);
            assert!(
                got_tanh.approx_eq(&want_lin.tanh(), 1e-12),
                "tanh {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn affine_act_zero_inner_dim_is_bias_row() {
        let x = Tensor::zeros([2, 0]);
        let w = Tensor::zeros([0, 3]);
        let b = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let y = x.affine_act(&w, &b, FusedAct::Identity);
        assert_eq!(y.row(0), &[1.0, -2.0, 0.5]);
        assert_eq!(y.row(1), &[1.0, -2.0, 0.5]);
    }
}
