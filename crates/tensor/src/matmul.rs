//! Matrix multiplication kernels.
//!
//! All three layouts needed by reverse-mode autodiff are provided directly
//! (rather than materializing transposes):
//!
//! * [`Tensor::matmul`] — `C = A·B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ·B` (weight gradients)
//! * [`Tensor::matmul_nt`] — `C = A·Bᵀ` (input gradients)
//!
//! Each kernel is an `i-k-j` loop (unit-stride inner loop over the output
//! row) parallelized over output rows with rayon when the work is large
//! enough to amortize the fork/join.

use crate::Tensor;
use rayon::prelude::*;

/// FLOP threshold above which matmul parallelizes over rows.
const PAR_FLOPS: usize = 64 * 1024;

impl Tensor {
    /// Standard product `C[m,n] = A[m,k] · B[k,n]`.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree or either operand is not rank 2.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        let (m, k) = (self.shape().nrows(), self.shape().ncols());
        let (kb, n) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(k, kb, "matmul: {} · {}", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        let mut out = vec![0.0; m * n];
        let body = |i: usize, row_out: &mut [f64]| {
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in row_out.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        };
        if m * k * n >= PAR_FLOPS && m > 1 {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| body(i, row));
        } else {
            for (i, row) in out.chunks_mut(n).enumerate() {
                body(i, row);
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Transposed-left product `C[k,n] = Aᵀ[k,m] · B[m,n]` for `A[m,k]`.
    ///
    /// # Panics
    /// Panics when row counts disagree.
    pub fn matmul_tn(&self, b: &Tensor) -> Tensor {
        let (m, k) = (self.shape().nrows(), self.shape().ncols());
        let (mb, n) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(m, mb, "matmul_tn: {}ᵀ · {}", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        // C[p, q] = Σ_i A[i, p] B[i, q]; parallelize over output rows p.
        let mut out = vec![0.0; k * n];
        let body = |p: usize, row_out: &mut [f64]| {
            for i in 0..m {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let b_row = &bd[i * n..(i + 1) * n];
                for (o, &bv) in row_out.iter_mut().zip(b_row) {
                    *o += aip * bv;
                }
            }
        };
        if m * k * n >= PAR_FLOPS && k > 1 {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(p, row)| body(p, row));
        } else {
            for (p, row) in out.chunks_mut(n).enumerate() {
                body(p, row);
            }
        }
        Tensor::from_vec([k, n], out)
    }

    /// Transposed-right product `C[m,k] = A[m,n] · Bᵀ[n,k]` for `B[k,n]`.
    ///
    /// # Panics
    /// Panics when column counts disagree.
    pub fn matmul_nt(&self, b: &Tensor) -> Tensor {
        let (m, n) = (self.shape().nrows(), self.shape().ncols());
        let (k, nb) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(n, nb, "matmul_nt: {} · {}ᵀ", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        // C[i, p] = Σ_j A[i, j] B[p, j]: both operands are walked along
        // contiguous rows, so this is a row-dot kernel.
        let mut out = vec![0.0; m * k];
        let body = |i: usize, row_out: &mut [f64]| {
            let a_row = &a[i * n..(i + 1) * n];
            for (p, o) in row_out.iter_mut().enumerate() {
                let b_row = &bd[p * n..(p + 1) * n];
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        };
        if m * n * k >= PAR_FLOPS && m > 1 {
            out.par_chunks_mut(k)
                .enumerate()
                .for_each(|(i, row)| body(i, row));
        } else {
            for (i, row) in out.chunks_mut(k).enumerate() {
                body(i, row);
            }
        }
        Tensor::from_vec([m, k], out)
    }

    /// Dot product of two rank-1 tensors (or any equal-shape tensors,
    /// treated flat).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().nrows(), a.shape().ncols());
        let n = b.shape().ncols();
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(&[i, p]) * b.get(&[p, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn small_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let c = a.matmul(&Tensor::eye(3));
        assert!(c.approx_eq(&a, 1e-15));
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0], &[4.0, 5.0, 6.0]]);
        let want = naive(&a.transpose(), &b);
        assert!(a.matmul_tn(&b).approx_eq(&want, 1e-12));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0]]);
        let want = naive(&a, &b.transpose());
        assert!(a.matmul_nt(&b).approx_eq(&want, 1e-12));
    }

    #[test]
    fn large_parallel_matches_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut rand_t = |m: usize, n: usize| {
            Tensor::from_vec(
                [m, n],
                (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>(),
            )
        };
        let a = rand_t(37, 53);
        let b = rand_t(53, 41);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&naive(&a, &b), 1e-10));
        assert!(a
            .matmul_tn(&c)
            .approx_eq(&naive(&a.transpose(), &c), 1e-10));
        assert!(c
            .matmul_nt(&b)
            .approx_eq(&naive(&c, &b.transpose()), 1e-10));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert!((a.dot(&b) - 12.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        let _ = a.matmul(&b);
    }
}
