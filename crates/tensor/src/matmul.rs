//! Matrix multiplication kernels.
//!
//! All three layouts needed by reverse-mode autodiff are provided directly
//! (rather than materializing transposes):
//!
//! * [`Tensor::matmul`] — `C = A·B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ·B` (weight gradients)
//! * [`Tensor::matmul_nt`] — `C = A·Bᵀ` (input gradients)
//!
//! Kernel shape, per the tuning constants in [`crate::tune`]:
//!
//! * the inner loops are **branchless** unit-stride `axpy`/dot sweeps on
//!   the dispatched SIMD width (see [`crate::simd`]) — the old per-element
//!   `aik == 0.0` skip was a mispredict tax on dense activations and is
//!   gone. Dispatch happens once per K/J panel (`vaxpy_panel` /
//!   `vdot_panel`), not per sweep, so short inner rows don't pay an
//!   atomic load and an uninlinable `#[target_feature]` call per `k`;
//! * work above [`crate::tune::PAR_FLOPS`] is parallelized over
//!   [`crate::tune::ROW_BLOCK`]-row output blocks on the real rayon pool;
//! * each task's loops are cache-blocked ([`crate::tune::K_BLOCK`] /
//!   [`crate::tune::J_BLOCK`]) so the shared B panel stays in L1/L2 while
//!   a block of output rows streams against it;
//! * `matmul_nt`'s row-dot kernel accumulates in eight fixed lanes to
//!   break the FP add dependency chain.
//!
//! Determinism: accumulation order over the contraction dimension is fixed
//! by the blocking constants and never by the thread count, so every
//! product is bit-identical at any pool width. The axpy inner loop is a
//! per-element multiply-add chain (no FMA, no reassociation), and the
//! row-dot's eight-lane split is the same at every dispatch width, so
//! products are also bit-identical across scalar/AVX2/AVX-512 dispatch.

use crate::tune::{J_BLOCK, K_BLOCK, PAR_FLOPS, ROW_BLOCK};
use crate::{simd, Tensor};
use rayon::prelude::*;

impl Tensor {
    /// Standard product `C[m,n] = A[m,k] · B[k,n]`.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree or either operand is not rank 2.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        let (m, k) = (self.shape().nrows(), self.shape().ncols());
        let (kb, n) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(k, kb, "matmul: {} · {}", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        let mut out = vec![0.0; m * n];
        if out.is_empty() || k == 0 {
            return Tensor::from_vec([m, n], out);
        }
        // One task owns ROW_BLOCK output rows; the k loop is tiled so the
        // B panel (K_BLOCK × n doubles) stays hot in cache across the
        // block's rows. Tiling leaves the per-element accumulation order
        // (ascending k) unchanged, so results are bit-identical to the
        // untiled i-k-j kernel.
        let body = |blk: usize, out_blk: &mut [f64]| {
            let i0 = blk * ROW_BLOCK;
            let rows = out_blk.len() / n;
            let mut kb0 = 0;
            while kb0 < k {
                let kb1 = (kb0 + K_BLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(i0 + r) * k..(i0 + r) * k + k];
                    let row_out = &mut out_blk[r * n..(r + 1) * n];
                    simd::vaxpy_panel(&a_row[kb0..kb1], 1, kb1 - kb0, &bd[kb0 * n..kb1 * n], n, row_out);
                }
                kb0 = kb1;
            }
        };
        if m * k * n >= PAR_FLOPS && m > ROW_BLOCK {
            out.par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(|(blk, chunk)| body(blk, chunk));
        } else {
            for (blk, chunk) in out.chunks_mut(ROW_BLOCK * n).enumerate() {
                body(blk, chunk);
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Transposed-left product `C[k,n] = Aᵀ[k,m] · B[m,n]` for `A[m,k]`.
    ///
    /// # Panics
    /// Panics when row counts disagree.
    pub fn matmul_tn(&self, b: &Tensor) -> Tensor {
        let (m, k) = (self.shape().nrows(), self.shape().ncols());
        let (mb, n) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(m, mb, "matmul_tn: {}ᵀ · {}", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        // C[p, q] = Σ_i A[i, p] B[i, q]; parallelize over blocks of output
        // rows p, tiling the reduction over i so the B panel is reused
        // across the block. Ascending-i accumulation order is preserved.
        let mut out = vec![0.0; k * n];
        if out.is_empty() || m == 0 {
            return Tensor::from_vec([k, n], out);
        }
        let body = |blk: usize, out_blk: &mut [f64]| {
            let p0 = blk * ROW_BLOCK;
            let rows = out_blk.len() / n;
            let mut ib0 = 0;
            while ib0 < m {
                let ib1 = (ib0 + K_BLOCK).min(m);
                for r in 0..rows {
                    let p = p0 + r;
                    let row_out = &mut out_blk[r * n..(r + 1) * n];
                    simd::vaxpy_panel(&a[ib0 * k + p..], k, ib1 - ib0, &bd[ib0 * n..ib1 * n], n, row_out);
                }
                ib0 = ib1;
            }
        };
        if m * k * n >= PAR_FLOPS && k > ROW_BLOCK {
            out.par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(|(blk, chunk)| body(blk, chunk));
        } else {
            for (blk, chunk) in out.chunks_mut(ROW_BLOCK * n).enumerate() {
                body(blk, chunk);
            }
        }
        Tensor::from_vec([k, n], out)
    }

    /// Transposed-right product `C[m,k] = A[m,n] · Bᵀ[n,k]` for `B[k,n]`.
    ///
    /// # Panics
    /// Panics when column counts disagree.
    pub fn matmul_nt(&self, b: &Tensor) -> Tensor {
        let (m, n) = (self.shape().nrows(), self.shape().ncols());
        let (k, nb) = (b.shape().nrows(), b.shape().ncols());
        assert_eq!(n, nb, "matmul_nt: {} · {}ᵀ", self.shape(), b.shape());
        let a = self.data();
        let bd = b.data();
        // C[i, p] = Σ_j A[i, j] B[p, j]: both operands are walked along
        // contiguous rows, so this is a row-dot kernel. B rows are visited
        // in J_BLOCK panels reused across the task's row block, and each
        // dot runs in four independent accumulator lanes.
        let mut out = vec![0.0; m * k];
        if out.is_empty() {
            return Tensor::from_vec([m, k], out);
        }
        let body = |blk: usize, out_blk: &mut [f64]| {
            let i0 = blk * ROW_BLOCK;
            let rows = out_blk.len() / k;
            let mut pb0 = 0;
            while pb0 < k {
                let pb1 = (pb0 + J_BLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(i0 + r) * n..(i0 + r) * n + n];
                    let row_out = &mut out_blk[r * k..(r + 1) * k];
                    simd::vdot_panel(a_row, &bd[pb0 * n..pb1 * n], n, &mut row_out[pb0..pb1]);
                }
                pb0 = pb1;
            }
        };
        if m * n * k >= PAR_FLOPS && m > ROW_BLOCK {
            out.par_chunks_mut(ROW_BLOCK * k)
                .enumerate()
                .for_each(|(blk, chunk)| body(blk, chunk));
        } else {
            for (blk, chunk) in out.chunks_mut(ROW_BLOCK * k).enumerate() {
                body(blk, chunk);
            }
        }
        Tensor::from_vec([m, k], out)
    }

    /// Dot product of two rank-1 tensors (or any equal-shape tensors,
    /// treated flat).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        simd::vdot(self.data(), other.data())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().nrows(), a.shape().ncols());
        let n = b.shape().ncols();
        let mut c = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(&[i, p]) * b.get(&[p, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn small_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let c = a.matmul(&Tensor::eye(3));
        assert!(c.approx_eq(&a, 1e-15));
    }

    #[test]
    fn tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0], &[4.0, 5.0, 6.0]]);
        let want = naive(&a.transpose(), &b);
        assert!(a.matmul_tn(&b).approx_eq(&want, 1e-12));
    }

    #[test]
    fn nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0]]);
        let want = naive(&a, &b.transpose());
        assert!(a.matmul_nt(&b).approx_eq(&want, 1e-12));
    }

    #[test]
    fn large_parallel_matches_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut rand_t = |m: usize, n: usize| {
            Tensor::from_vec(
                [m, n],
                (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>(),
            )
        };
        let a = rand_t(37, 53);
        let b = rand_t(53, 41);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&naive(&a, &b), 1e-10));
        assert!(a
            .matmul_tn(&c)
            .approx_eq(&naive(&a.transpose(), &c), 1e-10));
        assert!(c
            .matmul_nt(&b)
            .approx_eq(&naive(&c, &b.transpose()), 1e-10));
    }

    #[test]
    fn blocked_kernels_match_naive_past_every_block_boundary() {
        // Shapes straddling ROW_BLOCK/K_BLOCK/J_BLOCK edges (including
        // exact multiples and off-by-one ragged tails).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut rand_t = |m: usize, n: usize| {
            Tensor::from_vec(
                [m, n],
                (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>(),
            )
        };
        for (m, k, n) in [
            (ROW_BLOCK, K_BLOCK, J_BLOCK),
            (ROW_BLOCK + 1, K_BLOCK + 1, J_BLOCK + 1),
            (2 * ROW_BLOCK - 1, 17, 2 * J_BLOCK + 3),
            (3, K_BLOCK + 7, 5),
            (1, 300, 1),
        ] {
            let a = rand_t(m, k);
            let b = rand_t(k, n);
            assert!(a.matmul(&b).approx_eq(&naive(&a, &b), 1e-10), "{m}x{k}x{n}");
            let at = rand_t(k, m);
            assert!(
                at.matmul_tn(&b).approx_eq(&naive(&at.transpose(), &b), 1e-10),
                "tn {m}x{k}x{n}"
            );
            let bt = rand_t(n, k);
            assert!(
                a.matmul_nt(&bt).approx_eq(&naive(&a, &bt.transpose()), 1e-10),
                "nt {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 4]);
        assert_eq!(a.matmul(&b).shape().dims(), &[0, 4]);
        let a = Tensor::zeros([2, 0]);
        let b = Tensor::zeros([0, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[2, 4]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, -5.0, 6.0]);
        assert!((a.dot(&b) - 12.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        let _ = a.matmul(&b);
    }
}
