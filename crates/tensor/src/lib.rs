//! # qpinn-tensor
//!
//! A small, fast, dependency-light dense tensor engine in `f64`, used as the
//! numeric substrate of the PINN stack (`qpinn-autodiff` builds a reverse-mode
//! tape on top of it).
//!
//! Design points, following the session's HPC guides:
//!
//! * row-major contiguous storage (`Vec<f64>`), rank ≤ 2 in practice
//!   (batched column features and weight matrices) but arbitrary-rank shapes
//!   are supported for elementwise/reduction work;
//! * data-parallel kernels via rayon: matrix multiplication is blocked over
//!   output rows with `par_chunks_mut`, elementwise kernels parallelize only
//!   above a size threshold so small tensors do not pay fork/join overhead;
//! * a runtime-dispatched SIMD layer ([`simd`]): every inner loop runs one
//!   shared algorithm instantiated at scalar, AVX2 (4-lane) and AVX-512
//!   (8-lane) widths, selected once at startup from CPUID and overridable
//!   via `QPINN_SIMD`. Results are bit-identical across widths *and* thread
//!   counts — reductions keep eight fixed accumulation lanes at every
//!   width, and transcendentals share one branch-free polynomial kernel.
//!   `unsafe` is confined to that module's intrinsic calls behind runtime
//!   feature detection; everything above it is safe slice code;
//! * fused kernels ([`Tensor::tanh_with_deriv`], [`Tensor::affine_act`])
//!   collapse the hottest forward/backward chains into single sweeps, with
//!   outputs drawn from a thread-local buffer [`pool`].
//!
//! ```
//! use qpinn_tensor::Tensor;
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert!(c.approx_eq(&a, 1e-12));
//! ```

#![deny(missing_docs)]

mod elementwise;
mod fused;
mod matmul;
pub mod pool;
mod random;
mod reduce;
mod shape;
pub mod simd;
mod tensor;

pub use fused::FusedAct;
pub use shape::Shape;
pub use tensor::Tensor;

/// Serial/parallel cutoffs and blocking factors for every tensor kernel,
/// tuned against the real work-dealing pool in `third_party/rayon`.
///
/// With an actual threaded runtime a parallel launch costs a condvar wake
/// plus one atomic claim per chunk (order of a few microseconds), so the
/// cutoffs sit where that overhead is amortized by at least ~10× on a
/// multi-core host. They are deliberately centralized: a cutoff split
/// across kernels drifts, and the right values changed once fork/join
/// became real (the old sequential stand-in made parallel dispatch free,
/// which let thresholds sit artificially low).
pub(crate) mod tune {
    /// FLOP count (`m·k·n` multiply-adds) above which the matmul kernels
    /// parallelize over row blocks. Below this, a single launch costs more
    /// than the kernel itself.
    pub const PAR_FLOPS: usize = 128 * 1024;

    /// Element count above which elementwise/reduction kernels
    /// parallelize.
    pub const PAR_THRESHOLD: usize = 32 * 1024;

    /// Fixed elementwise/reduction chunk size. Reduction partials are
    /// computed per chunk and combined in chunk-index order, so this
    /// constant — never the thread count — defines the floating-point
    /// association and keeps results bit-identical at any pool width.
    pub const CHUNK: usize = 4096;

    /// Output rows per parallel task in the matmul kernels: large enough
    /// that a task amortizes its claim, small enough that chunk dealing
    /// can balance ragged tails.
    pub const ROW_BLOCK: usize = 16;

    /// Depth of the shared-operand panel (`k` in `matmul`, `m` in
    /// `matmul_tn`) each task streams through: `K_BLOCK` rows of B
    /// (`256·n` doubles) stay hot in L1/L2 while the task's `ROW_BLOCK`
    /// output rows accumulate against them.
    pub const K_BLOCK: usize = 256;

    /// B-row panel width in `matmul_nt`: the row-dot kernel walks
    /// `J_BLOCK` rows of B against each A row so the panel is reused from
    /// cache across the task's row block.
    pub const J_BLOCK: usize = 64;
}

pub(crate) use tune::PAR_THRESHOLD;

#[cfg(test)]
mod proptests;
