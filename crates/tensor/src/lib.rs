//! # qpinn-tensor
//!
//! A small, fast, dependency-light dense tensor engine in `f64`, used as the
//! numeric substrate of the PINN stack (`qpinn-autodiff` builds a reverse-mode
//! tape on top of it).
//!
//! Design points, following the session's HPC guides:
//!
//! * row-major contiguous storage (`Vec<f64>`), rank ≤ 2 in practice
//!   (batched column features and weight matrices) but arbitrary-rank shapes
//!   are supported for elementwise/reduction work;
//! * data-parallel kernels via rayon: matrix multiplication is blocked over
//!   output rows with `par_chunks_mut`, elementwise kernels parallelize only
//!   above a size threshold so small tensors do not pay fork/join overhead;
//! * no `unsafe`; bounds checks are hoisted by slice patterns in the hot
//!   loops.
//!
//! ```
//! use qpinn_tensor::Tensor;
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert!(c.approx_eq(&a, 1e-12));
//! ```

#![deny(missing_docs)]

mod elementwise;
mod matmul;
mod random;
mod reduce;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

/// Threshold (in elements) above which elementwise kernels use rayon.
pub(crate) const PAR_THRESHOLD: usize = 16 * 1024;

#[cfg(test)]
mod proptests;
