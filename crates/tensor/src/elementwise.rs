//! Elementwise kernels: unary maps, same-shape binary zips, and the row
//! broadcast used for bias addition.
//!
//! The named operations (`add`/`mul`/`tanh`/…) run on the dispatched SIMD
//! width via [`crate::simd`]; the closure-based [`Tensor::map`]/
//! [`Tensor::zip`] remain for arbitrary functions. All output buffers come
//! from the thread-local pool ([`crate::pool`]) instead of fresh
//! allocations. Kernels run serially below [`crate::tune::PAR_THRESHOLD`]
//! elements and switch to rayon `par_chunks` above it, so the fork/join
//! overhead is only paid where it is amortized. Chunk size and cutoff both
//! live in [`crate::tune`].

use crate::tune::CHUNK;
use crate::{pool, simd, Shape, Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

#[inline]
fn map_into(src: &[f64], dst: &mut Vec<f64>, f: impl Fn(f64) -> f64 + Sync + Send) {
    dst.resize(src.len(), 0.0);
    if src.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(CHUNK)
            .zip(src.par_chunks(CHUNK))
            .for_each(|(d, s)| {
                for (di, si) in d.iter_mut().zip(s) {
                    *di = f(*si);
                }
            });
    } else {
        for (di, si) in dst.iter_mut().zip(src) {
            *di = f(*si);
        }
    }
}

#[inline]
fn zip_into(a: &[f64], b: &[f64], dst: &mut Vec<f64>, f: impl Fn(f64, f64) -> f64 + Sync + Send) {
    dst.resize(a.len(), 0.0);
    if a.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(CHUNK)
            .zip(a.par_chunks(CHUNK).zip(b.par_chunks(CHUNK)))
            .for_each(|(d, (x, y))| {
                for ((di, xi), yi) in d.iter_mut().zip(x).zip(y) {
                    *di = f(*xi, *yi);
                }
            });
    } else {
        for ((di, xi), yi) in dst.iter_mut().zip(a).zip(b) {
            *di = f(*xi, *yi);
        }
    }
}

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
    }

    /// Run a SIMD-dispatched unary kernel (`c` is the op's scalar operand)
    /// into a pooled output buffer.
    pub(crate) fn map_simd<O: simd::MapOp>(&self, c: f64) -> Tensor {
        let mut out = pool::take(self.len());
        let src = self.data();
        if src.len() >= PAR_THRESHOLD {
            out.par_chunks_mut(CHUNK)
                .zip(src.par_chunks(CHUNK))
                .for_each(|(d, s)| simd::map_k::<O>(c, s, d));
        } else {
            simd::map_k::<O>(c, src, &mut out);
        }
        Tensor::from_vec(self.shape().clone(), out)
    }

    /// Run a SIMD-dispatched binary kernel into a pooled output buffer.
    pub(crate) fn zip_simd<O: simd::BinOp>(&self, other: &Tensor, op: &str) -> Tensor {
        self.assert_same_shape(other, op);
        let mut out = pool::take(self.len());
        let (a, b) = (self.data(), other.data());
        if a.len() >= PAR_THRESHOLD {
            out.par_chunks_mut(CHUNK)
                .zip(a.par_chunks(CHUNK).zip(b.par_chunks(CHUNK)))
                .for_each(|(d, (x, y))| simd::bin_k::<O>(x, y, d));
        } else {
            simd::bin_k::<O>(a, b, &mut out);
        }
        Tensor::from_vec(self.shape().clone(), out)
    }

    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync + Send) -> Tensor {
        let mut out = pool::take(self.len());
        map_into(self.data(), &mut out, f);
        Tensor::from_vec(self.shape().clone(), out)
    }

    /// Combine with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64 + Sync + Send) -> Tensor {
        self.assert_same_shape(other, "zip");
        let mut out = pool::take(self.len());
        zip_into(self.data(), other.data(), &mut out, f);
        Tensor::from_vec(self.shape().clone(), out)
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_simd::<simd::OpAdd>(other, "add")
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_simd::<simd::OpSub>(other, "sub")
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_simd::<simd::OpMul>(other, "mul")
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_simd::<simd::OpDiv>(other, "div")
    }

    /// In-place `self += alpha * other` (the axpy kernel optimizers use).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        if self.len() >= PAR_THRESHOLD {
            let src = other.data();
            self.data_mut()
                .par_chunks_mut(CHUNK)
                .zip(src.par_chunks(CHUNK))
                .for_each(|(d, s)| simd::vaxpy(alpha, s, d));
        } else {
            simd::vaxpy(alpha, other.data(), self.data_mut());
        }
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        self.map_simd::<simd::OpNeg>(0.0)
    }

    /// Multiply every element by `c`.
    pub fn scale(&self, c: f64) -> Tensor {
        self.map_simd::<simd::OpScale>(c)
    }

    /// Add `c` to every element.
    pub fn add_scalar(&self, c: f64) -> Tensor {
        self.map_simd::<simd::OpAddScalar>(c)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map_simd::<simd::OpSquare>(0.0)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map_simd::<simd::OpSqrt>(0.0)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map_simd::<simd::OpRecipOf>(1.0)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map_simd::<simd::OpAbs>(0.0)
    }

    /// Elementwise integer power.
    pub fn powi(&self, n: i32) -> Tensor {
        self.map(move |a| a.powi(n))
    }

    /// Elementwise sine.
    pub fn sin(&self) -> Tensor {
        self.map(f64::sin)
    }

    /// Elementwise cosine.
    pub fn cos(&self) -> Tensor {
        self.map(f64::cos)
    }

    /// Elementwise hyperbolic tangent (vectorized; matches libm to a few
    /// ulp and is bit-identical at every dispatch width).
    pub fn tanh(&self) -> Tensor {
        self.map_simd::<simd::OpTanh>(0.0)
    }

    /// Elementwise natural exponential (vectorized; matches libm to a few
    /// ulp and is bit-identical at every dispatch width).
    pub fn exp(&self) -> Tensor {
        self.map_simd::<simd::OpExp>(0.0)
    }

    /// Add a rank-1 bias of length `ncols` to every row of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics when shapes are incompatible.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let (m, n) = (self.shape().nrows(), self.shape().ncols());
        assert_eq!(
            bias.shape().dims(),
            &[n],
            "bias shape {} incompatible with {}",
            bias.shape(),
            self.shape()
        );
        let b = bias.data();
        let mut out = self.data().to_vec();
        if out.len() >= PAR_THRESHOLD {
            out.par_chunks_mut(n).for_each(|row| {
                simd::vaxpy(1.0, b, row);
            });
        } else {
            for row in out.chunks_mut(n) {
                simd::vaxpy(1.0, b, row);
            }
        }
        let _ = m;
        Tensor::from_vec(self.shape().clone(), out)
    }

    /// Multiply every row of a rank-2 tensor by the matching entry of a
    /// `[nrows]` or `[nrows, 1]` weight vector (per-sample loss weighting).
    ///
    /// # Panics
    /// Panics when shapes are incompatible.
    pub fn mul_col_broadcast(&self, w: &Tensor) -> Tensor {
        let (m, n) = (self.shape().nrows(), self.shape().ncols());
        assert_eq!(w.len(), m, "weight length {} != nrows {m}", w.len());
        let wv = w.data();
        let mut out = self.data().to_vec();
        for (i, row) in out.chunks_mut(n).enumerate() {
            simd::map_inplace_k::<simd::OpScale>(wv[i], row);
        }
        Tensor::from_vec(Shape::new(&[m, n]), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn unary_ops() {
        let a = Tensor::from_slice(&[0.0, 1.0, -2.0]);
        assert_eq!(a.neg().data(), &[0.0, -1.0, 2.0]);
        assert_eq!(a.scale(2.0).data(), &[0.0, 2.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[1.0, 2.0, -1.0]);
        assert_eq!(a.square().data(), &[0.0, 1.0, 4.0]);
        assert_eq!(a.abs().data(), &[0.0, 1.0, 2.0]);
        assert!((a.tanh().data()[1] - 1f64.tanh()).abs() < 1e-14);
        assert!((a.sin().data()[2] - (-2f64).sin()).abs() < 1e-15);
        assert!((a.exp().data()[2] - (-2f64).exp()).abs() < 1e-15);
        assert!((a.recip().data()[2] + 0.5).abs() < 1e-15);
        let s = Tensor::from_slice(&[4.0, 9.0]);
        assert_eq!(s.sqrt().data(), &[2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }

    #[test]
    fn bias_broadcast() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(0), &[11.0, 22.0]);
        assert_eq!(y.row(1), &[13.0, 24.0]);
    }

    #[test]
    fn per_row_weighting() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = Tensor::from_slice(&[2.0, 0.5]);
        let y = x.mul_col_broadcast(&w);
        assert_eq!(y.row(0), &[2.0, 4.0]);
        assert_eq!(y.row(1), &[1.5, 2.0]);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        let _ = a.add(&b);
    }

    #[test]
    fn large_tensor_parallel_path() {
        let n = crate::PAR_THRESHOLD + 17;
        let a = Tensor::full([n], 2.0);
        let b = Tensor::full([n], 3.0);
        let c = a.mul(&b);
        assert!(c.data().iter().all(|&x| x == 6.0));
        let s = a.square();
        assert!(s.data().iter().all(|&x| x == 4.0));
        let mut d = Tensor::zeros([n]);
        d.axpy(2.0, &b);
        assert!(d.data().iter().all(|&x| x == 6.0));
    }
}
