//! Reductions: sums, means, norms, axis reductions.
//!
//! Parallel reductions are **thread-count and SIMD-width invariant at the
//! bit level**: partials are computed over fixed
//! [`crate::tune::CHUNK`]-element blocks and combined in chunk-index order
//! (the ordered `sum` consumer in the vendored rayon), and within a chunk
//! the [`crate::simd`] kernels accumulate in eight fixed lanes at every
//! dispatch width. The floating-point association is therefore a function
//! of the chunk size and the eight-lane tree only — never of how many
//! workers ran or which instruction set executed.

use crate::tune::CHUNK;
use crate::{simd, Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            self.data().par_chunks(CHUNK).map(simd::vsum).sum()
        } else {
            simd::vsum(self.data())
        }
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Sum of squares of all elements.
    pub fn sum_sq(&self) -> f64 {
        if self.len() >= PAR_THRESHOLD {
            self.data().par_chunks(CHUNK).map(simd::vsum_sq).sum()
        } else {
            simd::vsum_sq(self.data())
        }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.sum_sq().sqrt()
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f64 {
        self.data().iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Smallest element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data().iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest element.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of squares — the MSE reduction used by every PINN loss term.
    pub fn mse(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_sq() / self.len() as f64
        }
    }

    /// Column sums of a rank-2 tensor, as a rank-1 tensor of length `ncols`.
    ///
    /// This is the reduction that backs bias gradients.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = (self.shape().nrows(), self.shape().ncols());
        let mut out = vec![0.0; n];
        for i in 0..m {
            simd::vaxpy(1.0, self.row(i), &mut out);
        }
        Tensor::from_vec([n], out)
    }

    /// Row sums of a rank-2 tensor, as a `[nrows, 1]` column.
    pub fn sum_cols(&self) -> Tensor {
        let n = self.shape().ncols();
        let sums: Vec<f64> = self.data().chunks(n).map(simd::vsum).collect();
        Tensor::column(&sums)
    }

    /// Relative L2 error `‖self − other‖ / ‖other‖` against a reference of
    /// identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch or when the reference is identically zero.
    pub fn rel_l2_error(&self, reference: &Tensor) -> f64 {
        assert_eq!(self.shape(), reference.shape(), "rel_l2_error shapes");
        let denom = reference.norm();
        assert!(denom > 0.0, "rel_l2_error against a zero reference");
        self.sub(reference).norm() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, -4.0]);
        assert!((t.sum() - (-2.0)).abs() < 1e-15);
        assert!((t.mean() + 0.5).abs() < 1e-15);
        assert!((t.sum_sq() - 30.0).abs() < 1e-15);
        assert!((t.norm() - 30f64.sqrt()).abs() < 1e-15);
        assert!((t.max_abs() - 4.0).abs() < 1e-15);
        assert!((t.min() + 4.0).abs() < 1e-15);
        assert!((t.max() - 3.0).abs() < 1e-15);
        assert!((t.mse() - 7.5).abs() < 1e-15);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(t.sum_rows().data(), &[9.0, 12.0]);
        assert_eq!(t.sum_cols().data(), &[3.0, 7.0, 11.0]);
        assert_eq!(t.sum_cols().shape().dims(), &[3, 1]);
    }

    #[test]
    fn relative_error() {
        let a = Tensor::from_slice(&[1.1, 2.0]);
        let b = Tensor::from_slice(&[1.0, 2.0]);
        let want = 0.1 / 5f64.sqrt();
        assert!((a.rel_l2_error(&b) - want).abs() < 1e-12);
        assert_eq!(b.rel_l2_error(&b), 0.0);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = crate::PAR_THRESHOLD * 2 + 3;
        let t = Tensor::full([n], 0.5);
        assert!((t.sum() - 0.5 * n as f64).abs() < 1e-9);
        assert!((t.sum_sq() - 0.25 * n as f64).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let t = Tensor::zeros([0]);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.mse(), 0.0);
    }
}
