//! A thread-local free list of `Vec<f64>` buffers so the map/zip/fused
//! kernels stop allocating a fresh output per call.
//!
//! The reverse-mode tape materializes short-lived tensors at a furious
//! rate (activation derivatives, gradient deltas); most die within one
//! backward step. [`take`] hands such code a recycled buffer when one with
//! enough capacity is available, and [`recycle`] returns a dead tensor's
//! storage to the calling thread's free list. Under rayon, each worker
//! keeps its own list — no locks on the hot path, and a buffer recycled on
//! one thread simply becomes available to that thread.
//!
//! Three process-wide counters track the traffic so the telemetry plane
//! (`qpinn-core`'s obs bridge) can report how many allocations the pool
//! saved: `reused` (allocations avoided), `allocated` (pool misses that
//! hit the system allocator), and `recycled` (buffers returned).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Buffers kept per thread; beyond this, recycled buffers are dropped.
const MAX_POOLED: usize = 32;
/// Buffers above this length are never pooled (a stray giant buffer would
/// otherwise pin tens of megabytes per thread).
const MAX_LEN: usize = 1 << 22;

static REUSED: AtomicU64 = AtomicU64::new(0);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static FREE: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// A zeroed buffer of `len` elements, reusing pooled storage when a buffer
/// with enough capacity is available on this thread.
pub(crate) fn take(len: usize) -> Vec<f64> {
    let got = FREE.with(|f| {
        let mut f = f.borrow_mut();
        f.iter()
            .rposition(|b| b.capacity() >= len)
            .map(|i| f.swap_remove(i))
    });
    match got {
        Some(mut v) => {
            REUSED.fetch_add(1, Relaxed);
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            ALLOCATED.fetch_add(1, Relaxed);
            vec![0.0; len]
        }
    }
}

/// Return a dead tensor's storage to this thread's free list. Call this on
/// hot-path temporaries whose lifetime is provably over (e.g. backward-pass
/// deltas after they are accumulated); it is always safe to simply drop a
/// tensor instead.
pub fn recycle(t: crate::Tensor) {
    let v = t.into_vec();
    if v.capacity() == 0 || v.capacity() > MAX_LEN {
        return;
    }
    RECYCLED.fetch_add(1, Relaxed);
    FREE.with(|f| {
        let mut f = f.borrow_mut();
        if f.len() < MAX_POOLED {
            f.push(v);
        }
    });
}

/// Cumulative buffer-pool counters (process-wide, monotonically
/// increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations avoided by handing out a pooled buffer.
    pub reused: u64,
    /// Pool misses that fell through to the system allocator.
    pub allocated: u64,
    /// Buffers returned to a free list via [`recycle`].
    pub recycled: u64,
}

/// Snapshot the pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        reused: REUSED.load(Relaxed),
        allocated: ALLOCATED.load(Relaxed),
        recycled: RECYCLED.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn recycled_buffer_is_reused_and_counted() {
        let before = stats();
        let t = Tensor::from_vec([512], take(512));
        recycle(t);
        let v = take(512);
        assert_eq!(v.len(), 512);
        assert!(v.iter().all(|&x| x == 0.0), "reused buffer must be zeroed");
        let after = stats();
        assert!(after.recycled > before.recycled);
        assert!(after.reused > before.reused);
    }

    #[test]
    fn smaller_requests_fit_bigger_buffers() {
        recycle(Tensor::zeros([1024]));
        let before = stats();
        let v = take(100);
        assert_eq!(v.len(), 100);
        assert!(v.capacity() >= 1024 || stats().reused == before.reused);
    }

    #[test]
    fn oversize_buffers_are_not_pooled() {
        let before = stats();
        recycle(Tensor::zeros([MAX_LEN + 1]));
        assert_eq!(stats().recycled, before.recycled);
    }
}
