//! Property-based tests for tensor algebra invariants, plus the
//! SIMD-vs-scalar conformance suite: every dispatched kernel must produce
//! bit-identical results at widths 1 (forced scalar), 4 (AVX2) and 8
//! (AVX-512) across ragged shapes whose tails do not divide the lane count.

use crate::simd::{with_width, WIDTH_LOCK};
use crate::{FusedAct, Tensor};
use proptest::prelude::*;

/// Run `f` at forced-scalar width and at every wider width the host
/// supports, asserting the results are bit-identical to the scalar
/// reference (which also bounds them within the 1e-12 contract).
fn assert_width_invariant(f: impl Fn() -> Vec<f64>) {
    let _g = WIDTH_LOCK.lock().unwrap();
    let want = with_width(1, &f).expect("scalar always available");
    for w in [4usize, 8] {
        if let Some(got) = with_width(w, &f) {
            assert_eq!(got.len(), want.len());
            for (i, (g, s)) in got.iter().zip(&want).enumerate() {
                assert!(
                    g.to_bits() == s.to_bits(),
                    "width {w} diverged from scalar at [{i}]: {g} vs {s}"
                );
            }
        }
    }
}

/// Strategy: a rank-2 tensor with bounded dims and moderate values.
fn mat(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0..10.0f64, m * n)
            .prop_map(move |v| Tensor::from_vec([m, n], v))
    })
}

fn mat_pair(max: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max, 1..=max, 1..=max).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0..5.0f64, m * k)
            .prop_map(move |v| Tensor::from_vec([m, k], v));
        let b = proptest::collection::vec(-5.0..5.0f64, k * n)
            .prop_map(move |v| Tensor::from_vec([k, n], v));
        (a, b)
    })
}

proptest! {
    #[test]
    fn add_commutes(t in mat(6)) {
        let u = t.scale(0.5);
        prop_assert!(t.add(&u).approx_eq(&u.add(&t), 1e-12));
    }

    #[test]
    fn sub_then_add_roundtrips(t in mat(6)) {
        let u = t.map(|x| x.sin());
        let r = t.sub(&u).add(&u);
        prop_assert!(r.approx_eq(&t, 1e-12));
    }

    #[test]
    fn scale_distributes_over_add(t in mat(6), c in -3.0..3.0f64) {
        let u = t.map(|x| x * 0.3 + 1.0);
        let lhs = t.add(&u).scale(c);
        let rhs = t.scale(c).add(&u.scale(c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn matmul_agrees_with_naive(
        (a, b) in mat_pair(8)
    ) {
        let c = a.matmul(&b);
        let (m, k) = (a.shape().nrows(), a.shape().ncols());
        let n = b.shape().ncols();
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(&[i, p]) * b.get(&[p, j]);
                }
                prop_assert!((c.get(&[i, j]) - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_tn_nt_consistency((a, b) in mat_pair(8)) {
        // Aᵀ·C computed directly must equal transpose-then-matmul; same for
        // the NT kernel.
        let c = a.matmul(&b);
        let t1 = a.matmul_tn(&c);
        let t2 = a.transpose().matmul(&c);
        prop_assert!(t1.approx_eq(&t2, 1e-9));
        let u1 = c.matmul_nt(&b);
        let u2 = c.matmul(&b.transpose());
        prop_assert!(u1.approx_eq(&u2, 1e-9));
    }

    #[test]
    fn transpose_preserves_norm(t in mat(8)) {
        prop_assert!((t.norm() - t.transpose().norm()).abs() < 1e-10);
    }

    #[test]
    fn sum_rows_plus_cols_totals(t in mat(8)) {
        let total = t.sum();
        prop_assert!((t.sum_rows().sum() - total).abs() < 1e-9);
        prop_assert!((t.sum_cols().sum() - total).abs() < 1e-9);
    }

    #[test]
    fn mse_is_mean_of_squares(t in mat(8)) {
        let want = t.data().iter().map(|x| x * x).sum::<f64>() / t.len() as f64;
        prop_assert!((t.mse() - want).abs() < 1e-10);
    }

    #[test]
    fn hstack_then_columns_roundtrip(t in mat(6)) {
        let cols: Vec<Tensor> = (0..t.shape().ncols()).map(|j| Tensor::column(&t.col(j))).collect();
        let refs: Vec<&Tensor> = cols.iter().collect();
        let stacked = Tensor::hstack(&refs);
        prop_assert!(stacked.approx_eq(&t, 0.0));
    }

    #[test]
    fn simd_elementwise_width_invariant(
        v in proptest::collection::vec(-6.0..6.0f64, 1..67),
        c in -3.0..3.0f64,
    ) {
        // Ragged 1..67 lengths hit every n % 4 and n % 8 tail case.
        let x = Tensor::from_slice(&v);
        let y = x.map(|e| e * 0.37 - 0.11);
        assert_width_invariant(|| {
            let mut out = Vec::new();
            out.extend_from_slice(x.add(&y).data());
            out.extend_from_slice(x.sub(&y).data());
            out.extend_from_slice(x.mul(&y).data());
            out.extend_from_slice(x.div(&y.abs().add_scalar(1.0)).data());
            out.extend_from_slice(x.scale(c).data());
            out.extend_from_slice(x.add_scalar(c).data());
            out.extend_from_slice(x.neg().data());
            out.extend_from_slice(x.square().data());
            out.extend_from_slice(x.abs().sqrt().data());
            out.extend_from_slice(x.abs().add_scalar(0.5).recip().data());
            out.extend_from_slice(x.tanh().data());
            out.extend_from_slice(x.exp().data());
            let mut acc = y.clone();
            acc.axpy(c, &x);
            out.extend_from_slice(acc.data());
            out
        });
    }

    #[test]
    fn simd_reductions_width_invariant(
        v in proptest::collection::vec(-6.0..6.0f64, 1..131),
    ) {
        let x = Tensor::from_slice(&v);
        let y = x.map(|e| e.cos());
        assert_width_invariant(|| {
            vec![x.sum(), x.sum_sq(), x.dot(&y)]
        });
    }

    #[test]
    fn simd_matmul_width_invariant((a, b) in mat_pair(9)) {
        assert_width_invariant(|| {
            let c = a.matmul(&b);
            let mut out = Vec::new();
            out.extend_from_slice(c.data());
            out.extend_from_slice(a.matmul_tn(&c).data());
            out.extend_from_slice(c.matmul_nt(&b).data());
            out
        });
    }

    #[test]
    fn simd_fused_width_invariant((a, b) in mat_pair(9)) {
        let bias = Tensor::from_vec(
            [b.shape().ncols()],
            (0..b.shape().ncols()).map(|j| (j as f64) * 0.21 - 0.4).collect::<Vec<_>>(),
        );
        assert_width_invariant(|| {
            let (t, d) = a.tanh_with_deriv();
            let mut out = Vec::new();
            out.extend_from_slice(t.data());
            out.extend_from_slice(d.data());
            out.extend_from_slice(a.one_minus_square().data());
            out.extend_from_slice(a.affine_act(&b, &bias, FusedAct::Identity).data());
            out.extend_from_slice(a.affine_act(&b, &bias, FusedAct::Tanh).data());
            out
        });
    }

    #[test]
    fn simd_tanh_matches_scalar_reference(
        v in proptest::collection::vec(-40.0..40.0f64, 1..50),
    ) {
        // Accuracy against libm (not just cross-width consistency): the
        // shared polynomial kernel must stay within 1e-12 of `f64::tanh`
        // and `f64::exp` everywhere the PINN stack evaluates them.
        let x = Tensor::from_slice(&v);
        let t = x.tanh();
        for (got, xi) in t.data().iter().zip(&v) {
            prop_assert!((got - xi.tanh()).abs() <= 1e-12);
        }
        let clipped = x.scale(0.25);
        for (got, xi) in clipped.exp().data().iter().zip(clipped.data()) {
            let want = xi.exp();
            prop_assert!(((got - want) / want).abs() <= 1e-12);
        }
    }

    #[test]
    fn bias_broadcast_matches_manual(t in mat(6)) {
        let n = t.shape().ncols();
        let bias = Tensor::linspace(-1.0, 1.0, n.max(2)).into_vec();
        let bias = Tensor::from_slice(&bias[..n]);
        let out = t.add_row_broadcast(&bias);
        for i in 0..t.shape().nrows() {
            for j in 0..n {
                prop_assert!((out.get(&[i, j]) - (t.get(&[i, j]) + bias.data()[j])).abs() < 1e-12);
            }
        }
    }
}
