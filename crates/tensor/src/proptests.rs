//! Property-based tests for tensor algebra invariants.

use crate::Tensor;
use proptest::prelude::*;

/// Strategy: a rank-2 tensor with bounded dims and moderate values.
fn mat(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0..10.0f64, m * n)
            .prop_map(move |v| Tensor::from_vec([m, n], v))
    })
}

fn mat_pair(max: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max, 1..=max, 1..=max).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0..5.0f64, m * k)
            .prop_map(move |v| Tensor::from_vec([m, k], v));
        let b = proptest::collection::vec(-5.0..5.0f64, k * n)
            .prop_map(move |v| Tensor::from_vec([k, n], v));
        (a, b)
    })
}

proptest! {
    #[test]
    fn add_commutes(t in mat(6)) {
        let u = t.scale(0.5);
        prop_assert!(t.add(&u).approx_eq(&u.add(&t), 1e-12));
    }

    #[test]
    fn sub_then_add_roundtrips(t in mat(6)) {
        let u = t.map(|x| x.sin());
        let r = t.sub(&u).add(&u);
        prop_assert!(r.approx_eq(&t, 1e-12));
    }

    #[test]
    fn scale_distributes_over_add(t in mat(6), c in -3.0..3.0f64) {
        let u = t.map(|x| x * 0.3 + 1.0);
        let lhs = t.add(&u).scale(c);
        let rhs = t.scale(c).add(&u.scale(c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn matmul_agrees_with_naive(
        (a, b) in mat_pair(8)
    ) {
        let c = a.matmul(&b);
        let (m, k) = (a.shape().nrows(), a.shape().ncols());
        let n = b.shape().ncols();
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(&[i, p]) * b.get(&[p, j]);
                }
                prop_assert!((c.get(&[i, j]) - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_tn_nt_consistency((a, b) in mat_pair(8)) {
        // Aᵀ·C computed directly must equal transpose-then-matmul; same for
        // the NT kernel.
        let c = a.matmul(&b);
        let t1 = a.matmul_tn(&c);
        let t2 = a.transpose().matmul(&c);
        prop_assert!(t1.approx_eq(&t2, 1e-9));
        let u1 = c.matmul_nt(&b);
        let u2 = c.matmul(&b.transpose());
        prop_assert!(u1.approx_eq(&u2, 1e-9));
    }

    #[test]
    fn transpose_preserves_norm(t in mat(8)) {
        prop_assert!((t.norm() - t.transpose().norm()).abs() < 1e-10);
    }

    #[test]
    fn sum_rows_plus_cols_totals(t in mat(8)) {
        let total = t.sum();
        prop_assert!((t.sum_rows().sum() - total).abs() < 1e-9);
        prop_assert!((t.sum_cols().sum() - total).abs() < 1e-9);
    }

    #[test]
    fn mse_is_mean_of_squares(t in mat(8)) {
        let want = t.data().iter().map(|x| x * x).sum::<f64>() / t.len() as f64;
        prop_assert!((t.mse() - want).abs() < 1e-10);
    }

    #[test]
    fn hstack_then_columns_roundtrip(t in mat(6)) {
        let cols: Vec<Tensor> = (0..t.shape().ncols()).map(|j| Tensor::column(&t.col(j))).collect();
        let refs: Vec<&Tensor> = cols.iter().collect();
        let stacked = Tensor::hstack(&refs);
        prop_assert!(stacked.approx_eq(&t, 0.0));
    }

    #[test]
    fn bias_broadcast_matches_manual(t in mat(6)) {
        let n = t.shape().ncols();
        let bias = Tensor::linspace(-1.0, 1.0, n.max(2)).into_vec();
        let bias = Tensor::from_slice(&bias[..n]);
        let out = t.add_row_broadcast(&bias);
        for i in 0..t.shape().nrows() {
            for j in 0..n {
                prop_assert!((out.get(&[i, j]) - (t.get(&[i, j]) + bias.data()[j])).abs() < 1e-12);
            }
        }
    }
}
