//! Gauss–Legendre quadrature: high-order integration rules used for
//! normalization and energy integrals where the trapezoid rule's O(h²)
//! error would dominate.
//!
//! Nodes are the roots of the Legendre polynomial `P_n`, found by Newton
//! iteration from the Chebyshev initial guess; weights are
//! `2 / ((1 − x²)·P_n′(x)²)`. Exact for polynomials of degree ≤ 2n − 1.

/// A Gauss–Legendre rule with `n` nodes on `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

/// Evaluate `(P_n(x), P_n′(x))` by the three-term recurrence.
fn legendre(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0;
    let mut p1 = x;
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let pk = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
        p0 = p1;
        p1 = pk;
    }
    // derivative identity: (1 − x²) P_n′ = n (P_{n−1} − x P_n)
    let dp = n as f64 * (p0 - x * p1) / (1.0 - x * x);
    (p1, dp)
}

impl GaussLegendre {
    /// Build the `n`-point rule.
    ///
    /// # Panics
    /// Panics for `n = 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        for i in 0..n.div_ceil(2) {
            // Chebyshev-based initial guess for the i-th positive root
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            for _ in 0..100 {
                let (p, dp) = legendre(n, x);
                let dx = p / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let (_, dp) = legendre(n, x);
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            // the middle node is exactly 0
            nodes[n / 2] = 0.0;
            let (_, dp) = legendre(n, 0.0);
            weights[n / 2] = 2.0 / (dp * dp);
        }
        GaussLegendre { nodes, weights }
    }

    /// Nodes on `[-1, 1]`, ascending.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Matching weights (sum to 2).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrate `f` over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64, f: impl Fn(f64) -> f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(mid + half * x))
            .sum::<f64>()
            * half
    }

    /// The abscissae mapped onto `[a, b]` with matching weights — for
    /// sampling collocation/normalization points with built-in quadrature
    /// weights.
    pub fn mapped(&self, a: f64, b: f64) -> Vec<(f64, f64)> {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| (mid + half * x, w * half))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_measure() {
        for n in [1usize, 2, 5, 16, 33] {
            let q = GaussLegendre::new(n);
            let s: f64 = q.weights().iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: {s}");
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        let n = 5;
        let q = GaussLegendre::new(n);
        // ∫₋₁¹ x^k dx = 0 (odd) or 2/(k+1) (even), exact through k = 9
        for k in 0..=(2 * n - 1) {
            let got = q.integrate(-1.0, 1.0, |x| x.powi(k as i32));
            let want = if k % 2 == 1 { 0.0 } else { 2.0 / (k as f64 + 1.0) };
            assert!((got - want).abs() < 1e-13, "k={k}: {got} vs {want}");
        }
    }

    #[test]
    fn gaussian_integral_converges_spectrally() {
        // ∫₋₈⁸ e^{−x²} dx ≈ √π.
        let want = std::f64::consts::PI.sqrt();
        let coarse = GaussLegendre::new(16).integrate(-8.0, 8.0, |x| (-x * x).exp());
        let fine = GaussLegendre::new(48).integrate(-8.0, 8.0, |x| (-x * x).exp());
        assert!((fine - want).abs() < 1e-12, "fine {fine}");
        assert!((fine - want).abs() < (coarse - want).abs());
    }

    #[test]
    fn mapped_points_lie_in_interval_and_integrate() {
        let q = GaussLegendre::new(20);
        let pts = q.mapped(0.0, 3.0);
        assert!(pts.iter().all(|&(x, _)| (0.0..=3.0).contains(&x)));
        // ∫₀³ sin x dx = 1 − cos 3
        let got: f64 = pts.iter().map(|&(x, w)| w * x.sin()).sum();
        assert!((got - (1.0 - 3.0f64.cos())).abs() < 1e-12);
    }

    #[test]
    fn nodes_are_sorted_and_symmetric() {
        let q = GaussLegendre::new(9);
        for w in q.nodes().windows(2) {
            assert!(w[1] > w[0]);
        }
        for i in 0..9 {
            assert!((q.nodes()[i] + q.nodes()[8 - i]).abs() < 1e-14);
        }
        assert_eq!(q.nodes()[4], 0.0);
    }
}
