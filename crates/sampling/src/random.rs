//! Independent uniform sampling inside a domain.

use crate::grid::Domain;
use rand::rngs::StdRng;
use rand::Rng;

/// `n` i.i.d. uniform points in `domain`.
pub fn uniform_points(domain: &Domain, n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            domain
                .bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn points_lie_in_domain() {
        let d = Domain::new(&[(-2.0, 1.0), (0.5, 0.9)]);
        let mut rng = StdRng::seed_from_u64(0);
        let pts = uniform_points(&d, 500, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| d.contains(p)));
    }

    #[test]
    fn mean_approaches_center() {
        let d = Domain::new(&[(0.0, 2.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let pts = uniform_points(&d, 20_000, &mut rng);
        let mean: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn seeded_reproducibility() {
        let d = Domain::new(&[(0.0, 1.0), (0.0, 1.0)]);
        let a = uniform_points(&d, 10, &mut StdRng::seed_from_u64(7));
        let b = uniform_points(&d, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
