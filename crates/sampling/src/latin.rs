//! Latin hypercube sampling: stratified designs with one sample per axis
//! stratum — lower variance than i.i.d. sampling for the same budget.

use crate::grid::Domain;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// An `n`-point Latin hypercube design in `domain`: on every axis, each of
/// the `n` equal strata contains exactly one point.
pub fn latin_hypercube(domain: &Domain, n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let d = domain.dim();
    // For each axis: a random permutation of strata, and a jitter per cell.
    let mut per_axis: Vec<Vec<f64>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(rng);
        per_axis.push(
            strata
                .into_iter()
                .map(|s| (s as f64 + rng.gen_range(0.0..1.0)) / n as f64)
                .collect(),
        );
    }
    (0..n)
        .map(|i| {
            let u: Vec<f64> = (0..d).map(|a| per_axis[a][i]).collect();
            domain.from_unit(&u)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_point_per_stratum_on_every_axis() {
        let d = Domain::new(&[(0.0, 1.0), (-1.0, 1.0), (2.0, 3.0)]);
        let n = 64;
        let mut rng = StdRng::seed_from_u64(5);
        let pts = latin_hypercube(&d, n, &mut rng);
        assert_eq!(pts.len(), n);
        for axis in 0..3 {
            let (lo, hi) = d.bounds[axis];
            let mut seen = vec![false; n];
            for p in &pts {
                let u = (p[axis] - lo) / (hi - lo);
                let stratum = ((u * n as f64) as usize).min(n - 1);
                assert!(!seen[stratum], "axis {axis} stratum {stratum} duplicated");
                seen[stratum] = true;
            }
            assert!(seen.iter().all(|&s| s), "axis {axis} missing strata");
        }
    }

    #[test]
    fn points_in_domain() {
        let d = Domain::new(&[(-3.0, -1.0)]);
        let pts = latin_hypercube(&d, 17, &mut StdRng::seed_from_u64(2));
        assert!(pts.iter().all(|p| d.contains(p)));
    }

    #[test]
    fn lower_discrepancy_than_iid_on_average() {
        // Crude check: the max gap between sorted 1D LHS samples is smaller
        // than for i.i.d. uniform samples with the same seed budget.
        let d = Domain::new(&[(0.0, 1.0)]);
        let n = 128;
        let gap = |pts: &[Vec<f64>]| {
            let mut xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max)
        };
        let lhs = latin_hypercube(&d, n, &mut StdRng::seed_from_u64(3));
        let iid = crate::random::uniform_points(&d, n, &mut StdRng::seed_from_u64(3));
        assert!(gap(&lhs) < gap(&iid));
    }
}
