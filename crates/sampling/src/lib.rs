//! # qpinn-sampling
//!
//! Collocation-point generation for PINN training: tensor-product grids,
//! uniform random sampling, Latin hypercube designs, Halton low-discrepancy
//! sequences, and the time-bin partitioning used by causal (curriculum)
//! training.
//!
//! ```
//! use qpinn_sampling::{latin_hypercube, Domain};
//! use rand::{rngs::StdRng, SeedableRng};
//! let domain = Domain::new(&[(-1.0, 1.0), (0.0, 2.0)]);
//! let pts = latin_hypercube(&domain, 64, &mut StdRng::seed_from_u64(0));
//! assert!(pts.iter().all(|p| domain.contains(p)));
//! ```

#![deny(missing_docs)]

pub mod grid;
pub mod halton;
pub mod latin;
pub mod quadrature;
pub mod random;
pub mod timebins;

pub use grid::{cartesian_grid, linspace, Domain};
pub use halton::halton_points;
pub use latin::latin_hypercube;
pub use quadrature::GaussLegendre;
pub use random::uniform_points;
pub use timebins::TimeBins;
