//! Time-bin bookkeeping for causal (curriculum) PINN training.
//!
//! Collocation points are grouped into `m` bins along the time axis; the
//! causal weighting scheme (Wang, Sankaran & Perdikaris 2024) then assigns
//! each bin a weight `w_i = exp(−ε Σ_{j<i} L_j)` so the network must fit
//! early-time dynamics before later bins contribute.

/// Partition of a time interval into equal bins, with membership queries.
#[derive(Clone, Debug)]
pub struct TimeBins {
    t0: f64,
    t1: f64,
    m: usize,
}

impl TimeBins {
    /// `m` equal bins over `[t0, t1]`.
    ///
    /// # Panics
    /// Panics when `m = 0` or the interval is degenerate.
    pub fn new(t0: f64, t1: f64, m: usize) -> Self {
        assert!(m > 0, "need at least one bin");
        assert!(t1 > t0, "degenerate time interval");
        TimeBins { t0, t1, m }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Always false (a `TimeBins` has ≥ 1 bin).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bin index of time `t` (clamped to the valid range).
    pub fn bin_of(&self, t: f64) -> usize {
        let u = (t - self.t0) / (self.t1 - self.t0);
        ((u * self.m as f64) as isize).clamp(0, self.m as isize - 1) as usize
    }

    /// Per-point bin indices for a batch of times.
    pub fn assign(&self, ts: &[f64]) -> Vec<usize> {
        ts.iter().map(|&t| self.bin_of(t)).collect()
    }

    /// Causal weights from per-bin mean losses:
    /// `w_i = exp(−ε Σ_{j<i} L_j)`, with `w_0 = 1`.
    pub fn causal_weights(&self, bin_losses: &[f64], epsilon: f64) -> Vec<f64> {
        assert_eq!(bin_losses.len(), self.m, "bin loss arity");
        let mut cum = 0.0;
        bin_losses
            .iter()
            .map(|&l| {
                let w = (-epsilon * cum).exp();
                cum += l;
                w
            })
            .collect()
    }

    /// Expand per-bin weights to per-point weights given point times.
    pub fn point_weights(&self, ts: &[f64], bin_weights: &[f64]) -> Vec<f64> {
        assert_eq!(bin_weights.len(), self.m, "bin weight arity");
        ts.iter().map(|&t| bin_weights[self.bin_of(t)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_uniform() {
        let b = TimeBins::new(0.0, 1.0, 4);
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(0.24), 0);
        assert_eq!(b.bin_of(0.26), 1);
        assert_eq!(b.bin_of(0.99), 3);
        assert_eq!(b.bin_of(1.0), 3, "right endpoint clamps into last bin");
        assert_eq!(b.bin_of(-5.0), 0, "clamps below");
    }

    #[test]
    fn causal_weights_monotone_nonincreasing_under_positive_losses() {
        let b = TimeBins::new(0.0, 1.0, 5);
        let w = b.causal_weights(&[1.0, 0.5, 2.0, 0.1, 0.0], 1.0);
        assert_eq!(w[0], 1.0);
        for win in w.windows(2) {
            assert!(win[1] <= win[0] + 1e-15);
        }
        // exact values
        assert!((w[1] - (-1.0f64).exp()).abs() < 1e-15);
        assert!((w[2] - (-1.5f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn converged_bins_open_later_bins() {
        // As early losses → 0, all weights → 1: the curriculum releases.
        let b = TimeBins::new(0.0, 1.0, 3);
        let w = b.causal_weights(&[1e-9, 1e-9, 1e-9], 10.0);
        assert!(w.iter().all(|&x| x > 0.999));
    }

    #[test]
    fn point_weights_follow_bins() {
        let b = TimeBins::new(0.0, 1.0, 2);
        let ts = [0.1, 0.9, 0.4, 0.6];
        let pw = b.point_weights(&ts, &[1.0, 0.25]);
        assert_eq!(pw, vec![1.0, 0.25, 1.0, 0.25]);
    }
}
