//! Axis-aligned domains and tensor-product grids.

/// An axis-aligned box domain: per-axis `[lo, hi]` intervals.
#[derive(Clone, Debug, PartialEq)]
pub struct Domain {
    /// Per-axis bounds.
    pub bounds: Vec<(f64, f64)>,
}

impl Domain {
    /// Build from bounds.
    ///
    /// # Panics
    /// Panics when any interval is empty or inverted.
    pub fn new(bounds: &[(f64, f64)]) -> Self {
        for &(lo, hi) in bounds {
            assert!(hi > lo, "degenerate interval [{lo}, {hi}]");
        }
        Domain {
            bounds: bounds.to_vec(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Hyper-volume.
    pub fn volume(&self) -> f64 {
        self.bounds.iter().map(|(lo, hi)| hi - lo).product()
    }

    /// True when `p` lies inside (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.len() == self.dim()
            && p.iter()
                .zip(&self.bounds)
                .all(|(&x, &(lo, hi))| x >= lo && x <= hi)
    }

    /// Map a unit-cube point into this domain.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        u.iter()
            .zip(&self.bounds)
            .map(|(&ui, &(lo, hi))| lo + ui * (hi - lo))
            .collect()
    }
}

/// `n` evenly spaced points covering `[a, b]` inclusive.
///
/// # Panics
/// Panics when `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs n ≥ 2");
    let step = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + step * i as f64).collect()
}

/// Full tensor-product grid over a domain with `per_axis[i]` points on axis
/// `i`; rows are points in row-major (last axis fastest) order.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn cartesian_grid(domain: &Domain, per_axis: &[usize]) -> Vec<Vec<f64>> {
    assert_eq!(per_axis.len(), domain.dim(), "per_axis arity");
    let axes: Vec<Vec<f64>> = domain
        .bounds
        .iter()
        .zip(per_axis)
        .map(|(&(lo, hi), &n)| linspace(lo, hi, n))
        .collect();
    let total: usize = per_axis.iter().product();
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; per_axis.len()];
    for _ in 0..total {
        out.push(idx.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect());
        // odometer increment, last axis fastest
        for d in (0..idx.len()).rev() {
            idx[d] += 1;
            if idx[d] < per_axis[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_queries() {
        let d = Domain::new(&[(-1.0, 1.0), (0.0, 2.0)]);
        assert_eq!(d.dim(), 2);
        assert!((d.volume() - 4.0).abs() < 1e-15);
        assert!(d.contains(&[0.0, 1.0]));
        assert!(!d.contains(&[0.0, 2.5]));
        assert_eq!(d.from_unit(&[0.5, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn grid_size_and_ordering() {
        let d = Domain::new(&[(0.0, 1.0), (0.0, 1.0)]);
        let g = cartesian_grid(&d, &[2, 3]);
        assert_eq!(g.len(), 6);
        // last axis fastest
        assert_eq!(g[0], vec![0.0, 0.0]);
        assert_eq!(g[1], vec![0.0, 0.5]);
        assert_eq!(g[2], vec![0.0, 1.0]);
        assert_eq!(g[3], vec![1.0, 0.0]);
        assert_eq!(g[5], vec![1.0, 1.0]);
    }

    #[test]
    fn grid_covers_corners() {
        let d = Domain::new(&[(-1.0, 1.0), (0.0, 1.5), (0.0, 0.7)]);
        let g = cartesian_grid(&d, &[3, 3, 3]);
        assert_eq!(g.len(), 27);
        assert!(g.contains(&vec![-1.0, 0.0, 0.0]));
        assert!(g.contains(&vec![1.0, 1.5, 0.7]));
        assert!(g.iter().all(|p| d.contains(p)));
    }

    #[test]
    #[should_panic]
    fn inverted_interval_rejected() {
        let _ = Domain::new(&[(1.0, -1.0)]);
    }
}
