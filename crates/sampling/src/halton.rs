//! Halton low-discrepancy sequences.

use crate::grid::Domain;

const PRIMES: [usize; 8] = [2, 3, 5, 7, 11, 13, 17, 19];

/// The radical inverse of `i` in base `b` — the core of the Halton
/// construction.
fn radical_inverse(mut i: usize, b: usize) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    while i > 0 {
        f /= b as f64;
        r += f * (i % b) as f64;
        i /= b;
    }
    r
}

/// The first `n` points of the Halton sequence mapped into `domain`
/// (dimension ≤ 8; the leading index is skipped to avoid the origin).
///
/// # Panics
/// Panics for dimensions above 8.
pub fn halton_points(domain: &Domain, n: usize) -> Vec<Vec<f64>> {
    let d = domain.dim();
    assert!(d <= PRIMES.len(), "Halton supports up to 8 dimensions");
    (1..=n)
        .map(|i| {
            let u: Vec<f64> = (0..d).map(|a| radical_inverse(i, PRIMES[a])).collect();
            domain.from_unit(&u)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_prefix_is_van_der_corput() {
        // 1/2, 1/4, 3/4, 1/8, 5/8, …
        let d = Domain::new(&[(0.0, 1.0)]);
        let pts = halton_points(&d, 5);
        let want = [0.5, 0.25, 0.75, 0.125, 0.625];
        for (p, w) in pts.iter().zip(want) {
            assert!((p[0] - w).abs() < 1e-15);
        }
    }

    #[test]
    fn deterministic_and_in_domain() {
        let d = Domain::new(&[(-1.0, 1.0), (0.0, 5.0)]);
        let a = halton_points(&d, 100);
        let b = halton_points(&d, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| d.contains(p)));
    }

    #[test]
    fn covers_space_evenly() {
        // Each quadrant of the unit square should receive ~25% of points.
        let d = Domain::new(&[(0.0, 1.0), (0.0, 1.0)]);
        let pts = halton_points(&d, 1000);
        let mut counts = [0usize; 4];
        for p in &pts {
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            counts[q] += 1;
        }
        for c in counts {
            assert!((c as f64 - 250.0).abs() < 25.0, "{counts:?}");
        }
    }
}
