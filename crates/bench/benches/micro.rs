//! Criterion micro-benchmarks backing the wall-time columns of the
//! experiment tables: tensor matmul, tape forward+backward, FFT,
//! split-step propagation, statevector gates, and one full PINN training
//! epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpinn_autodiff::Graph;
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_core::trainer::PinnTask;
use qpinn_dual::Complex64;
use qpinn_fft::FftPlan;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_problems::TdseProblem;
use qpinn_qcircuit::{Ansatz, InputScaling, QuantumLayer};
use qpinn_solvers::{split_step_evolve, Grid1d, Nonlinearity};
use qpinn_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn([n, n], 1.0, &mut rng);
        let b = Tensor::randn([n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

fn bench_tape_forward_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn([512, 64], 1.0, &mut rng);
    let w1 = Tensor::randn([64, 64], 0.1, &mut rng);
    let w2 = Tensor::randn([64, 1], 0.1, &mut rng);
    c.bench_function("tape_mlp_fwd_bwd_512x64", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let w1v = g.input(w1.clone());
            let w2v = g.input(w2.clone());
            let h = g.matmul(xv, w1v);
            let h = g.tanh(h);
            let y = g.matmul(h, w2v);
            let loss = g.mse(y);
            g.backward(loss)
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let sig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.05).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let mut buf = sig.clone();
                plan.forward(&mut buf);
                buf
            })
        });
    }
    group.finish();
}

fn bench_split_step(c: &mut Criterion) {
    let grid = Grid1d::periodic(-10.0, 10.0, 256);
    let psi0: Vec<Complex64> = grid
        .points()
        .iter()
        .map(|&x| Complex64::new((-x * x).exp(), 0.0))
        .collect();
    c.bench_function("split_step_256x100", |bch| {
        bch.iter(|| {
            split_step_evolve(
                &grid,
                &|_| 0.0,
                Nonlinearity::Cubic { g: 1.0 },
                &psi0,
                0.5,
                100,
                100,
            )
        })
    });
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_forward");
    for &nq in &[4usize, 8, 12] {
        let layer = QuantumLayer {
            n_qubits: nq,
            layers: 4,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let theta = layer.init_params(&mut rng);
        let a: Vec<f64> = (0..nq).map(|i| (i as f64 * 0.3).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |bch, _| {
            bch.iter(|| layer.forward_sample(&a, &theta))
        });
    }
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 24, 3);
    cfg.n_collocation = 512;
    cfg.reference = (128, 100, 8);
    cfg.eval_grid = (16, 4);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    c.bench_function("tdse_epoch_512pts_24x3", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let loss = task.build_loss(&mut ctx);
            ctx.g.backward(loss)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_tape_forward_backward, bench_fft, bench_split_step, bench_statevector, bench_training_epoch
}
criterion_main!(benches);
