//! # qpinn-bench
//!
//! The experiment harness: one binary per reconstructed table (T1–T6) and
//! figure (F1–F5) — see `DESIGN.md` §5 for the experiment index — plus
//! criterion micro-benchmarks (`benches/micro.rs`).
//!
//! Each binary prints its table/series as aligned text and writes a JSON
//! record to `target/experiments/<id>.json`. Default settings are sized
//! for a quick laptop run; pass `--full` for paper-scale settings.

#![deny(missing_docs)]

use qpinn_core::report::Json;
use qpinn_telemetry as telemetry;

/// Harness-wide run options parsed from the command line.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Paper-scale settings (`--full`).
    pub full: bool,
    /// Seed list length override (`--seeds N`).
    pub n_seeds: usize,
    /// Checkpoint root directory (`--ckpt DIR`). When set, experiments
    /// write crash-safe snapshots under it (one subdirectory per run) and
    /// resume-capable binaries pick up from the newest intact snapshot.
    pub ckpt: Option<std::path::PathBuf>,
    /// Telemetry JSONL output path (`--telemetry PATH`). When set,
    /// [`RunOpts::from_args`] installs a JSONL file sink (every span,
    /// metric flush, mark, and warning as one JSON object per line) plus a
    /// stderr sink for warnings, and [`save`] writes a final metrics
    /// snapshot next to the experiment record.
    pub telemetry: Option<std::path::PathBuf>,
    /// Epoch budget override (`--epochs N`), applied by
    /// [`RunOpts::pick_epochs`] over both quick and full defaults. Sized
    /// for CI smoke runs that need a real binary to finish in seconds.
    pub epochs: Option<usize>,
    /// Live metrics endpoint address (`--serve-metrics ADDR`, e.g.
    /// `127.0.0.1:9095`; port 0 picks a free port). When set,
    /// [`RunOpts::from_args`] starts a [`qpinn_obs::MetricsServer`]
    /// exposing `/metrics`, `/metrics.json`, `/progress`, and `/healthz`
    /// for the lifetime of the process.
    pub serve_metrics: Option<String>,
    /// Inference-server address (`--serve ADDR`, e.g. `127.0.0.1:0`;
    /// port 0 picks a free port and prints it). When set,
    /// [`RunOpts::from_args`] starts a [`qpinn_serve::ServeServer`] with
    /// its model registry under `target/models` (or `--models DIR`),
    /// exposing `/v1/eval`, `/v1/train`, `/v1/models`, and the shared
    /// metrics routes for the lifetime of the process. Useful for
    /// driving load against a bench-built binary.
    pub serve: Option<String>,
    /// Access-log path for the inference server (`--access-log PATH`,
    /// only meaningful with `--serve`). Every request — including sheds
    /// and errors — is appended as one `qpinn-access-v1` JSON line with
    /// its trace id and queue/batch/compute/serialize latency split;
    /// feed the file to `qpinn-obs requests` / `qpinn-obs slo`.
    pub access_log: Option<std::path::PathBuf>,
    /// `qpinn-run-v1` run-record store directory (`--runs DIR`). When
    /// set, every training run the experiment performs writes a durable
    /// manifest + epoch series under `DIR/<run_id>/` (via
    /// [`RunOpts::run_cfg`]), the experiment record lists the session's
    /// run ids, and `--serve` jobs record there too. Inspect with
    /// `qpinn-obs runs list/show/diff/regress`.
    pub runs: Option<std::path::PathBuf>,
}

impl RunOpts {
    /// Parse from `std::env::args`. Installs telemetry sinks as a side
    /// effect when `--telemetry PATH` is present.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let n_seeds = args
            .iter()
            .position(|a| a == "--seeds")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 5 } else { 2 });
        let ckpt = args
            .iter()
            .position(|a| a == "--ckpt")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        let telemetry_path = args
            .iter()
            .position(|a| a == "--telemetry")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        let epochs = args
            .iter()
            .position(|a| a == "--epochs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok());
        let serve_metrics = args
            .iter()
            .position(|a| a == "--serve-metrics")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let serve = args
            .iter()
            .position(|a| a == "--serve")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let access_log = args
            .iter()
            .position(|a| a == "--access-log")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        let runs = args
            .iter()
            .position(|a| a == "--runs")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        if let Some(addr) = &serve {
            let models_dir = args
                .iter()
                .position(|a| a == "--models")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::Path::new("target").join("models"));
            let mut cfg = qpinn_serve::ServeConfig::new(&models_dir);
            cfg.trace.access_log = access_log.clone();
            cfg.runs = runs.clone();
            match qpinn_serve::ServeServer::start(addr.as_str(), cfg) {
                Ok(server) => {
                    println!(
                        "serving inference on http://{} (models: {})",
                        server.local_addr(),
                        models_dir.display()
                    );
                    // Like the metrics endpoint: lives until process exit.
                    std::mem::forget(server);
                }
                Err(e) => eprintln!(
                    "warning: cannot bind inference server {addr}: {e}; continuing without"
                ),
            }
        }
        if let Some(addr) = &serve_metrics {
            match qpinn_obs::MetricsServer::start(addr.as_str()) {
                Ok(server) => {
                    println!("serving metrics on http://{}/metrics", server.local_addr());
                    // The endpoint lives until process exit; leaking the
                    // handle keeps the accept thread alive without a
                    // shutdown path every binary would have to thread.
                    std::mem::forget(server);
                }
                Err(e) => eprintln!(
                    "warning: cannot bind metrics endpoint {addr}: {e}; continuing without"
                ),
            }
        }
        if let Some(path) = &telemetry_path {
            match telemetry::JsonlSink::create(path) {
                Ok(sink) => {
                    telemetry::install(std::sync::Arc::new(sink));
                    telemetry::install(std::sync::Arc::new(telemetry::StderrSink));
                }
                Err(e) => eprintln!(
                    "warning: cannot open telemetry sink {}: {e}; continuing without",
                    path.display()
                ),
            }
        }
        RunOpts {
            full,
            n_seeds,
            ckpt,
            telemetry: telemetry_path,
            epochs,
            serve_metrics,
            serve,
            access_log,
            runs,
        }
    }

    /// A [`qpinn_core::runs::RunConfig`] for one training run of this
    /// experiment, or `None` when `--runs` was not given. `task` is the
    /// `runs list` label (e.g. `t1/harmonic`), `config` the document
    /// hashed into the manifest's `config_hash`.
    pub fn run_cfg(&self, task: &str, seed: u64, config: Json) -> Option<qpinn_core::runs::RunConfig> {
        self.runs
            .as_ref()
            .map(|dir| qpinn_core::runs::RunConfig::new(dir, task, seed).config(config))
    }

    /// The seed list for multi-seed experiments.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.n_seeds as u64).map(|i| 100 + i).collect()
    }

    /// Pick between quick and full values.
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }

    /// Like [`RunOpts::pick`] for epoch budgets, but a `--epochs N`
    /// override wins over both.
    pub fn pick_epochs(&self, quick: usize, full: usize) -> usize {
        self.epochs.unwrap_or_else(|| self.pick(quick, full))
    }
}

/// Print the standard experiment banner.
pub fn banner(id: &str, title: &str, opts: &RunOpts) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!(
        "mode: {} | seeds: {}",
        if opts.full { "full" } else { "quick" },
        opts.n_seeds
    );
    if let Some(p) = &opts.telemetry {
        println!("telemetry: {}", p.display());
    }
    println!("==========================================================");
}

/// The git revision the binary runs from, read straight from
/// `.git/HEAD` (resolving one level of `ref:` indirection) walking up
/// from the working directory — no `git` subprocess. `None` outside a
/// checkout or on an unborn branch.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            let rev = match text.strip_prefix("ref: ") {
                Some(refname) => std::fs::read_to_string(dir.join(".git").join(refname.trim()))
                    .ok()
                    .map(|s| s.trim().to_string())
                    // Packed refs: fall back to scanning .git/packed-refs.
                    .or_else(|| {
                        let packed =
                            std::fs::read_to_string(dir.join(".git").join("packed-refs")).ok()?;
                        packed.lines().find_map(|l| {
                            l.strip_suffix(refname.trim())
                                .map(|hash| hash.trim().to_string())
                        })
                    })?,
                None => text.to_string(),
            };
            return (!rev.is_empty()).then_some(rev);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Build-provenance stamp attached to every experiment record: git
/// revision, resolved SIMD dispatch width, and work-stealing pool
/// width — so a committed `BENCH_*.json` entry is attributable to the
/// code and machine shape that produced it. The keys deliberately
/// carry no perf-direction suffix, so `qpinn-obs check` never gates on
/// them.
pub fn provenance() -> Json {
    Json::obj(vec![
        (
            "git_rev",
            git_rev().map(Json::Str).unwrap_or(Json::Null),
        ),
        ("simd", Json::Num(qpinn_tensor::simd::width() as f64)),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
    ])
}

/// Persist the experiment record and report the path. Top-level object
/// records gain a `provenance` stamp ([`provenance`]) and, when the
/// process recorded `qpinn-run-v1` runs (`--runs DIR`), the session's
/// `run_ids`. With telemetry enabled, also samples the pool counters
/// into the event stream, writes the final metrics-registry snapshot to
/// `target/experiments/<id>.metrics.json`, and flushes all sinks.
pub fn save(id: &str, value: &Json) {
    let stamped;
    let value = match value {
        Json::Obj(fields) => {
            let mut fields = fields.clone();
            if !fields.iter().any(|(k, _)| k == "provenance") {
                fields.push(("provenance".to_string(), provenance()));
            }
            let run_ids = qpinn_core::runs::session_run_ids();
            if !run_ids.is_empty() && !fields.iter().any(|(k, _)| k == "run_ids") {
                fields.push((
                    "run_ids".to_string(),
                    Json::Arr(run_ids.into_iter().map(Json::Str).collect()),
                ));
            }
            stamped = Json::Obj(fields);
            &stamped
        }
        other => other,
    };
    match qpinn_core::report::write_experiment_json(id, value) {
        Ok(p) => println!("\n[written {}]", p.display()),
        Err(e) => {
            let msg = telemetry::warn(
                "experiment_record_write_failed",
                format!("could not write record for {id}: {e}"),
            );
            eprintln!("\n[{msg}]");
        }
    }
    if telemetry::enabled() {
        qpinn_core::obs::emit_pool_stats(id);
        qpinn_core::obs::emit_buffer_pool_stats(id);
        let snap = telemetry::global().snapshot();
        telemetry::emit(snap.to_event("final_metrics"));
        let path = std::path::Path::new("target")
            .join("experiments")
            .join(format!("{id}.metrics.json"));
        match std::fs::write(&path, snap.to_json()) {
            Ok(()) => println!("[metrics snapshot {}]", path.display()),
            Err(e) => {
                let msg = telemetry::warn(
                    "metrics_snapshot_write_failed",
                    format!("could not write {}: {e}", path.display()),
                );
                eprintln!("[{msg}]");
            }
        }
        telemetry::flush();
    }
}

/// The harness-standard Adam schedule (step decay ×0.85) for a given epoch
/// budget.
pub fn standard_train(epochs: usize) -> qpinn_core::TrainConfig {
    qpinn_core::TrainConfig {
        epochs,
        schedule: qpinn_optim::LrSchedule::Step {
            lr0: 3e-3,
            factor: 0.85,
            every: (epochs / 8).max(1),
        },
        log_every: (epochs / 20).max(1),
        eval_every: 0,
        clip: Some(100.0),
        // L-BFGS polishing after Adam is the single most effective
        // convergence lever at fixed budget (see EXPERIMENTS.md).
        lbfgs_polish: Some((epochs / 10).clamp(50, 200)),
        checkpoint: None,
        // Bench runs are unattended: stop runs whose loss has exploded
        // rather than burning the rest of the budget.
        divergence: Some(qpinn_core::DivergenceGuard::default()),
        progress: None,
        run: None,
    }
}

/// The value following `--NAME` in an argument list, if any. The shared
/// primitive behind the registry-facing flags (`--problem`, `--ansatz`)
/// so binaries and tests parse them identically.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Resolve a `--problem KEY` value against the problem registry. The
/// error message lists every registered key (it is shown verbatim to the
/// user before exiting with status 2).
pub fn resolve_problem(key: &str) -> Result<Box<dyn qpinn_problems::PdeProblem>, String> {
    qpinn_problems::lookup(key).map_err(|e| format!("--problem: {e}"))
}

/// Resolve an `--ansatz NAME` value against the named ansatz table. As
/// with [`resolve_problem`], the error lists the valid names.
pub fn resolve_ansatz(name: &str) -> Result<qpinn_qcircuit::Ansatz, String> {
    qpinn_qcircuit::Ansatz::from_name(name).ok_or_else(|| {
        format!(
            "--ansatz: unknown ansatz '{name}'; registered: {}",
            qpinn_qcircuit::Ansatz::names().join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_switches_on_mode() {
        let quick = RunOpts {
            full: false,
            n_seeds: 2,
            ckpt: None,
            telemetry: None,
            epochs: None,
            serve_metrics: None,
            serve: None,
            access_log: None,
            runs: None,
        };
        let full = RunOpts {
            full: true,
            n_seeds: 5,
            ckpt: None,
            telemetry: None,
            epochs: None,
            serve_metrics: None,
            serve: None,
            access_log: None,
            runs: None,
        };
        assert_eq!(quick.pick(1, 10), 1);
        assert_eq!(full.pick(1, 10), 10);
        assert_eq!(quick.seeds(), vec![100, 101]);
    }

    #[test]
    fn epochs_override_beats_mode() {
        let mut opts = RunOpts {
            full: false,
            n_seeds: 2,
            ckpt: None,
            telemetry: None,
            epochs: None,
            serve_metrics: None,
            serve: None,
            access_log: None,
            runs: None,
        };
        assert_eq!(opts.pick_epochs(100, 1000), 100);
        opts.full = true;
        assert_eq!(opts.pick_epochs(100, 1000), 1000);
        opts.epochs = Some(7);
        assert_eq!(opts.pick_epochs(100, 1000), 7);
    }

    #[test]
    fn flag_value_parses_pairs_and_ignores_missing() {
        let args: Vec<String> = ["sweep", "--problem", "helmholtz", "--ansatz", "layered"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--problem").as_deref(), Some("helmholtz"));
        assert_eq!(flag_value(&args, "--ansatz").as_deref(), Some("layered"));
        assert_eq!(flag_value(&args, "--epochs"), None);
        // trailing flag with no value
        let args = vec!["sweep".to_string(), "--problem".to_string()];
        assert_eq!(flag_value(&args, "--problem"), None);
    }

    #[test]
    fn every_registry_key_round_trips_through_the_problem_flag() {
        for key in qpinn_problems::keys() {
            let p = resolve_problem(key).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(p.key(), key);
        }
    }

    #[test]
    fn every_ansatz_name_round_trips_through_the_ansatz_flag() {
        for name in qpinn_qcircuit::Ansatz::names() {
            let a = resolve_ansatz(name).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(a.name(), name);
        }
    }

    #[test]
    fn unknown_flag_values_error_and_list_the_registry() {
        let err = match resolve_problem("not-a-problem") {
            Ok(p) => panic!("resolved unknown key to {}", p.key()),
            Err(e) => e,
        };
        assert!(err.contains("helmholtz"), "should list keys: {err}");
        assert!(err.contains("gray-scott"), "should list keys: {err}");
        let err = resolve_ansatz("not-an-ansatz").unwrap_err();
        assert!(err.contains("layered"), "should list names: {err}");
    }
}
