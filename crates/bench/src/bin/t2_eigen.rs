//! **T2 — eigenvalue accuracy table.** The first `k` bound states of the
//! infinite well and the harmonic oscillator, learned by the
//! residual-formulation eigen-task with deflation; reports `|E − E_ref|`
//! and the wavefunction profile error per state.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{EigenTask, EigenTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_problems::EigenProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("T2", "eigenvalue accuracy with deflation", &opts);

    let n_states = opts.pick(3, 4);
    let epochs = opts.pick_epochs(1200, 5000);
    let train = TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 5e-3,
            factor: 0.7,
            every: (epochs / 4).max(1),
        },
        log_every: epochs,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: Some(opts.pick(60, 150)),
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    };

    let mut table = TextTable::new(&["problem", "state", "E_pinn", "E_ref", "|ΔE|", "ψ rel-L2"]);
    let mut records = Vec::new();

    for problem in [EigenProblem::infinite_well(), EigenProblem::harmonic(1.0)] {
        // crude initial guesses that bracket the spectrum from below
        let e0s = match problem.exact_energies() {
            Some(es) => es.iter().map(|e| 0.8 * e).collect::<Vec<_>>(),
            None => (0..n_states).map(|k| 0.5 + k as f64).collect(),
        };
        let mut prev_states = Vec::new();
        for k in 0..n_states {
            let mut cfg = EigenTaskConfig::standard(e0s[k]);
            cfg.n_collocation = opts.pick(128, 256);
            cfg.hidden = vec![opts.pick(24, 48); 2];
            cfg.reference_nx = opts.pick(601, 1201);
            let mut params = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(7 + k as u64);
            let mut task = EigenTask::new(
                problem.clone(),
                &cfg,
                k,
                prev_states.clone(),
                &mut params,
                &mut rng,
            );
            let _log = Trainer::new(train.clone()).train(&mut task, &mut params);
            // variational re-estimate from the learned ψ
            let e_pinn = task.rayleigh_energy(&params);
            let e_ref = task.reference_energy();
            let perr = task.profile_error(&params);
            table.row(&[
                problem.name.clone(),
                format!("{k}"),
                format!("{e_pinn:.5}"),
                format!("{e_ref:.5}"),
                format!("{:.2e}", (e_pinn - e_ref).abs()),
                format!("{perr:.2e}"),
            ]);
            records.push(Json::obj(vec![
                ("problem", Json::Str(problem.name.clone())),
                ("state", Json::Num(k as f64)),
                ("e_pinn", Json::Num(e_pinn)),
                ("e_ref", Json::Num(e_ref)),
                ("profile_error", Json::Num(perr)),
            ]));
            prev_states.push(task.predictions_on_grid(&params));
        }
    }

    println!("\n{}", table.render());
    save(
        "t2_eigen",
        &Json::obj(vec![
            ("id", Json::Str("T2".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
