//! **F1 — convergence curves.** Loss, gradient norm, and relative L2 error
//! versus epoch on the NLS benchmark — the series behind the convergence
//! figure.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{NlsTask, NlsTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_problems::NlsProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("F1", "convergence trajectories (NLS benchmark)", &opts);

    let problem = NlsProblem::raissi_benchmark();
    let epochs = opts.pick_epochs(800, 8000);
    let mut cfg = NlsTaskConfig::standard(&problem, opts.pick(24, 64), opts.pick(3, 4));
    cfg.n_collocation = opts.pick(384, 4096);
    cfg.reference = (256, opts.pick(600, 2000), 32);
    cfg.eval_grid = (48, 16);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);

    let log = Trainer::new(TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 2e-3,
            factor: 0.85,
            every: (epochs / 6).max(1),
        },
        log_every: (epochs / 25).max(1),
        eval_every: (epochs / 10).max(1),
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);

    let mut table = TextTable::new(&["epoch", "loss", "grad-norm"]);
    for i in 0..log.epochs.len() {
        table.row(&[
            format!("{}", log.epochs[i]),
            format!("{:.4e}", log.loss[i]),
            format!("{:.3e}", log.grad_norm[i]),
        ]);
    }
    println!("\n{}", table.render());

    let mut etable = TextTable::new(&["epoch", "rel-L2 error"]);
    for i in 0..log.eval_epochs.len() {
        etable.row(&[
            format!("{}", log.eval_epochs[i]),
            format!("{:.4e}", log.error[i]),
        ]);
    }
    println!("{}", etable.render());
    println!(
        "loss (log scale):  {}",
        qpinn_core::report::sparkline_log(&log.loss)
    );
    println!(
        "rel-L2 error:      {}",
        qpinn_core::report::sparkline_log(&log.error)
    );
    println!(
        "final: loss {:.4e}, rel-L2 {:.4e}, {:.1}s",
        log.final_loss, log.final_error, log.wall_s
    );

    save(
        "f1_convergence",
        &Json::obj(vec![
            ("id", Json::Str("F1".into())),
            (
                "epochs",
                Json::nums(&log.epochs.iter().map(|&e| e as f64).collect::<Vec<_>>()),
            ),
            ("loss", Json::nums(&log.loss)),
            ("grad_norm", Json::nums(&log.grad_norm)),
            (
                "eval_epochs",
                Json::nums(
                    &log.eval_epochs
                        .iter()
                        .map(|&e| e as f64)
                        .collect::<Vec<_>>(),
                ),
            ),
            ("error", Json::nums(&log.error)),
            ("final_error", Json::Num(log.final_error)),
        ]),
    );
}
