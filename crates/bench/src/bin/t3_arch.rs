//! **T3 — architecture/parameter ablation.** Width × depth sweep on the
//! free-packet TDSE: error versus trainable-parameter count.

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::experiment::{aggregate, run_seeds};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_nn::ParamSet;
use qpinn_problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("T3", "width × depth ablation (free-packet TDSE)", &opts);

    let widths = if opts.full {
        vec![32usize, 64, 128]
    } else {
        vec![16, 24, 32]
    };
    let depths = if opts.full { vec![2usize, 4, 6] } else { vec![2, 3] };
    let epochs = opts.pick_epochs(400, 4000);
    let cfg_train = standard_train(epochs);
    let problem = TdseProblem::free_packet();

    let mut table = TextTable::new(&["width", "depth", "params", "rel-L2 (mean±std)", "s/run"]);
    let mut records = Vec::new();
    for &w in &widths {
        for &d in &depths {
            let runs = run_seeds(&opts.seeds(), &cfg_train, |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut cfg = TdseTaskConfig::standard(&problem, w, d);
                cfg.n_collocation = opts.pick(384, 4096);
                cfg.reference = (256, opts.pick(400, 1500), 32);
                cfg.eval_grid = (64, 24);
                let mut params = ParamSet::new();
                let task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
                (task, params)
            });
            let agg = aggregate(&runs);
            table.row(&[
                format!("{w}"),
                format!("{d}"),
                format!("{}", runs[0].n_params),
                qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
                format!("{:.1}", agg.mean_wall_s),
            ]);
            records.push(Json::obj(vec![
                ("width", Json::Num(w as f64)),
                ("depth", Json::Num(d as f64)),
                ("n_params", Json::Num(runs[0].n_params as f64)),
                ("mean_error", Json::Num(agg.mean_error)),
                ("std_error", Json::Num(agg.std_error)),
            ]));
        }
    }

    println!("\n{}", table.render());
    save(
        "t3_arch",
        &Json::obj(vec![
            ("id", Json::Str("T3".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
