//! **T6 — hybrid quantum vs classical head-to-head.** The variational
//! (Rayleigh quotient) ground-state problem solved by hybrid
//! quantum-classical networks across ansatz × input-scaling combinations
//! (plus a data-reuploading variant), against a parameter-matched
//! classical control. Reports the energy error and trainable-parameter
//! counts.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::hybrid::{HybridEigenTask, HybridNet};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{EigenTask, EigenTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_problems::EigenProblem;
use qpinn_qcircuit::{Ansatz, InputScaling, QuantumLayer};
use rand::{rngs::StdRng, SeedableRng};

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 5e-3,
            factor: 0.8,
            every: (epochs / 4).max(1),
        },
        log_every: epochs,
        eval_every: 0,
        clip: Some(50.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    }
}

fn run_hybrid(
    problem: &EigenProblem,
    q: QuantumLayer,
    hidden: usize,
    n_coll: usize,
    epochs: usize,
    table: &mut TextTable,
    records: &mut Vec<Json>,
) {
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(21);
    let net = HybridNet::new(&mut params, &mut rng, hidden, q, "hyb");
    let mut task = HybridEigenTask::new(problem.clone(), net, n_coll, 401);
    let _ = Trainer::new(train_cfg(epochs)).train(&mut task, &mut params);
    let e = task.energy(&params);
    let de = (e - task.reference_energy()).abs();
    let label = if q.reupload {
        "hybrid+reupload".to_string()
    } else {
        "hybrid".to_string()
    };
    table.row(&[
        label.clone(),
        q.ansatz.name().into(),
        q.scaling.name().into(),
        format!("{}", params.n_scalars()),
        format!("{e:.5}"),
        format!("{de:.2e}"),
    ]);
    records.push(Json::obj(vec![
        ("model", Json::Str(label)),
        ("ansatz", Json::Str(q.ansatz.name().into())),
        ("scaling", Json::Str(q.scaling.name().into())),
        ("n_params", Json::Num(params.n_scalars() as f64)),
        ("energy", Json::Num(e)),
        ("error", Json::Num(de)),
    ]));
}

fn main() {
    let opts = RunOpts::from_args();
    banner(
        "T6",
        "hybrid QPINN vs classical on the variational ground state",
        &opts,
    );
    let problem = EigenProblem::harmonic(1.0);
    let epochs = opts.pick_epochs(400, 2000);
    let n_coll = opts.pick(48, 128);
    let hidden = opts.pick(10, 16);
    let nq = opts.pick(3, 4);
    let layers = opts.pick(2, 3);

    let ansaetze = if opts.full {
        Ansatz::all().to_vec()
    } else {
        vec![Ansatz::BasicEntangling, Ansatz::NoEntangling]
    };
    let scalings = if opts.full {
        InputScaling::all().to_vec()
    } else {
        vec![InputScaling::Acos, InputScaling::Pi]
    };

    let mut table = TextTable::new(&["model", "ansatz", "scaling", "params", "E", "|ΔE|"]);
    let mut records = Vec::new();

    // classical control: the residual-formulation eigen task with a
    // comparably sized network
    {
        let mut cfg = EigenTaskConfig::standard(0.4);
        cfg.n_collocation = n_coll;
        cfg.hidden = vec![hidden, nq.max(4)];
        cfg.reference_nx = 401;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut task = EigenTask::new(problem.clone(), &cfg, 0, Vec::new(), &mut params, &mut rng);
        let mut tcfg = train_cfg(opts.pick(1500, 4000));
        tcfg.lbfgs_polish = Some(60);
        let _ = Trainer::new(tcfg).train(&mut task, &mut params);
        let e = task.energy(&params);
        let de = (e - task.reference_energy()).abs();
        table.row(&[
            "classical".into(),
            "—".into(),
            "—".into(),
            format!("{}", params.n_scalars()),
            format!("{e:.5}"),
            format!("{de:.2e}"),
        ]);
        records.push(Json::obj(vec![
            ("model", Json::Str("classical".into())),
            ("n_params", Json::Num(params.n_scalars() as f64)),
            ("energy", Json::Num(e)),
            ("error", Json::Num(de)),
        ]));
    }

    for &ansatz in &ansaetze {
        for &scaling in &scalings {
            run_hybrid(
                &problem,
                QuantumLayer {
                    n_qubits: nq,
                    layers,
                    ansatz,
                    scaling,
                    reupload: false,
                },
                hidden,
                n_coll,
                epochs,
                &mut table,
                &mut records,
            );
        }
    }
    // data re-uploading variant of the best-known template (same parameter
    // count, richer Fourier spectrum)
    run_hybrid(
        &problem,
        QuantumLayer {
            n_qubits: nq,
            layers,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Acos,
            reupload: true,
        },
        hidden,
        n_coll,
        epochs,
        &mut table,
        &mut records,
    );

    println!("\n{}", table.render());
    println!("(reference ground-state energy: 0.5; Rayleigh quotient upper-bounds it)");
    save(
        "t6_hybrid",
        &Json::obj(vec![
            ("id", Json::Str("T6".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
