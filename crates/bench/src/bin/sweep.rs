//! **sweep — registry-driven problem × ansatz benchmark.** The front door
//! of the problem zoo: pick any registered PDE family with `--problem KEY`
//! (see `--list-problems`) and optionally a named variational template
//! with `--ansatz NAME` (see `--list-ansatze`). The classical leg trains a
//! [`qpinn_core::ZooTask`] for the chosen problem and reports the final
//! loss and rel-L2 error against the problem's reference solution; the
//! quantum leg (when `--ansatz` is given) trains a hybrid
//! quantum-classical network built from the named ansatz on the
//! variational ground-state benchmark and reports its energy error.
//!
//! Unknown keys and names exit with status 2 after printing the
//! registered alternatives, so shell loops over `--list-problems` output
//! always either train or fail loudly.

use qpinn_bench::{banner, flag_value, resolve_ansatz, resolve_problem, save, standard_train, RunOpts};
use qpinn_core::hybrid::{HybridEigenTask, HybridNet};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::trainer::{PinnTask, Trainer};
use qpinn_core::{ZooTask, ZooTaskConfig};
use qpinn_nn::ParamSet;
use qpinn_problems::EigenProblem;
use qpinn_qcircuit::{Ansatz, InputScaling, QuantumLayer};
use rand::{rngs::StdRng, SeedableRng};

fn usage() {
    println!("usage: sweep --problem KEY [--ansatz NAME] [--full] [--epochs N] [--seeds N] [--runs DIR]");
    println!("       sweep --list-problems | --list-ansatze");
    println!();
    println!("problems: {}", qpinn_problems::keys().join(", "));
    println!("ansatze:  {}", Ansatz::names().join(", "));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list-problems") {
        for key in qpinn_problems::keys() {
            println!("{key}");
        }
        return;
    }
    if args.iter().any(|a| a == "--list-ansatze") {
        for name in Ansatz::names() {
            println!("{name}");
        }
        return;
    }
    let key = match flag_value(&args, "--problem") {
        Some(k) => k,
        None => {
            usage();
            return;
        }
    };
    let problem = match resolve_problem(&key) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let ansatz = match flag_value(&args, "--ansatz") {
        None => None,
        Some(name) => match resolve_ansatz(&name) {
            Ok(a) => Some(a),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };

    let opts = RunOpts::from_args();
    banner(
        "SWEEP",
        &format!(
            "problem zoo: {} ({})",
            problem.key(),
            problem.describe()
        ),
        &opts,
    );

    let mut table = TextTable::new(&["leg", "target", "params", "final loss", "error"]);
    let mut records = Vec::new();

    // Classical leg: the registry trainer on the chosen problem.
    {
        let cfg = if opts.full {
            ZooTaskConfig::standard()
        } else {
            ZooTaskConfig::quick()
        };
        let epochs = opts.pick_epochs(150, 3000);
        let seed = opts.seeds()[0];
        let mut train = standard_train(epochs);
        train.log_every = (epochs / 5).max(1);
        train.run = opts.run_cfg(
            &format!("sweep/{}", problem.key()),
            seed,
            Json::obj(vec![
                ("problem", Json::Str(problem.key().to_string())),
                ("width", Json::Num(cfg.width as f64)),
                ("depth", Json::Num(cfg.depth as f64)),
                ("n_collocation", Json::Num(cfg.n_collocation as f64)),
            ]),
        );
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut task = match ZooTask::from_key(problem.key(), &cfg, &mut params, &mut rng) {
            Ok(t) => t,
            Err(e) => {
                // unreachable after resolve_problem, but never panic on it
                eprintln!("--problem: {e}");
                std::process::exit(2);
            }
        };
        let log = Trainer::new(train).train(&mut task, &mut params);
        let err = task.eval_error(&params);
        let loss = log.final_loss;
        println!(
            "classical: final loss {loss:.3e}, reference rel-L2 {err:.3e}"
        );
        table.row(&[
            "classical".into(),
            problem.key().into(),
            format!("{}", params.n_scalars()),
            format!("{loss:.3e}"),
            format!("{err:.3e}"),
        ]);
        records.push(Json::obj(vec![
            ("leg", Json::Str("classical".into())),
            ("problem", Json::Str(problem.key().to_string())),
            ("n_params", Json::Num(params.n_scalars() as f64)),
            ("final_loss", Json::Num(loss)),
            ("error", Json::Num(err)),
        ]));
    }

    // Quantum leg: the named ansatz on the variational ground-state
    // benchmark (the hybrid net takes one coordinate, so the 1-D harmonic
    // eigenproblem is the shared yardstick across templates).
    if let Some(ansatz) = ansatz {
        let epochs = opts.pick_epochs(200, 1500);
        let q = QuantumLayer {
            n_qubits: opts.pick(3, 4),
            layers: opts.pick(2, 3),
            ansatz,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(21);
        let net = HybridNet::new(&mut params, &mut rng, opts.pick(10, 16), q, "hyb");
        let mut task = HybridEigenTask::new(
            EigenProblem::harmonic(1.0),
            net,
            opts.pick(48, 128),
            401,
        );
        let mut train = standard_train(epochs);
        train.lbfgs_polish = None;
        let _ = Trainer::new(train).train(&mut task, &mut params);
        let e = task.energy(&params);
        let de = (e - task.reference_energy()).abs();
        println!(
            "quantum ({}): E = {e:.5}, |ΔE| = {de:.3e}",
            ansatz.name()
        );
        table.row(&[
            "quantum".into(),
            format!("harmonic/{}", ansatz.name()),
            format!("{}", params.n_scalars()),
            format!("{e:.5}"),
            format!("{de:.3e}"),
        ]);
        records.push(Json::obj(vec![
            ("leg", Json::Str("quantum".into())),
            ("ansatz", Json::Str(ansatz.name().to_string())),
            ("n_params", Json::Num(params.n_scalars() as f64)),
            ("energy", Json::Num(e)),
            ("error", Json::Num(de)),
        ]));
    }

    println!("\n{}", table.render());
    save(
        &format!("sweep_{}", problem.key().replace('-', "_")),
        &Json::obj(vec![
            ("id", Json::Str("SWEEP".into())),
            ("problem", Json::Str(problem.key().to_string())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
