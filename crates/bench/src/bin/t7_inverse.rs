//! **T7 — inverse problem.** Identify the harmonic-trap frequency ω from
//! sparse wavefunction observations (clean and noisy), reporting the
//! recovered ω against ground truth for several initial guesses.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{InverseTaskConfig, InverseTdseTask};
use qpinn_core::trainer::Trainer;
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner(
        "T7",
        "trap-frequency identification from observations",
        &opts,
    );

    let problem = TdseProblem::mild_harmonic(); // hidden truth: ω = 1
    let epochs = opts.pick_epochs(2000, 8000);
    let mut table = TextTable::new(&["ω₀ (init)", "noise", "ω recovered", "|Δω|", "s/run"]);
    let mut records = Vec::new();

    let cases: Vec<(f64, f64)> = if opts.full {
        vec![
            (0.5, 0.0),
            (0.6, 0.0),
            (1.5, 0.0),
            (2.0, 0.0),
            (0.6, 0.01),
            (0.6, 0.05),
        ]
    } else {
        vec![(0.6, 0.0), (1.5, 0.0), (0.6, 0.02)]
    };

    for (omega0, noise) in cases {
        let mut cfg = InverseTaskConfig::standard(&problem, opts.pick(24, 48), 3);
        cfg.n_collocation = opts.pick(512, 2048);
        cfg.n_observations = opts.pick(256, 1024);
        cfg.omega0 = omega0;
        cfg.noise = noise;
        cfg.w_data = 50.0;
        cfg.reference = (256, opts.pick(600, 1500), 64);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mut task = InverseTdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
        let log = Trainer::new(TrainConfig {
            epochs,
            schedule: LrSchedule::Step {
                lr0: 3e-3,
                factor: 0.9,
                every: (epochs / 8).max(1),
            },
            log_every: epochs,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        })
        .train(&mut task, &mut params);
        let omega = task.omega(&params);
        table.row(&[
            format!("{omega0:.2}"),
            format!("{noise:.2}"),
            format!("{omega:.4}"),
            format!("{:.2e}", (omega - task.true_omega()).abs()),
            format!("{:.1}", log.wall_s),
        ]);
        records.push(Json::obj(vec![
            ("omega0", Json::Num(omega0)),
            ("noise", Json::Num(noise)),
            ("omega_recovered", Json::Num(omega)),
            ("omega_true", Json::Num(task.true_omega())),
        ]));
    }

    println!("\n{}", table.render());
    println!("(ground truth: ω = 1.0)");
    save(
        "t7_inverse",
        &Json::obj(vec![
            ("id", Json::Str("T7".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
