//! **Kernel microbenchmarks.** Plain-`Instant` timings for the hot tensor
//! kernels at the shapes the trainers actually hit: the three matmul
//! variants (forward, `Wᵀ·δ` weight gradient, `δ·Wᵀ` input gradient),
//! fused elementwise chains, and the ordered parallel `Tensor::sum`.
//!
//! Methodology: per kernel, a warm-up run (pool spin-up + page touch)
//! followed by `reps` timed runs; the reported figure is the **trimmed
//! mean** (min and max dropped) so a stray scheduler hiccup cannot skew a
//! short series. GFLOP/s counts 2·m·k·n for matmuls and one flop per
//! element per fused op for the rest.
//!
//! Run with `--full` for more repetitions, and under
//! `RAYON_NUM_THREADS=<n>` (or inside `ThreadPool::install`) to probe a
//! specific pool width — kernels produce bit-identical results at every
//! width, so only the timings move. The suite also runs once with the
//! SIMD dispatch forced to scalar (`QPINN_SIMD=scalar` equivalent) and
//! reports the per-kernel speedup the vector paths buy; the record
//! carries both series under `gflops_w1` / `gflops_w<dispatched>` keys.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_tensor::Tensor;
use std::time::Instant;

/// Warm up once, time `reps` runs, return the trimmed-mean seconds.
fn time_trimmed(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: pool spin-up, allocator, caches
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let trimmed = &samples[1..samples.len() - 1];
    trimmed.iter().sum::<f64>() / trimmed.len() as f64
}

fn filled(m: usize, n: usize, seed: f64) -> Tensor {
    Tensor::from_vec(
        [m, n],
        (0..m * n)
            .map(|i| ((i as f64) * 0.618 + seed).sin())
            .collect::<Vec<_>>(),
    )
}

struct Row {
    name: &'static str,
    secs: f64,
    gflops: f64,
}

/// Run the full kernel suite at whatever SIMD width is currently
/// dispatched and return one row per kernel.
fn run_suite(opts: &RunOpts) -> Vec<Row> {
    let reps = opts.pick(5, 20);
    let mut rows: Vec<Row> = Vec::new();

    // Trainer shapes: a [batch, hidden] activation against [hidden, hidden]
    // weights — batch = collocation count (2048 quick / 8192 full).
    let (m, k, n) = (opts.pick(2048, 8192), 32, 32);
    let a = filled(m, k, 0.0);
    let b = filled(k, n, 1.0);
    let delta = filled(m, n, 2.0); // upstream grad for matmul_tn: aᵀ·δ
    let bt = filled(n, k, 3.0); // for matmul_nt: a·bᵀ with b stored [n, k]
    let mm_flops = (2 * m * k * n) as f64;

    let secs = time_trimmed(reps, || {
        let _ = a.matmul(&b);
    });
    rows.push(Row {
        name: "matmul      (forward)",
        secs,
        gflops: mm_flops / secs / 1e9,
    });

    let secs = time_trimmed(reps, || {
        let _ = a.matmul_tn(&delta);
    });
    rows.push(Row {
        name: "matmul_tn   (weight grad)",
        secs,
        gflops: mm_flops / secs / 1e9,
    });

    let secs = time_trimmed(reps, || {
        let _ = a.matmul_nt(&bt);
    });
    rows.push(Row {
        name: "matmul_nt   (input grad)",
        secs,
        gflops: mm_flops / secs / 1e9,
    });

    // Fused elementwise at activation size: tanh → hadamard → axpy is the
    // backprop inner pattern for a dense+tanh layer.
    let len = opts.pick(1 << 16, 1 << 20);
    let x = filled(len, 1, 0.5);
    let y = filled(len, 1, 1.5);
    let secs = time_trimmed(reps, || {
        let t = x.tanh();
        let h = t.mul(&y);
        let mut acc = h;
        acc.axpy(0.5, &x);
    });
    rows.push(Row {
        name: "tanh+mul+axpy (fused ew)",
        secs,
        gflops: (3 * len) as f64 / secs / 1e9,
    });

    // The fused dense-layer kernel: bias-seeded matmul with the activation
    // applied in place, one pass instead of matmul → add_bias → tanh.
    let bias = qpinn_tensor::Tensor::from_vec([n], vec![4.0; n]);
    let secs = time_trimmed(reps, || {
        let _ = a.affine_act(&b, &bias, qpinn_tensor::FusedAct::Tanh);
    });
    rows.push(Row {
        name: "affine_act  (dense+tanh)",
        secs,
        gflops: mm_flops / secs / 1e9,
    });

    // Ordered parallel reduction at loss-vector size.
    let secs = time_trimmed(reps, || {
        let _ = x.sum();
    });
    rows.push(Row {
        name: "sum         (reduction)",
        secs,
        gflops: len as f64 / secs / 1e9,
    });
    rows
}

fn main() {
    let opts = RunOpts::from_args();
    banner("KERNELS", "tensor kernel microbenchmarks", &opts);
    let simd_w = qpinn_tensor::simd::width();
    println!(
        "pool width: {} thread(s), simd dispatch width: {simd_w}\n",
        rayon::current_num_threads()
    );

    // Suite at the dispatched SIMD width, then forced scalar for the
    // speedup column. Outputs are bit-identical either way; the dispatch
    // layer only moves the clock.
    let rows = run_suite(&opts);
    let scalar_rows = if simd_w > 1 {
        qpinn_tensor::simd::set_width(1);
        let r = run_suite(&opts);
        qpinn_tensor::simd::set_width(simd_w);
        Some(r)
    } else {
        None
    };

    let mut table = TextTable::new(&[
        "kernel",
        "ms (trimmed mean)",
        "GFLOP/s",
        "scalar GF/s",
        "simd speedup",
    ]);
    for (i, r) in rows.iter().enumerate() {
        let (scalar, speedup) = match &scalar_rows {
            Some(s) => (
                format!("{:.2}", s[i].gflops),
                format!("{:.2}×", r.gflops / s[i].gflops),
            ),
            None => ("-".into(), "-".into()),
        };
        table.row(&[
            r.name.to_string(),
            format!("{:.3}", r.secs * 1e3),
            format!("{:.2}", r.gflops),
            scalar,
            speedup,
        ]);
    }
    println!("{}", table.render());

    // Work-stealing balance over the whole run: a healthy pool shows tasks
    // spread evenly across workers with steals well below tasks.
    let stats = rayon::pool_stats();
    let mut pool_table = TextTable::new(&["worker", "tasks", "steals", "idle waits"]);
    for (i, w) in stats.workers.iter().enumerate() {
        pool_table.row(&[
            format!("{i}"),
            format!("{}", w.tasks),
            format!("{}", w.steals),
            format!("{}", w.idle_waits),
        ]);
    }
    pool_table.row(&[
        "launcher".into(),
        format!("{}", stats.launcher_tasks),
        format!("{}", stats.launcher_steals),
        "-".into(),
    ]);
    println!(
        "pool activity ({} parallel set(s) launched):\n{}",
        stats.sets_launched,
        pool_table.render()
    );

    let (m, k, n) = (opts.pick(2048, 8192), 32, 32);
    let len = opts.pick(1 << 16, 1 << 20);
    let mut record = Json::obj(vec![
        ("id", Json::Str("KERNELS".into())),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        ("simd_width", Json::Num(simd_w as f64)),
        ("matmul_shape", Json::nums(&[m as f64, k as f64, n as f64])),
        ("elementwise_len", Json::Num(len as f64)),
        (
            "ms",
            Json::nums(&rows.iter().map(|r| r.secs * 1e3).collect::<Vec<_>>()),
        ),
        (
            "gflops",
            Json::nums(&rows.iter().map(|r| r.gflops).collect::<Vec<_>>()),
        ),
    ]);
    // Per-width GFLOP/s under width-suffixed keys (`gflops_w1`,
    // `gflops_w4`, ...) so regression tooling can compare dispatch paths.
    if let Json::Obj(pairs) = &mut record {
        pairs.push((
            format!("gflops_w{simd_w}"),
            Json::nums(&rows.iter().map(|r| r.gflops).collect::<Vec<_>>()),
        ));
        if let Some(s) = &scalar_rows {
            pairs.push((
                "gflops_w1".to_string(),
                Json::nums(&s.iter().map(|r| r.gflops).collect::<Vec<_>>()),
            ));
        }
    }
    save("kernels", &record);
}
