//! **T1 — headline accuracy table.** Relative L2 error of the PINN against
//! the high-fidelity reference for each benchmark problem, mean ± std over
//! seeds, with parameter counts and wall time.

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::experiment::{aggregate, run_seeds_with};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{NlsTask, NlsTaskConfig, TdseTask, TdseTaskConfig};
use qpinn_core::trainer::CheckpointConfig;
use qpinn_nn::ParamSet;
use qpinn_problems::{NlsProblem, TdseProblem};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner(
        "T1",
        "PINN accuracy per problem (rel. L2 vs reference)",
        &opts,
    );

    let epochs = opts.pick_epochs(1000, 6000);
    let n_coll = opts.pick(512, 4096);
    let (w, d) = (opts.pick(24, 64), opts.pick(3, 4));
    let cfg_train = standard_train(epochs);
    // Seeds train in parallel, so each (problem, seed) run needs its own
    // snapshot directory — interleaving two runs in one store would make
    // "latest" meaningless.
    let cfg_for = |problem: &str, seed: u64| {
        let mut cfg = cfg_train.clone();
        cfg.checkpoint = opts.ckpt.as_ref().map(|root| {
            CheckpointConfig::new(root.join(format!("t1/{problem}/seed-{seed}")))
                .every((epochs / 4).max(1))
                .run_id(format!("t1-{problem}-s{seed}"))
        });
        cfg.run = opts.run_cfg(
            &format!("t1/{problem}"),
            seed,
            Json::obj(vec![
                ("problem", Json::Str(problem.to_string())),
                ("width", Json::Num(w as f64)),
                ("depth", Json::Num(d as f64)),
                ("n_collocation", Json::Num(n_coll as f64)),
            ]),
        );
        cfg
    };

    let mut table = TextTable::new(&[
        "problem",
        "rel-L2 (mean±std)",
        "best",
        "params",
        "epochs",
        "s/run",
    ]);
    let mut records = Vec::new();

    // TDSE problems
    for problem in [
        TdseProblem::free_packet(),
        TdseProblem::harmonic_packet(),
        TdseProblem::barrier_scattering(),
    ] {
        let name = problem.name.clone();
        let runs = run_seeds_with(
            &opts.seeds(),
            |seed| cfg_for(&name, seed),
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut cfg = TdseTaskConfig::standard(&problem, w, d);
                cfg.n_collocation = n_coll;
                cfg.reference = (256, opts.pick(400, 1500), 32);
                cfg.eval_grid = (opts.pick(64, 128), opts.pick(24, 64));
                let mut params = ParamSet::new();
                let task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
                (task, params)
            },
        );
        let agg = aggregate(&runs);
        table.row(&[
            name.clone(),
            qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
            format!("{:.3e}", agg.best_error),
            format!("{}", runs[0].n_params),
            format!("{epochs}"),
            format!("{:.1}", agg.mean_wall_s),
        ]);
        records.push(Json::obj(vec![
            ("problem", Json::Str(name)),
            ("mean_error", Json::Num(agg.mean_error)),
            ("std_error", Json::Num(agg.std_error)),
            ("best_error", Json::Num(agg.best_error)),
            ("n_params", Json::Num(runs[0].n_params as f64)),
            ("wall_s", Json::Num(agg.mean_wall_s)),
        ]));
    }

    // NLS benchmarks: the integrable single soliton (stable) and the
    // Raissi 2-soliton bound state (modulationally unstable — the known
    // hard case).
    for problem in [
        NlsProblem::bright_soliton(1.0),
        NlsProblem::raissi_benchmark(),
    ] {
        let name = problem.name.clone();
        let runs = run_seeds_with(
            &opts.seeds(),
            |seed| cfg_for(&name, seed),
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut cfg = NlsTaskConfig::standard(&problem, w, d);
                cfg.n_collocation = n_coll;
                cfg.reference = (256, opts.pick(600, 2000), 32);
                cfg.eval_grid = (opts.pick(64, 128), opts.pick(24, 64));
                let mut params = ParamSet::new();
                let task = NlsTask::new(problem.clone(), &cfg, &mut params, &mut rng);
                (task, params)
            },
        );
        let agg = aggregate(&runs);
        table.row(&[
            name.clone(),
            qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
            format!("{:.3e}", agg.best_error),
            format!("{}", runs[0].n_params),
            format!("{epochs}"),
            format!("{:.1}", agg.mean_wall_s),
        ]);
        records.push(Json::obj(vec![
            ("problem", Json::Str(name)),
            ("mean_error", Json::Num(agg.mean_error)),
            ("std_error", Json::Num(agg.std_error)),
            ("best_error", Json::Num(agg.best_error)),
            ("n_params", Json::Num(runs[0].n_params as f64)),
            ("wall_s", Json::Num(agg.mean_wall_s)),
        ]));
    }

    println!("\n{}", table.render());
    save(
        "t1_accuracy",
        &Json::obj(vec![
            ("id", Json::Str("T1".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
