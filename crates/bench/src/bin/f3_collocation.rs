//! **F3 — collocation sweep.** Accuracy and wall time versus the number of
//! collocation points on the free-packet TDSE (with a fixed epoch budget).

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::experiment::{aggregate, run_seeds};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_nn::ParamSet;
use qpinn_problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("F3", "error & wall time vs collocation count", &opts);

    let problem = TdseProblem::free_packet();
    let counts: Vec<usize> = if opts.full {
        vec![512, 1024, 2048, 4096, 8192, 16384]
    } else {
        vec![128, 256, 512, 1024]
    };
    let epochs = opts.pick_epochs(300, 3000);
    let cfg_train = standard_train(epochs);

    let mut table = TextTable::new(&["N collocation", "rel-L2 (mean±std)", "s/run"]);
    let mut ns = Vec::new();
    let mut errs = Vec::new();
    let mut times = Vec::new();
    for &n in &counts {
        let runs = run_seeds(&opts.seeds(), &cfg_train, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cfg = TdseTaskConfig::standard(&problem, opts.pick(24, 64), 3);
            cfg.n_collocation = n;
            cfg.reference = (256, opts.pick(400, 1500), 32);
            cfg.eval_grid = (64, 24);
            let mut params = ParamSet::new();
            let task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
            (task, params)
        });
        let agg = aggregate(&runs);
        table.row(&[
            format!("{n}"),
            qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
            format!("{:.1}", agg.mean_wall_s),
        ]);
        ns.push(n as f64);
        errs.push(agg.mean_error);
        times.push(agg.mean_wall_s);
    }

    println!("\n{}", table.render());
    save(
        "f3_collocation",
        &Json::obj(vec![
            ("id", Json::Str("F3".into())),
            ("n", Json::nums(&ns)),
            ("error", Json::nums(&errs)),
            ("wall_s", Json::nums(&times)),
        ]),
    );
}
