//! **F4 — norm drift with and without the conservation loss.** The
//! stability claim: the network's `∫|ψ|²dx` over time stays pinned to 1
//! when the norm-conservation term is on, and drifts (typically decays)
//! when it is off. The quantum analogue of the energy-conservation
//! regularizer for conservative-PDE PINNs.

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_nn::ParamSet;
use qpinn_problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

fn run(problem: &TdseProblem, conservation: bool, opts: &RunOpts) -> (Vec<f64>, Vec<f64>, f64) {
    let mut cfg = TdseTaskConfig::standard(problem, opts.pick(24, 64), 3);
    cfg.n_collocation = opts.pick(384, 4096);
    cfg.reference = (256, opts.pick(400, 1500), 32);
    cfg.eval_grid = (64, 24);
    if !conservation {
        cfg.weights.conservation = 0.0;
    }
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
    let log = Trainer::new(standard_train(opts.pick(800, 5000))).train(&mut task, &mut params);
    let times: Vec<f64> = (0..=10)
        .map(|k| problem.t_end * k as f64 / 10.0)
        .collect();
    let norms = task.norm_series(&params, &times);
    (times, norms, log.final_error)
}

fn main() {
    let opts = RunOpts::from_args();
    banner("F4", "norm drift with/without conservation loss", &opts);

    let problem = TdseProblem::harmonic_packet();
    let (times, with_norms, with_err) = run(&problem, true, &opts);
    let (_, without_norms, without_err) = run(&problem, false, &opts);

    let mut table = TextTable::new(&["t", "∫|ψ|² (with cons.)", "∫|ψ|² (without)"]);
    for i in 0..times.len() {
        table.row(&[
            format!("{:.2}", times[i]),
            format!("{:.4}", with_norms[i]),
            format!("{:.4}", without_norms[i]),
        ]);
    }
    println!("\n{}", table.render());
    let drift = |ns: &[f64]| {
        ns.iter()
            .map(|n| (n - 1.0).abs())
            .fold(0.0f64, f64::max)
    };
    println!(
        "max |drift|: with = {:.3e}, without = {:.3e}",
        drift(&with_norms),
        drift(&without_norms)
    );
    println!(
        "rel-L2: with = {with_err:.3e}, without = {without_err:.3e}"
    );

    save(
        "f4_norm_drift",
        &Json::obj(vec![
            ("id", Json::Str("F4".into())),
            ("times", Json::nums(&times)),
            ("with_conservation", Json::nums(&with_norms)),
            ("without_conservation", Json::nums(&without_norms)),
            ("error_with", Json::Num(with_err)),
            ("error_without", Json::Num(without_err)),
        ]),
    );
}
