//! **T5 — reference-solver self-validation.** Convergence orders of the
//! Crank–Nicolson and split-step propagators against the closed-form free
//! Gaussian packet, and the FD eigensolver against exact spectra. This
//! grounds every PINN error number in the other tables.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_dual::Complex64;
use qpinn_problems::{EigenProblem, GaussianPacket};
use qpinn_solvers::{bound_states, crank_nicolson_tdse, split_step_evolve, Grid1d, Nonlinearity};

fn packet_error_split_step(nx: usize, nt: usize) -> f64 {
    let p = GaussianPacket {
        x0: 0.0,
        sigma: 0.7,
        k0: 2.0,
    };
    let grid = Grid1d::periodic(-16.0, 16.0, nx);
    let psi0: Vec<Complex64> = grid.points().iter().map(|&x| p.eval(x)).collect();
    let t = 1.0;
    let f = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, t, nt, nt);
    field_error(&grid, f.slice(f.n_slices() - 1), &p, t)
}

fn coherent_error_split_step(nt: usize) -> f64 {
    // With V ≠ 0 the Strang splitting error is visible: O(dt²) against the
    // closed-form coherent state.
    let omega = 2.0;
    let p = GaussianPacket::coherent(omega, 1.5);
    let grid = Grid1d::periodic(-10.0, 10.0, 256);
    let psi0: Vec<Complex64> = grid.points().iter().map(|&x| p.eval(x)).collect();
    let t = 0.9;
    let f = split_step_evolve(
        &grid,
        &|x| 0.5 * omega * omega * x * x,
        Nonlinearity::None,
        &psi0,
        t,
        nt,
        nt,
    );
    let last = f.slice(f.n_slices() - 1);
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, v) in grid.points().iter().zip(last) {
        if x.abs() > 6.0 {
            continue;
        }
        let want = p.coherent_evolution(omega, *x, t);
        num += (*v - want).norm_sqr();
        den += want.norm_sqr();
    }
    (num / den).sqrt()
}

fn packet_error_cn(nx: usize, nt: usize) -> f64 {
    let p = GaussianPacket {
        x0: 0.0,
        sigma: 0.7,
        k0: 2.0,
    };
    let grid = Grid1d::dirichlet(-16.0, 16.0, nx + 1);
    let psi0: Vec<Complex64> = grid.points().iter().map(|&x| p.eval(x)).collect();
    let t = 1.0;
    let f = crank_nicolson_tdse(&grid, &|_| 0.0, &psi0, t, nt, nt);
    field_error(&grid, f.slice(f.n_slices() - 1), &p, t)
}

fn field_error(grid: &Grid1d, slice: &[Complex64], p: &GaussianPacket, t: f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, v) in grid.points().iter().zip(slice) {
        if x.abs() > 12.0 {
            continue; // periodic-image / boundary zone
        }
        let want = p.free_evolution(*x, t);
        num += (*v - want).norm_sqr();
        den += want.norm_sqr();
    }
    (num / den).sqrt()
}

fn main() {
    let opts = RunOpts::from_args();
    banner("T5", "reference-solver convergence validation", &opts);

    let mut table = TextTable::new(&["solver", "resolution", "rel-L2 vs analytic", "order est."]);
    let mut records = Vec::new();

    // Split-step: spectral in space; halve dt to expose O(dt²).
    let mut prev: Option<f64> = None;
    for &nt in &[125usize, 250, 500, 1000] {
        let e = packet_error_split_step(512, nt);
        let order = prev.map(|p| (p / e).log2()).unwrap_or(f64::NAN);
        table.row(&[
            "split-step".into(),
            format!("nx=512, nt={nt}"),
            format!("{e:.3e}"),
            if order.is_nan() {
                "—".into()
            } else {
                format!("{order:.2}")
            },
        ]);
        records.push(Json::obj(vec![
            ("solver", Json::Str("split-step".into())),
            ("nt", Json::Num(nt as f64)),
            ("error", Json::Num(e)),
        ]));
        prev = Some(e);
    }

    // Split-step with a potential: the Strang O(dt²) error is visible.
    prev = None;
    for &nt in &[25usize, 50, 100, 200] {
        let e = coherent_error_split_step(nt);
        let order = prev.map(|p| (p / e).log2()).unwrap_or(f64::NAN);
        table.row(&[
            "split-step (harmonic)".into(),
            format!("nx=256, nt={nt}"),
            format!("{e:.3e}"),
            if order.is_nan() {
                "—".into()
            } else {
                format!("{order:.2}")
            },
        ]);
        records.push(Json::obj(vec![
            ("solver", Json::Str("split-step-harmonic".into())),
            ("nt", Json::Num(nt as f64)),
            ("error", Json::Num(e)),
        ]));
        prev = Some(e);
    }

    // Crank–Nicolson: refine space and time together (both 2nd order).
    prev = None;
    for &(nx, nt) in &[(256usize, 250usize), (512, 500), (1024, 1000)] {
        let e = packet_error_cn(nx, nt);
        let order = prev.map(|p| (p / e).log2()).unwrap_or(f64::NAN);
        table.row(&[
            "crank-nicolson".into(),
            format!("nx={nx}, nt={nt}"),
            format!("{e:.3e}"),
            if order.is_nan() {
                "—".into()
            } else {
                format!("{order:.2}")
            },
        ]);
        records.push(Json::obj(vec![
            ("solver", Json::Str("crank-nicolson".into())),
            ("nx", Json::Num(nx as f64)),
            ("error", Json::Num(e)),
        ]));
        prev = Some(e);
    }

    // FD eigensolver: worst eigenvalue error over the first 4 states.
    for problem in [EigenProblem::infinite_well(), EigenProblem::harmonic(1.0)] {
        let exact = problem.exact_energies().unwrap();
        prev = None;
        for &nx in &[201usize, 401, 801] {
            let grid = problem.grid(nx);
            let v = problem.potential;
            let states = bound_states(&grid, &move |x| v.eval(x), 4);
            let e: f64 = states
                .iter()
                .zip(&exact)
                .map(|(s, want)| ((s.energy - want) / want).abs())
                .fold(0.0, f64::max);
            let order = prev.map(|p: f64| (p / e).log2()).unwrap_or(f64::NAN);
            table.row(&[
                format!("eigensolver[{}]", problem.name),
                format!("nx={nx}"),
                format!("{e:.3e}"),
                if order.is_nan() {
                    "—".into()
                } else {
                    format!("{order:.2}")
                },
            ]);
            records.push(Json::obj(vec![
                ("solver", Json::Str(format!("eigensolver-{}", problem.name))),
                ("nx", Json::Num(nx as f64)),
                ("error", Json::Num(e)),
            ]));
            prev = Some(e);
        }
    }

    println!("\n{}", table.render());
    println!("(expected: free split-step at machine precision — splitting exact for V=0;\n harmonic split-step order ≈ 2 in dt; CN ≈ 2; eigensolver ≈ 2 in dx)");
    save(
        "t5_solvers",
        &Json::obj(vec![
            ("id", Json::Str("T5".into())),
            ("rows", Json::Arr(records)),
        ]),
    );
}
