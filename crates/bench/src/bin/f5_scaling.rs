//! **F5 — systems scaling figure.** (a) Training-epoch wall time versus
//! rayon thread count (the data-parallel batched-linear-algebra scaling
//! claim; on a single-core host the series is honest about showing no
//! speedup), and (b) statevector-simulation throughput versus qubit count.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_core::trainer::PinnTask;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_problems::TdseProblem;
use qpinn_qcircuit::{Ansatz, InputScaling, QuantumLayer};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn epoch_time_with_threads(threads: usize, opts: &RunOpts) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(|| {
        let problem = TdseProblem::free_packet();
        let mut cfg = TdseTaskConfig::standard(&problem, opts.pick(32, 64), 3);
        cfg.n_collocation = opts.pick(2048, 8192);
        cfg.reference = (128, 100, 8); // cheap; not what we time
        cfg.eval_grid = (16, 4);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        // warm-up epoch + timed epochs (backward included)
        let reps = opts.pick(3, 10);
        let mut run_epoch = || {
            let mut g = qpinn_autodiff::Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let loss = task.build_loss(&mut ctx);
            let _ = ctx.g.backward(loss);
        };
        run_epoch();
        let start = Instant::now();
        for _ in 0..reps {
            run_epoch();
        }
        start.elapsed().as_secs_f64() / reps as f64
    })
}

fn statevector_throughput(nq: usize) -> f64 {
    let layer = QuantumLayer {
        n_qubits: nq,
        layers: 4,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let theta = layer.init_params(&mut rng);
    let batch = 256;
    let inputs: Vec<f64> = (0..batch * nq).map(|i| ((i as f64) * 0.37).sin()).collect();
    // warm-up
    let _ = layer.forward_batch(&inputs, batch, &theta);
    let start = Instant::now();
    let reps = 4;
    for _ in 0..reps {
        let _ = layer.forward_batch(&inputs, batch, &theta);
    }
    (batch * reps) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let opts = RunOpts::from_args();
    banner("F5", "parallel scaling & simulator throughput", &opts);
    println!("host parallelism: {} logical CPUs\n", num_cpus());

    // (a) epoch time vs threads
    let threads = [1usize, 2, 4, 8];
    let mut table = TextTable::new(&["threads", "s/epoch", "speedup"]);
    let mut t_series = Vec::new();
    let mut s_series = Vec::new();
    let base = epoch_time_with_threads(1, &opts);
    for &t in &threads {
        let s = if t == 1 {
            base
        } else {
            epoch_time_with_threads(t, &opts)
        };
        table.row(&[
            format!("{t}"),
            format!("{s:.3}"),
            format!("{:.2}×", base / s),
        ]);
        t_series.push(t as f64);
        s_series.push(s);
    }
    println!("{}", table.render());

    // (b) statevector throughput vs qubits
    let mut qtable = TextTable::new(&["qubits", "circuits/s (batch fwd)"]);
    let mut q_series = Vec::new();
    let mut r_series = Vec::new();
    for nq in [2usize, 4, 6, 8, 10] {
        let rate = statevector_throughput(nq);
        qtable.row(&[format!("{nq}"), format!("{rate:.0}")]);
        q_series.push(nq as f64);
        r_series.push(rate);
    }
    println!("{}", qtable.render());

    save(
        "f5_scaling",
        &Json::obj(vec![
            ("id", Json::Str("F5".into())),
            ("host_cpus", Json::Num(num_cpus() as f64)),
            ("threads", Json::nums(&t_series)),
            ("s_per_epoch", Json::nums(&s_series)),
            ("qubits", Json::nums(&q_series)),
            ("circuits_per_s", Json::nums(&r_series)),
        ]),
    );
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
