//! **F5 — systems scaling figure.** (a) Training-epoch wall time versus
//! pool thread count on the real work-stealing runtime (on a single-core
//! host the series is honest about showing no speedup), (b) kernel
//! GFLOP/s (matmul / fused elementwise / reduction) at each thread count
//! and at each forced SIMD dispatch width — recorded under
//! width-suffixed keys such as `matmul_gflops_w4` — and (c) statevector
//! simulation throughput versus qubit count.
//!
//! Besides the standard `target/experiments/f5_scaling.json` record, this
//! binary writes the machine-readable `BENCH_parallel.json` at the repo
//! root: thread series, seconds per epoch, per-kernel GFLOP/s series
//! (per thread count and per forced SIMD width), and the statevector
//! batch-forward throughput series. Speedup ratios are printed but not
//! recorded — they are derived from `s_per_epoch`, which the perf gate
//! already checks directly. Every
//! quantity here is timing only — results are bit-identical at all widths
//! (see `tests/parallel_determinism.rs`), so the scheduler can only move
//! the clock, never the numbers.

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{TdseTask, TdseTaskConfig};
use qpinn_core::trainer::PinnTask;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_problems::TdseProblem;
use qpinn_qcircuit::{Ansatz, InputScaling, QuantumLayer};
use qpinn_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool")
        .install(f)
}

fn epoch_time_with_threads(threads: usize, opts: &RunOpts) -> f64 {
    in_pool(threads, || {
        let problem = TdseProblem::free_packet();
        let mut cfg = TdseTaskConfig::standard(&problem, opts.pick(32, 64), 3);
        cfg.n_collocation = opts.pick(2048, 8192);
        cfg.reference = (128, 100, 8); // cheap; not what we time
        cfg.eval_grid = (16, 4);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        // warm-up epoch + timed epochs (backward included)
        let reps = opts.pick(3, 10);
        let mut run_epoch = || {
            let mut g = qpinn_autodiff::Graph::new();
            let mut ctx = GraphCtx::new(&mut g, &params);
            let loss = task.build_loss(&mut ctx);
            let _ = ctx.g.backward(loss);
        };
        run_epoch();
        let start = Instant::now();
        for _ in 0..reps {
            run_epoch();
        }
        start.elapsed().as_secs_f64() / reps as f64
    })
}

/// (matmul, elementwise, reduce) GFLOP/s at a given pool width.
fn kernel_gflops(threads: usize, opts: &RunOpts) -> (f64, f64, f64) {
    in_pool(threads, || {
        let reps = opts.pick(5, 20);
        let time = |f: &mut dyn FnMut()| {
            f(); // warm-up
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let (m, k, n) = (opts.pick(2048, 8192), 32, 32);
        let fill = |r: usize, c: usize, s: f64| {
            Tensor::from_vec(
                [r, c],
                (0..r * c).map(|i| ((i as f64) * 0.618 + s).sin()).collect::<Vec<_>>(),
            )
        };
        let a = fill(m, k, 0.0);
        let b = fill(k, n, 1.0);
        let mm = (2 * m * k * n) as f64 / time(&mut || {
            let _ = a.matmul(&b);
        }) / 1e9;
        let len = opts.pick(1 << 16, 1 << 20);
        let x = fill(len, 1, 0.5);
        let y = fill(len, 1, 1.5);
        let ew = (2 * len) as f64 / time(&mut || {
            let _ = x.tanh().mul(&y);
        }) / 1e9;
        let rd = len as f64 / time(&mut || {
            let _ = x.sum();
        }) / 1e9;
        (mm, ew, rd)
    })
}

fn statevector_throughput(threads: usize, nq: usize) -> f64 {
    in_pool(threads, || {
        let layer = QuantumLayer {
            n_qubits: nq,
            layers: 4,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let theta = layer.init_params(&mut rng);
        let batch = 256;
        let inputs: Vec<f64> = (0..batch * nq).map(|i| ((i as f64) * 0.37).sin()).collect();
        // warm-up
        let _ = layer.forward_batch(&inputs, batch, &theta);
        let start = Instant::now();
        let reps = 4;
        for _ in 0..reps {
            let _ = layer.forward_batch(&inputs, batch, &theta);
        }
        (batch * reps) as f64 / start.elapsed().as_secs_f64()
    })
}

fn main() {
    let opts = RunOpts::from_args();
    banner("F5", "parallel scaling & simulator throughput", &opts);
    let host = num_cpus();
    let simd_w = qpinn_tensor::simd::width();
    println!(
        "host parallelism: {host} logical CPUs, simd dispatch width: {simd_w} \
         (detected {})\n",
        qpinn_tensor::simd::detected_width()
    );

    // Thread series: 1, 2, 4, plus the host width when it differs.
    let mut threads = vec![1usize, 2, 4];
    if !threads.contains(&host) {
        threads.push(host);
    }
    threads.sort_unstable();

    // (a) epoch time vs threads
    let mut table = TextTable::new(&[
        "threads", "s/epoch", "speedup", "matmul GF/s", "elemwise GF/s", "reduce GF/s",
    ]);
    let mut t_series = Vec::new();
    let mut s_series = Vec::new();
    let (mut mm_series, mut ew_series, mut rd_series) = (Vec::new(), Vec::new(), Vec::new());
    let base = epoch_time_with_threads(1, &opts);
    for &t in &threads {
        let s = if t == 1 {
            base
        } else {
            epoch_time_with_threads(t, &opts)
        };
        let (mm, ew, rd) = kernel_gflops(t, &opts);
        table.row(&[
            format!("{t}"),
            format!("{s:.3}"),
            format!("{:.2}×", base / s),
            format!("{mm:.2}"),
            format!("{ew:.2}"),
            format!("{rd:.2}"),
        ]);
        t_series.push(t as f64);
        s_series.push(s);
        mm_series.push(mm);
        ew_series.push(ew);
        rd_series.push(rd);
    }
    println!("{}", table.render());

    // (b) per-kernel GFLOP/s vs forced SIMD dispatch width. The series
    // above ran at the auto-detected width; here each runtime path is
    // forced in turn (scalar / AVX2 / AVX-512 where the CPU has them) so
    // the record shows what the dispatch layer buys. Keys carry the width
    // (`matmul_gflops_w4`), and the dispatched width is recorded under
    // `simd_width`. Results are bit-identical at every width — only the
    // clock moves.
    let mut wtable = TextTable::new(&[
        "simd width", "matmul GF/s", "elemwise GF/s", "reduce GF/s",
    ]);
    let mut width_keys: Vec<(String, Json)> = Vec::new();
    for w in [1usize, 4, 8] {
        if qpinn_tensor::simd::set_width(w) != w {
            continue; // path not available on this CPU
        }
        let (mm, ew, rd) = kernel_gflops(host, &opts);
        let tag = if w == simd_w {
            format!("{w} (dispatched)")
        } else {
            format!("{w}")
        };
        wtable.row(&[tag, format!("{mm:.2}"), format!("{ew:.2}"), format!("{rd:.2}")]);
        width_keys.push((format!("matmul_gflops_w{w}"), Json::Num(mm)));
        width_keys.push((format!("elementwise_gflops_w{w}"), Json::Num(ew)));
        width_keys.push((format!("reduce_gflops_w{w}"), Json::Num(rd)));
    }
    qpinn_tensor::simd::set_width(simd_w);
    println!("{}", wtable.render());

    // (c) statevector throughput vs qubits (at host width)
    let mut qtable = TextTable::new(&["qubits", "circuits/s (batch fwd)"]);
    let mut q_series = Vec::new();
    let mut r_series = Vec::new();
    for nq in [2usize, 4, 6, 8, 10] {
        let rate = statevector_throughput(host, nq);
        qtable.row(&[format!("{nq}"), format!("{rate:.0}")]);
        q_series.push(nq as f64);
        r_series.push(rate);
    }
    println!("{}", qtable.render());

    let mut record = Json::obj(vec![
        ("id", Json::Str("F5".into())),
        ("host_cpus", Json::Num(host as f64)),
        ("simd_width", Json::Num(simd_w as f64)),
        ("threads", Json::nums(&t_series)),
        ("s_per_epoch", Json::nums(&s_series)),
        // `speedup` stays display-only: it is s_per_epoch[0]/s_per_epoch[i],
        // and both legs are already gated by the perf check. Recording the
        // ratio would double-count them and flag any change that speeds up
        // single-thread more than oversubscribed runs as a "regression".
        ("matmul_gflops", Json::nums(&mm_series)),
        ("elementwise_gflops", Json::nums(&ew_series)),
        ("reduce_gflops", Json::nums(&rd_series)),
        ("qubits", Json::nums(&q_series)),
        ("circuits_per_s", Json::nums(&r_series)),
    ]);
    if let Json::Obj(pairs) = &mut record {
        pairs.extend(width_keys);
        // Attribution for the committed record: which revision and
        // machine shape produced these numbers. `qpinn-obs check` skips
        // the provenance keys (no perf-direction suffix).
        pairs.push(("provenance".to_string(), qpinn_bench::provenance()));
    }
    save("f5_scaling", &record);

    // Machine-readable scaling record at the repo root, consumed by CI and
    // tracked alongside the code it measures.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    match std::fs::write(&out, record.to_string() + "\n") {
        Ok(()) => println!("[written {}]", out.display()),
        Err(e) => eprintln!("[could not write BENCH_parallel.json: {e}]"),
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
