//! **T4 — feature & loss ablation.** The convergence enhancements toggled
//! one at a time on the free-packet TDSE and the NLS benchmark: random
//! Fourier features, exact periodic embedding, causal time weighting, and
//! the norm-conservation loss.

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::experiment::{aggregate, run_seeds};
use qpinn_core::model::{CoordSpec, FieldNetConfig};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{NlsTask, NlsTaskConfig, TdseTask, TdseTaskConfig};
use qpinn_nn::ParamSet;
use qpinn_problems::{NlsProblem, TdseProblem};
use rand::{rngs::StdRng, SeedableRng};

#[derive(Clone, Copy, Debug)]
enum Variant {
    Standard,
    NoRff,
    NoPeriodic,
    NoCausal,
    NoConservation,
}

impl Variant {
    fn name(&self) -> &'static str {
        match self {
            Variant::Standard => "standard (all on)",
            Variant::NoRff => "− random Fourier features",
            Variant::NoPeriodic => "− periodic embedding",
            Variant::NoCausal => "− causal weighting",
            Variant::NoConservation => "− conservation loss",
        }
    }

    fn apply_net(&self, net: &mut FieldNetConfig) {
        match self {
            Variant::NoRff => net.rff = None,
            Variant::NoPeriodic => {
                // replace the periodic x-embedding with a raw coordinate
                net.coords[0] = CoordSpec::Raw;
            }
            _ => {}
        }
    }
}

const VARIANTS: [Variant; 5] = [
    Variant::Standard,
    Variant::NoRff,
    Variant::NoPeriodic,
    Variant::NoCausal,
    Variant::NoConservation,
];

fn main() {
    let opts = RunOpts::from_args();
    banner("T4", "feature & loss ablation", &opts);

    let epochs = opts.pick_epochs(600, 5000);
    let cfg_train = standard_train(epochs);
    let (w, d) = (opts.pick(24, 64), opts.pick(3, 4));

    let mut table = TextTable::new(&["problem", "variant", "rel-L2 (mean±std)"]);
    let mut records = Vec::new();

    let tdse = TdseProblem::free_packet();
    for variant in VARIANTS {
        let runs = run_seeds(&opts.seeds(), &cfg_train, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cfg = TdseTaskConfig::standard(&tdse, w, d);
            cfg.n_collocation = opts.pick(384, 4096);
            cfg.reference = (256, opts.pick(400, 1500), 32);
            cfg.eval_grid = (64, 24);
            variant.apply_net(&mut cfg.net);
            if matches!(variant, Variant::NoCausal) {
                cfg.causal = None;
            }
            if matches!(variant, Variant::NoConservation) {
                cfg.weights.conservation = 0.0;
            }
            let mut params = ParamSet::new();
            let task = TdseTask::new(tdse.clone(), &cfg, &mut params, &mut rng);
            (task, params)
        });
        let agg = aggregate(&runs);
        table.row(&[
            tdse.name.clone(),
            variant.name().into(),
            qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
        ]);
        records.push(Json::obj(vec![
            ("problem", Json::Str(tdse.name.clone())),
            ("variant", Json::Str(variant.name().into())),
            ("mean_error", Json::Num(agg.mean_error)),
            ("std_error", Json::Num(agg.std_error)),
        ]));
    }

    let nls = NlsProblem::raissi_benchmark();
    for variant in VARIANTS {
        let runs = run_seeds(&opts.seeds(), &cfg_train, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cfg = NlsTaskConfig::standard(&nls, w, d);
            cfg.n_collocation = opts.pick(384, 4096);
            cfg.reference = (256, opts.pick(600, 2000), 32);
            cfg.eval_grid = (64, 24);
            variant.apply_net(&mut cfg.net);
            if matches!(variant, Variant::NoCausal) {
                cfg.causal = None;
            }
            if matches!(variant, Variant::NoConservation) {
                cfg.weights.conservation = 0.0;
            }
            let mut params = ParamSet::new();
            let task = NlsTask::new(nls.clone(), &cfg, &mut params, &mut rng);
            (task, params)
        });
        let agg = aggregate(&runs);
        table.row(&[
            nls.name.clone(),
            variant.name().into(),
            qpinn_core::report::mean_std(agg.mean_error, agg.std_error),
        ]);
        records.push(Json::obj(vec![
            ("problem", Json::Str(nls.name.clone())),
            ("variant", Json::Str(variant.name().into())),
            ("mean_error", Json::Num(agg.mean_error)),
            ("std_error", Json::Num(agg.std_error)),
        ]));
    }

    println!("\n{}", table.render());
    save(
        "t4_ablation",
        &Json::obj(vec![
            ("id", Json::Str("T4".into())),
            ("full", Json::Bool(opts.full)),
            ("rows", Json::Arr(records)),
        ]),
    );
}
