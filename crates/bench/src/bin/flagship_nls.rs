//! Flagship NLS run: a longer single-seed training of the Raissi benchmark
//! for the headline number in EXPERIMENTS.md (not part of the standard
//! harness sweep).

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::Json;
use qpinn_core::task::{NlsTask, NlsTaskConfig};
use qpinn_core::trainer::{CheckpointConfig, Trainer};
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_persist::SnapshotStore;
use qpinn_problems::NlsProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("FLAGSHIP", "long NLS training run", &opts);
    let problem = NlsProblem::raissi_benchmark();
    let mut cfg = NlsTaskConfig::standard(&problem, 32, 3);
    cfg.n_collocation = 1024;
    cfg.reference = (256, 1000, 32);
    cfg.eval_grid = (64, 24);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
    let epochs = opts.pick_epochs(5000, 20000);
    let ckpt_dir = opts.ckpt.as_ref().map(|root| root.join("flagship_nls"));
    let trainer = Trainer::new(TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 3e-3,
            factor: 0.85,
            every: (epochs / 10).max(1),
        },
        log_every: (epochs / 20).max(1),
        eval_every: (epochs / 5).max(1),
        clip: Some(100.0),
        lbfgs_polish: Some(200),
        checkpoint: ckpt_dir.clone().map(|dir| {
            CheckpointConfig::new(dir)
                .every((epochs / 10).max(1))
                .run_id("flagship_nls")
        }),
        // Unattended flagship runs are long; bail out early if the loss
        // explodes instead of polishing a diverged run with L-BFGS.
        divergence: Some(qpinn_core::DivergenceGuard::default()),
        progress: None,
        run: None,
    });
    // With --ckpt, pick up an interrupted run from its newest intact
    // snapshot instead of starting over.
    let resumable = ckpt_dir
        .as_ref()
        .and_then(|dir| SnapshotStore::open(dir).ok())
        .is_some_and(|store| store.has_snapshots());
    let log = if resumable {
        let dir = ckpt_dir.expect("resumable implies a checkpoint dir");
        println!("[resuming from {}]", dir.display());
        match trainer.resume(&dir, &mut task, &mut params) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("[resume failed ({e}); restarting from scratch]");
                trainer.train(&mut task, &mut params)
            }
        }
    } else {
        trainer.train(&mut task, &mut params)
    };
    for (e, l) in log.epochs.iter().zip(&log.loss) {
        println!("epoch {e:>6}: loss {l:.4e}");
    }
    for (e, v) in log.eval_epochs.iter().zip(&log.error) {
        println!("epoch {e:>6}: rel-L2 {v:.4e}");
    }
    println!("FINAL rel-L2 {:.4e} in {:.1}s", log.final_error, log.wall_s);
    save(
        "flagship_nls",
        &Json::obj(vec![
            ("final_error", Json::Num(log.final_error)),
            ("wall_s", Json::Num(log.wall_s)),
            ("epochs", Json::Num(epochs as f64)),
        ]),
    );
}
