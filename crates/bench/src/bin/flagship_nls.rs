//! Flagship NLS run: a longer single-seed training of the Raissi benchmark
//! for the headline number in EXPERIMENTS.md (not part of the standard
//! harness sweep).

use qpinn_bench::{banner, save, RunOpts};
use qpinn_core::report::Json;
use qpinn_core::task::{NlsTask, NlsTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_core::TrainConfig;
use qpinn_nn::ParamSet;
use qpinn_optim::LrSchedule;
use qpinn_problems::NlsProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("FLAGSHIP", "long NLS training run", &opts);
    let problem = NlsProblem::raissi_benchmark();
    let mut cfg = NlsTaskConfig::standard(&problem, 32, 3);
    cfg.n_collocation = 1024;
    cfg.reference = (256, 1000, 32);
    cfg.eval_grid = (64, 24);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
    let epochs = opts.pick(5000, 20000);
    let log = Trainer::new(TrainConfig {
        epochs,
        schedule: LrSchedule::Step {
            lr0: 3e-3,
            factor: 0.85,
            every: (epochs / 10).max(1),
        },
        log_every: (epochs / 20).max(1),
        eval_every: (epochs / 5).max(1),
        clip: Some(100.0),
        lbfgs_polish: Some(200),
    })
    .train(&mut task, &mut params);
    for (e, l) in log.epochs.iter().zip(&log.loss) {
        println!("epoch {e:>6}: loss {l:.4e}");
    }
    for (e, v) in log.eval_epochs.iter().zip(&log.error) {
        println!("epoch {e:>6}: rel-L2 {v:.4e}");
    }
    println!("FINAL rel-L2 {:.4e} in {:.1}s", log.final_error, log.wall_s);
    save(
        "flagship_nls",
        &Json::obj(vec![
            ("final_error", Json::Num(log.final_error)),
            ("wall_s", Json::Num(log.wall_s)),
            ("epochs", Json::Num(epochs as f64)),
        ]),
    );
}
