//! **F6 — 2D extension demonstration.** Train the PINN on the 2D
//! time-dependent Schrödinger equation (free packet on a doubly periodic
//! square) and print a density slice against the 2D spectral reference —
//! the multi-dimensional unsteady extension.

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{Tdse2dTask, Tdse2dTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_nn::ParamSet;
use qpinn_problems::Tdse2dProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("F6", "2D TDSE extension (free packet)", &opts);

    let problem = Tdse2dProblem::free_packet_2d();
    let mut cfg = Tdse2dTaskConfig::standard(opts.pick(24, 64), 3);
    cfg.n_collocation = opts.pick(768, 6144);
    cfg.rff_features = opts.pick(24, 64);
    cfg.n_ic_side = opts.pick(12, 24);
    cfg.conservation_grid = (3, opts.pick(10, 20));
    cfg.reference = (64, opts.pick(150, 600), 8);
    cfg.eval_grid = (opts.pick(16, 32), opts.pick(5, 9));
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = Tdse2dTask::new(problem.clone(), &cfg, &mut params, &mut rng);
    println!("trainable parameters: {}", params.n_scalars());

    let log = Trainer::new(standard_train(opts.pick(600, 5000))).train(&mut task, &mut params);
    println!(
        "final rel-L2 vs 2D spectral reference: {:.3e} ({:.1}s)\n",
        log.final_error, log.wall_s
    );

    // density slice along y = 0 at final time
    let t = problem.t_end;
    let mut table = TextTable::new(&["x (y=0, t=end)", "|ψ|² PINN", "|ψ|² reference"]);
    let mut xs = Vec::new();
    let mut pinn = Vec::new();
    let mut refs = Vec::new();
    for i in 0..17 {
        let x = problem.x.0 + (problem.x.1 - problem.x.0) * i as f64 / 16.0;
        let pred = task.net().predict(&params, &[vec![x, 0.0, t]]);
        let pd = pred.get(&[0, 0]).powi(2) + pred.get(&[0, 1]).powi(2);
        let rd = task.reference().sample(x, 0.0, t).norm_sqr();
        table.row(&[format!("{x:+.2}"), format!("{pd:.4}"), format!("{rd:.4}")]);
        xs.push(x);
        pinn.push(pd);
        refs.push(rd);
    }
    println!("{}", table.render());

    save(
        "f6_tdse2d",
        &Json::obj(vec![
            ("id", Json::Str("F6".into())),
            ("final_error", Json::Num(log.final_error)),
            ("x", Json::nums(&xs)),
            ("pinn_density", Json::nums(&pinn)),
            ("reference_density", Json::nums(&refs)),
        ]),
    );
}
