//! **F2 — solution slices.** `|h(x, t)|` of the trained NLS PINN against
//! the spectral reference at three time slices (the classic PINN figure:
//! t = 0.59, 0.79, 0.98 on the Raissi benchmark).

use qpinn_bench::{banner, save, standard_train, RunOpts};
use qpinn_core::report::{Json, TextTable};
use qpinn_core::task::{NlsTask, NlsTaskConfig};
use qpinn_core::trainer::Trainer;
use qpinn_nn::ParamSet;
use qpinn_problems::NlsProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args();
    banner("F2", "field slices |h(x,t)| vs reference (NLS)", &opts);

    let problem = NlsProblem::raissi_benchmark();
    let mut cfg = NlsTaskConfig::standard(&problem, opts.pick(24, 64), opts.pick(3, 4));
    cfg.n_collocation = opts.pick(448, 4096);
    cfg.reference = (256, opts.pick(600, 2000), 64);
    cfg.eval_grid = (48, 16);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(100);
    let mut task = NlsTask::new(problem.clone(), &cfg, &mut params, &mut rng);
    let log = Trainer::new(standard_train(opts.pick(1200, 8000))).train(&mut task, &mut params);
    println!("trained: rel-L2 {:.3e} in {:.1}s\n", log.final_error, log.wall_s);

    let slice_times = [0.59, 0.79, 0.98];
    let xs: Vec<f64> = (0..25)
        .map(|i| problem.x0 + problem.length() * i as f64 / 24.0)
        .collect();
    let mut series = Vec::new();
    for &t in &slice_times {
        let mut table = TextTable::new(&[&format!("x (t={t})"), "|h| PINN", "|h| reference"]);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, t]).collect();
        let pred = task.net().predict(&params, &points);
        let mut pinn_vals = Vec::new();
        let mut ref_vals = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            let pm = (pred.get(&[i, 0]).powi(2) + pred.get(&[i, 1]).powi(2)).sqrt();
            let rm = task.reference().sample(x, t).abs();
            pinn_vals.push(pm);
            ref_vals.push(rm);
            table.row(&[format!("{x:+.2}"), format!("{pm:.4}"), format!("{rm:.4}")]);
        }
        println!("{}", table.render());
        series.push(Json::obj(vec![
            ("t", Json::Num(t)),
            ("x", Json::nums(&xs)),
            ("pinn", Json::nums(&pinn_vals)),
            ("reference", Json::nums(&ref_vals)),
        ]));
    }

    save(
        "f2_slices",
        &Json::obj(vec![
            ("id", Json::Str("F2".into())),
            ("final_error", Json::Num(log.final_error)),
            ("slices", Json::Arr(series)),
        ]),
    );
}
