//! Finite-difference gradient checking, exposed as a reusable utility so
//! downstream crates (nn, core) can verify whole models.

use crate::{Graph, Var};
use qpinn_tensor::Tensor;

/// Result of a gradient check: the worst relative error observed and where.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across all checked entries.
    pub max_rel_err: f64,
    /// `(input index, flat element index)` of the worst entry.
    pub worst: (usize, usize),
}

impl GradCheckReport {
    /// True when the worst relative error is below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compare the tape gradient of `build` (a scalar-valued function of the
/// inputs) against central finite differences.
///
/// `build` is called with a fresh graph and one differentiable [`Var`] per
/// input tensor and must return the scalar loss node.
pub fn check(
    build: impl Fn(&mut Graph, &[Var]) -> Var,
    inputs: &[Tensor],
    step: f64,
) -> GradCheckReport {
    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.input(t.clone())).collect();
    let loss = build(&mut g, &vars);
    let grads = g.backward(loss);

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.input(t.clone())).collect();
        let loss = build(&mut g, &vars);
        g.value(loss).item()
    };

    // Central differences of a loss of magnitude |f₀| carry cancellation
    // noise of order ε·|f₀|/step; gradients below that floor are not
    // measurable by finite differences and are skipped rather than
    // misreported.
    let f0 = eval(inputs).abs();
    let noise_floor = (64.0 * f64::EPSILON * f0 / step).max(1e-10);

    let mut max_rel_err = 0.0f64;
    let mut worst = (0usize, 0usize);
    for (k, t) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[k])
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(t.shape().clone()));
        for e in 0..t.len() {
            let mut plus = inputs.to_vec();
            plus[k].data_mut()[e] += step;
            let mut minus = inputs.to_vec();
            minus[k].data_mut()[e] -= step;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * step);
            let a = analytic.data()[e];
            if a.abs() < noise_floor && numeric.abs() < noise_floor {
                continue;
            }
            let denom = a.abs().max(numeric.abs()).max(1e-8);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel_err {
                max_rel_err = rel;
                worst = (k, e);
            }
        }
    }
    GradCheckReport { max_rel_err, worst }
}

/// Convenience: assert the gradient check passes, with a helpful message.
///
/// # Panics
/// Panics when the worst relative error exceeds `tol`.
pub fn assert_gradients(build: impl Fn(&mut Graph, &[Var]) -> Var, inputs: &[Tensor], tol: f64) {
    let report = check(build, inputs, 1e-5);
    assert!(
        report.passes(tol),
        "gradient check failed: max rel err {:.3e} at input {} element {} (tol {tol:.1e})",
        report.max_rel_err,
        report.worst.0,
        report.worst.1
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_passes() {
        assert_gradients(
            |g, vars| {
                let s = g.square(vars[0]);
                g.sum(s)
            },
            &[Tensor::from_slice(&[1.0, -2.0, 0.5])],
            1e-6,
        );
    }

    #[test]
    fn mlp_like_composite_passes() {
        // loss = mse(tanh(X·W + b)) with gradients wrt W and b.
        let x = Tensor::from_rows(&[&[0.1, 0.5], &[-0.3, 0.8], &[0.9, -0.2]]);
        let w = Tensor::from_rows(&[&[0.4, -0.6, 0.2], &[0.7, 0.1, -0.5]]);
        let b = Tensor::from_slice(&[0.05, -0.1, 0.2]);
        assert_gradients(
            move |g, vars| {
                let xc = g.constant(x.clone());
                let z = g.matmul(xc, vars[0]);
                let zb = g.add_bias(z, vars[1]);
                let t = g.tanh(zb);
                g.mse(t)
            },
            &[w, b],
            1e-5,
        );
    }

    #[test]
    fn detects_wrong_gradient() {
        // exp pretending to be identity in backward would fail; simulate by
        // comparing sum(x) against the gradient of sum(exp(x)) — i.e. the
        // check must *fail* for a mismatched build pair. We emulate the
        // mismatch with a custom op whose backward is deliberately wrong.
        struct Wrong;
        impl crate::CustomOp for Wrong {
            fn name(&self) -> &str {
                "wrong"
            }
            fn backward(
                &self,
                _i: &[&Tensor],
                _o: &Tensor,
                g: &Tensor,
            ) -> Vec<Option<Tensor>> {
                vec![Some(g.scale(0.5))] // should be 1.0 for identity
            }
        }
        let report = check(
            |g, vars| {
                let fwd = g.value(vars[0]).clone();
                let y = g.custom(Box::new(Wrong), &[vars[0]], fwd);
                g.sum(y)
            },
            &[Tensor::from_slice(&[1.0, 2.0])],
            1e-5,
        );
        assert!(!report.passes(1e-3), "wrong gradient must be detected");
    }

    #[test]
    fn division_and_sqrt_pass() {
        assert_gradients(
            |g, vars| {
                let one_plus = g.add_scalar(vars[0], 2.0);
                let r = g.sqrt(one_plus);
                let q = g.div(vars[0], r);
                g.mse(q)
            },
            &[Tensor::from_slice(&[0.3, 1.4, -0.9])],
            1e-5,
        );
    }
}
