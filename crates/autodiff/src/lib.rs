//! # qpinn-autodiff
//!
//! Define-by-run reverse-mode automatic differentiation over
//! [`qpinn_tensor::Tensor`].
//!
//! A [`Graph`] is a tape of eagerly evaluated operations. Building an
//! expression records the op and its operands; [`Graph::backward`] then
//! walks the tape once in reverse, producing exact gradients for every
//! recorded input that requires them.
//!
//! ```
//! use qpinn_autodiff::Graph;
//! use qpinn_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_slice(&[1.0, 2.0, 3.0]));
//! let y = g.mse(x); // mean(x²) = 14/3
//! assert!((g.value(y).item() - 14.0 / 3.0).abs() < 1e-12);
//! let grads = g.backward(y);
//! // d mean(x²)/dx = 2x/n
//! assert!((grads.get(x).unwrap().data()[1] - 4.0 / 3.0).abs() < 1e-12);
//! ```
//!
//! ## Second derivatives without nested tapes
//!
//! PINN residuals need ∂u/∂x and ∂²u/∂x² of the *network output with
//! respect to its inputs*, and then gradients of those with respect to the
//! parameters. Instead of differentiating the tape twice, the [`jet`]
//! module propagates truncated Taylor series (value, first, second
//! derivative per coordinate) through the network as ordinary tape ops, so
//! a single reverse pass differentiates the whole residual. This is the
//! standard "Taylor-mode forward composed with reverse" construction and
//! avoids the nested-autodiff clunkiness called out in the reproduction
//! notes.

#![deny(missing_docs)]

mod graph;
pub mod gradcheck;
pub mod jet;

pub use graph::{CustomOp, Grads, Graph, Var};

#[cfg(test)]
mod proptests;
