//! The tape: eagerly evaluated ops, reverse-mode gradient accumulation.

use qpinn_tensor::{pool, FusedAct, Tensor};

/// Handle to a node on a [`Graph`]. Cheap to copy; only meaningful for the
/// graph that created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// A user-defined primitive: the forward value is supplied by the caller,
/// the vector-Jacobian product by this trait. Used to splice external
/// differentiable systems (e.g. the quantum-circuit layer) into the tape.
pub trait CustomOp: Send + Sync {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;

    /// Given the input values, the forward output, and the incoming
    /// gradient, return one cotangent per input (`None` for inputs that do
    /// not need gradients).
    fn backward(
        &self,
        inputs: &[&Tensor],
        output: &Tensor,
        out_grad: &Tensor,
    ) -> Vec<Option<Tensor>>;
}

enum Op {
    Input,
    Constant,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Neg(usize),
    Scale(usize, f64),
    AddScalar(usize, #[allow(dead_code)] f64),
    Matmul(usize, usize),
    AddBias(usize, usize),
    Tanh(usize),
    OneMinusSquare(usize),
    Affine {
        x: usize,
        w: usize,
        b: usize,
    },
    AffineTanh {
        x: usize,
        w: usize,
        b: usize,
    },
    Sin(usize),
    Cos(usize),
    Exp(usize),
    Sqrt(usize),
    Square(usize),
    Recip(usize),
    Powi(usize, i32),
    Sum(usize),
    Mean(usize),
    Mse(usize),
    WeightedMse(usize, usize),
    Hstack(Vec<usize>),
    ColSlice(usize, usize),
    MeanGroups(usize, usize),
    Custom {
        op: Box<dyn CustomOp>,
        inputs: Vec<usize>,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    needs_grad: bool,
}

/// A define-by-run tape. Values are computed eagerly as ops are recorded;
/// [`Graph::backward`] produces gradients in one reverse sweep.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
pub struct Grads {
    g: Vec<Option<Tensor>>,
}

impl Grads {
    /// The gradient of the loss with respect to `v`, if it was required and
    /// reached by the reverse sweep.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.g.get(v.0).and_then(|o| o.as_ref())
    }

    /// Remove and return the gradient for `v` (avoids a clone when handing
    /// gradients to an optimizer).
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.g.get_mut(v.0).and_then(|o| o.take())
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            op,
            value,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn ng(&self, id: usize) -> bool {
        self.nodes[id].needs_grad
    }

    /// Record a differentiable leaf (a parameter or an input we want
    /// gradients for).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Input, t, true)
    }

    /// Record a non-differentiable leaf (data, fixed weights, collocation
    /// coordinates).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(Op::Constant, t, false)
    }

    /// Convenience: a scalar constant.
    pub fn constant_scalar(&mut self, v: f64) -> Var {
        self.constant(Tensor::scalar(v))
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    // ----- arithmetic -----

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        let ng = self.ng(a.0) || self.ng(b.0);
        self.push(Op::Add(a.0, b.0), v, ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        let ng = self.ng(a.0) || self.ng(b.0);
        self.push(Op::Sub(a.0, b.0), v, ng)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        let ng = self.ng(a.0) || self.ng(b.0);
        self.push(Op::Mul(a.0, b.0), v, ng)
    }

    /// Elementwise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).div(self.value(b));
        let ng = self.ng(a.0) || self.ng(b.0);
        self.push(Op::Div(a.0, b.0), v, ng)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).neg();
        let ng = self.ng(a.0);
        self.push(Op::Neg(a.0), v, ng)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).scale(c);
        let ng = self.ng(a.0);
        self.push(Op::Scale(a.0, c), v, ng)
    }

    /// Add a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).add_scalar(c);
        let ng = self.ng(a.0);
        self.push(Op::AddScalar(a.0, c), v, ng)
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.ng(a.0) || self.ng(b.0);
        self.push(Op::Matmul(a.0, b.0), v, ng)
    }

    /// Broadcast-add a `[n]` bias to each row of an `[m, n]` tensor.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(b));
        let ng = self.ng(x.0) || self.ng(b.0);
        self.push(Op::AddBias(x.0, b.0), v, ng)
    }

    // ----- nonlinearities -----

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).tanh();
        let ng = self.ng(a.0);
        self.push(Op::Tanh(a.0), v, ng)
    }

    /// `tanh a` and `1 − tanh²a` as two nodes sharing one fused forward
    /// sweep ([`Tensor::tanh_with_deriv`]). The derivative node is recorded
    /// as `OneMinusSquare` of the tanh node, so second-order (gradient of
    /// gradient) flows through the tape unchanged.
    pub fn tanh_with_deriv(&mut self, a: Var) -> (Var, Var) {
        let (t, d) = self.value(a).tanh_with_deriv();
        let ng = self.ng(a.0);
        let tv = self.push(Op::Tanh(a.0), t, ng);
        let dv = self.push(Op::OneMinusSquare(tv.0), d, ng);
        (tv, dv)
    }

    /// Fused affine layer `x · w + b` (bias broadcast over rows), one kernel
    /// and one output allocation instead of the `matmul` → `add_bias` pair.
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        let v = self
            .value(x)
            .affine_act(self.value(w), self.value(b), FusedAct::Identity);
        let ng = self.ng(x.0) || self.ng(w.0) || self.ng(b.0);
        self.push(
            Op::Affine {
                x: x.0,
                w: w.0,
                b: b.0,
            },
            v,
            ng,
        )
    }

    /// Fused dense layer `tanh(x · w + b)`: the pre-activation matrix is
    /// never materialized; backward reconstructs its gradient from the
    /// stored activation via the fused [`Tensor::grad_tanh`] kernel.
    pub fn affine_tanh(&mut self, x: Var, w: Var, b: Var) -> Var {
        let v = self
            .value(x)
            .affine_act(self.value(w), self.value(b), FusedAct::Tanh);
        let ng = self.ng(x.0) || self.ng(w.0) || self.ng(b.0);
        self.push(
            Op::AffineTanh {
                x: x.0,
                w: w.0,
                b: b.0,
            },
            v,
            ng,
        )
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: Var) -> Var {
        let v = self.value(a).sin();
        let ng = self.ng(a.0);
        self.push(Op::Sin(a.0), v, ng)
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: Var) -> Var {
        let v = self.value(a).cos();
        let ng = self.ng(a.0);
        self.push(Op::Cos(a.0), v, ng)
    }

    /// Elementwise natural exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).exp();
        let ng = self.ng(a.0);
        self.push(Op::Exp(a.0), v, ng)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).sqrt();
        let ng = self.ng(a.0);
        self.push(Op::Sqrt(a.0), v, ng)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).square();
        let ng = self.ng(a.0);
        self.push(Op::Square(a.0), v, ng)
    }

    /// Elementwise reciprocal.
    pub fn recip(&mut self, a: Var) -> Var {
        let v = self.value(a).recip();
        let ng = self.ng(a.0);
        self.push(Op::Recip(a.0), v, ng)
    }

    /// Elementwise integer power.
    pub fn powi(&mut self, a: Var, n: i32) -> Var {
        let v = self.value(a).powi(n);
        let ng = self.ng(a.0);
        self.push(Op::Powi(a.0, n), v, ng)
    }

    // ----- reductions -----

    /// Sum of all elements, as a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.ng(a.0);
        self.push(Op::Sum(a.0), v, ng)
    }

    /// Mean of all elements, as a scalar node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mean());
        let ng = self.ng(a.0);
        self.push(Op::Mean(a.0), v, ng)
    }

    /// Mean of squares — the MSE reduction, fused for efficiency.
    pub fn mse(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).mse());
        let ng = self.ng(a.0);
        self.push(Op::Mse(a.0), v, ng)
    }

    /// Weighted mean of squares `mean(w ⊙ a²)` with per-element weights `w`
    /// (gradient flows to `a` only; `w` is treated as constant even if it
    /// requires gradients elsewhere).
    pub fn weighted_mse(&mut self, a: Var, w: Var) -> Var {
        let av = self.value(a);
        let wv = self.value(w);
        assert_eq!(av.shape(), wv.shape(), "weighted_mse shapes");
        let v = Tensor::scalar(av.square().mul(wv).mean());
        let ng = self.ng(a.0);
        self.push(Op::WeightedMse(a.0, w.0), v, ng)
    }

    /// Horizontally stack rank-2 nodes with equal row counts.
    pub fn hstack(&mut self, parts: &[Var]) -> Var {
        let vals: Vec<&Tensor> = parts.iter().map(|p| self.value(*p)).collect();
        let v = Tensor::hstack(&vals);
        let ng = parts.iter().any(|p| self.ng(p.0));
        self.push(Op::Hstack(parts.iter().map(|p| p.0).collect()), v, ng)
    }

    /// Extract column `col` of a rank-2 node as an `[m, 1]` node.
    ///
    /// # Panics
    /// Panics when `col` is out of range.
    pub fn col(&mut self, a: Var, col: usize) -> Var {
        let av = self.value(a);
        let (m, n) = (av.shape().nrows(), av.shape().ncols());
        assert!(col < n, "column {col} out of range for {}", av.shape());
        let data: Vec<f64> = (0..m).map(|i| av.data()[i * n + col]).collect();
        let v = Tensor::from_vec([m, 1], data);
        let ng = self.ng(a.0);
        self.push(Op::ColSlice(a.0, col), v, ng)
    }

    /// Average consecutive groups of `group_size` rows of an `[K·gs, 1]`
    /// column, producing `[K, 1]` — used for per-time-slice integrals on
    /// structured collocation grids.
    ///
    /// # Panics
    /// Panics when the row count is not a multiple of `group_size`.
    pub fn mean_groups(&mut self, a: Var, group_size: usize) -> Var {
        let av = self.value(a);
        let m = av.shape().nrows();
        assert_eq!(av.shape().ncols(), 1, "mean_groups expects a column");
        assert!(group_size > 0 && m.is_multiple_of(group_size), "group size {group_size} vs {m} rows");
        let k = m / group_size;
        let data: Vec<f64> = (0..k)
            .map(|g| {
                av.data()[g * group_size..(g + 1) * group_size]
                    .iter()
                    .sum::<f64>()
                    / group_size as f64
            })
            .collect();
        let v = Tensor::from_vec([k, 1], data);
        let ng = self.ng(a.0);
        self.push(Op::MeanGroups(a.0, group_size), v, ng)
    }

    /// Record a custom primitive with a caller-computed forward value.
    pub fn custom(&mut self, op: Box<dyn CustomOp>, inputs: &[Var], value: Tensor) -> Var {
        let ng = inputs.iter().any(|p| self.ng(p.0));
        self.push(
            Op::Custom {
                op,
                inputs: inputs.iter().map(|p| p.0).collect(),
            },
            value,
            ng,
        )
    }

    // ----- composites -----

    /// `1 - a²`, the derivative of tanh given its output — a single fused
    /// node (one kernel sweep) instead of the old `square → neg →
    /// add_scalar` chain of three tape nodes and three temporaries.
    pub fn one_minus_square(&mut self, a: Var) -> Var {
        let v = self.value(a).one_minus_square();
        let ng = self.ng(a.0);
        self.push(Op::OneMinusSquare(a.0), v, ng)
    }

    /// Linear combination `Σ cᵢ·aᵢ` of equally shaped nodes.
    ///
    /// # Panics
    /// Panics when `terms` is empty.
    pub fn lincomb(&mut self, terms: &[(f64, Var)]) -> Var {
        assert!(!terms.is_empty(), "lincomb of nothing");
        let mut acc = self.scale(terms[0].1, terms[0].0);
        for &(c, v) in &terms[1..] {
            let s = self.scale(v, c);
            acc = self.add(acc, s);
        }
        acc
    }

    // ----- reverse sweep -----

    fn accumulate(slot: &mut Option<Tensor>, delta: Tensor) {
        match slot {
            Some(t) => {
                t.axpy(1.0, &delta);
                // The delta was folded in and is dead; hand its buffer back
                // to the kernel pool instead of the allocator.
                pool::recycle(delta);
            }
            None => *slot = Some(delta),
        }
    }

    /// Run the reverse sweep from `loss` (which must hold exactly one
    /// element) and return gradients for all reachable differentiable nodes.
    ///
    /// # Panics
    /// Panics when `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.value(loss).len(),
            1,
            "backward from non-scalar of shape {}",
            self.value(loss).shape()
        );
        let n = self.nodes.len();
        let mut g: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        g[loss.0] = Some(Tensor::from_vec(
            self.value(loss).shape().clone(),
            vec![1.0],
        ));

        for id in (0..=loss.0).rev() {
            if !self.nodes[id].needs_grad {
                g[id] = None;
                continue;
            }
            let Some(out_grad) = g[id].take() else {
                continue;
            };
            let node = &self.nodes[id];
            match &node.op {
                Op::Input | Op::Constant => {
                    g[id] = Some(out_grad);
                }
                Op::Add(a, b) => {
                    if self.ng(*a) {
                        Self::accumulate(&mut g[*a], out_grad.clone());
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], out_grad);
                    }
                }
                Op::Sub(a, b) => {
                    if self.ng(*a) {
                        Self::accumulate(&mut g[*a], out_grad.clone());
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], out_grad.neg());
                    }
                }
                Op::Mul(a, b) => {
                    if self.ng(*a) {
                        Self::accumulate(&mut g[*a], out_grad.mul(&self.nodes[*b].value));
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], out_grad.mul(&self.nodes[*a].value));
                    }
                }
                Op::Div(a, b) => {
                    let bv = &self.nodes[*b].value;
                    if self.ng(*a) {
                        Self::accumulate(&mut g[*a], out_grad.div(bv));
                    }
                    if self.ng(*b) {
                        // d(a/b)/db = -a/b² = -value/b
                        let d = out_grad.mul(&node.value).div(bv).neg();
                        Self::accumulate(&mut g[*b], d);
                    }
                }
                Op::Neg(a) => {
                    Self::accumulate(&mut g[*a], out_grad.neg());
                }
                Op::Scale(a, c) => {
                    Self::accumulate(&mut g[*a], out_grad.scale(*c));
                }
                Op::AddScalar(a, _) => {
                    Self::accumulate(&mut g[*a], out_grad);
                }
                Op::Matmul(a, b) => {
                    if self.ng(*a) {
                        Self::accumulate(&mut g[*a], out_grad.matmul_nt(&self.nodes[*b].value));
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], self.nodes[*a].value.matmul_tn(&out_grad));
                    }
                }
                Op::AddBias(x, b) => {
                    if self.ng(*x) {
                        Self::accumulate(&mut g[*x], out_grad.clone());
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], out_grad.sum_rows());
                    }
                }
                Op::Tanh(a) => {
                    // g · (1 − tanh²), one fused sweep over the stored
                    // output — no derivative temporary.
                    Self::accumulate(&mut g[*a], out_grad.grad_tanh(&node.value));
                    pool::recycle(out_grad);
                }
                Op::OneMinusSquare(a) => {
                    // d(1 − a²)/da = −2a.
                    let d = out_grad.mul(&self.nodes[*a].value).scale(-2.0);
                    Self::accumulate(&mut g[*a], d);
                    pool::recycle(out_grad);
                }
                Op::Affine { x, w, b } | Op::AffineTanh { x, w, b } => {
                    // For the tanh variant, first pull the gradient back
                    // through the activation using the stored output.
                    let dz = if matches!(node.op, Op::AffineTanh { .. }) {
                        let dz = out_grad.grad_tanh(&node.value);
                        pool::recycle(out_grad);
                        dz
                    } else {
                        out_grad
                    };
                    if self.ng(*x) {
                        Self::accumulate(&mut g[*x], dz.matmul_nt(&self.nodes[*w].value));
                    }
                    if self.ng(*w) {
                        Self::accumulate(&mut g[*w], self.nodes[*x].value.matmul_tn(&dz));
                    }
                    if self.ng(*b) {
                        Self::accumulate(&mut g[*b], dz.sum_rows());
                    }
                    pool::recycle(dz);
                }
                Op::Sin(a) => {
                    let d = self.nodes[*a].value.cos();
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Cos(a) => {
                    let d = self.nodes[*a].value.sin().neg();
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Exp(a) => {
                    Self::accumulate(&mut g[*a], out_grad.mul(&node.value));
                }
                Op::Sqrt(a) => {
                    // d√x = 1/(2√x), using the stored output.
                    let d = node.value.map(|s| 0.5 / s);
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Square(a) => {
                    let d = self.nodes[*a].value.scale(2.0);
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Recip(a) => {
                    // d(1/x) = -1/x² = -value².
                    let d = node.value.square().neg();
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Powi(a, k) => {
                    let kk = *k;
                    let d = self.nodes[*a].value.map(move |x| kk as f64 * x.powi(kk - 1));
                    Self::accumulate(&mut g[*a], out_grad.mul(&d));
                }
                Op::Sum(a) => {
                    let s = out_grad.item();
                    Self::accumulate(
                        &mut g[*a],
                        Tensor::full(self.nodes[*a].value.shape().clone(), s),
                    );
                }
                Op::Mean(a) => {
                    let len = self.nodes[*a].value.len().max(1);
                    let s = out_grad.item() / len as f64;
                    Self::accumulate(
                        &mut g[*a],
                        Tensor::full(self.nodes[*a].value.shape().clone(), s),
                    );
                }
                Op::Mse(a) => {
                    let len = self.nodes[*a].value.len().max(1);
                    let c = 2.0 * out_grad.item() / len as f64;
                    Self::accumulate(&mut g[*a], self.nodes[*a].value.scale(c));
                }
                Op::WeightedMse(a, w) => {
                    let len = self.nodes[*a].value.len().max(1);
                    let c = 2.0 * out_grad.item() / len as f64;
                    let d = self.nodes[*a].value.mul(&self.nodes[*w].value).scale(c);
                    Self::accumulate(&mut g[*a], d);
                }
                Op::Hstack(parts) => {
                    let m = node.value.shape().nrows();
                    let mut col0 = 0usize;
                    let total = node.value.shape().ncols();
                    for &p in parts {
                        let nc = self.nodes[p].value.shape().ncols();
                        if self.ng(p) {
                            let mut part = vec![0.0; m * nc];
                            let gd = out_grad.data();
                            for i in 0..m {
                                part[i * nc..(i + 1) * nc].copy_from_slice(
                                    &gd[i * total + col0..i * total + col0 + nc],
                                );
                            }
                            Self::accumulate(&mut g[p], Tensor::from_vec([m, nc], part));
                        }
                        col0 += nc;
                    }
                }
                Op::ColSlice(a, col) => {
                    let src = &self.nodes[*a].value;
                    let (m, n) = (src.shape().nrows(), src.shape().ncols());
                    let mut full = vec![0.0; m * n];
                    for i in 0..m {
                        full[i * n + col] = out_grad.data()[i];
                    }
                    Self::accumulate(&mut g[*a], Tensor::from_vec([m, n], full));
                }
                Op::MeanGroups(a, gs) => {
                    let m = self.nodes[*a].value.shape().nrows();
                    let k = m / gs;
                    let mut full = vec![0.0; m];
                    for gi in 0..k {
                        let s = out_grad.data()[gi] / *gs as f64;
                        for v in full[gi * gs..(gi + 1) * gs].iter_mut() {
                            *v = s;
                        }
                    }
                    Self::accumulate(&mut g[*a], Tensor::from_vec([m, 1], full));
                }
                Op::Custom { op, inputs } => {
                    let in_vals: Vec<&Tensor> =
                        inputs.iter().map(|&i| &self.nodes[i].value).collect();
                    let cotangents = op.backward(&in_vals, &node.value, &out_grad);
                    assert_eq!(
                        cotangents.len(),
                        inputs.len(),
                        "custom op {} returned {} cotangents for {} inputs",
                        op.name(),
                        cotangents.len(),
                        inputs.len()
                    );
                    for (&i, ct) in inputs.iter().zip(cotangents) {
                        if let Some(ct) = ct {
                            if self.ng(i) {
                                Self::accumulate(&mut g[i], ct);
                            }
                        }
                    }
                }
            }
        }
        Grads { g }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain() {
        // f(x) = mean((tanh(2x + 1))²); check value and gradient vs manual.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[0.3, -0.7]));
        let two_x = g.scale(x, 2.0);
        let z = g.add_scalar(two_x, 1.0);
        let t = g.tanh(z);
        let loss = g.mse(t);
        let want: f64 = [0.3f64, -0.7]
            .iter()
            .map(|&xi| (2.0 * xi + 1.0).tanh().powi(2))
            .sum::<f64>()
            / 2.0;
        assert!((g.value(loss).item() - want).abs() < 1e-14);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        for (i, &xi) in [0.3f64, -0.7].iter().enumerate() {
            let t = (2.0 * xi + 1.0).tanh();
            let manual = 2.0 * t * (1.0 - t * t) * 2.0 / 2.0;
            assert!((gx.data()[i] - manual).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let mut g = Graph::new();
        let a = g.input(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        let grads = g.backward(loss);
        let ga = grads.get(a).unwrap();
        // row sums of B = [11, 15]
        assert_eq!(ga.row(0), &[11.0, 15.0]);
        assert_eq!(ga.row(1), &[11.0, 15.0]);
        let gb = grads.get(b).unwrap();
        // column sums of A = [4, 6] replicated per row of B
        assert_eq!(gb.row(0), &[4.0, 4.0]);
        assert_eq!(gb.row(1), &[6.0, 6.0]);
    }

    #[test]
    fn bias_gradient_is_row_sum() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let b = g.input(Tensor::from_slice(&[0.5, -0.5]));
        let y = g.add_bias(x, b);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(b).unwrap().data(), &[3.0, 3.0]);
        assert!(grads.get(x).is_none(), "constant must get no gradient");
    }

    #[test]
    fn fanout_accumulates() {
        // y = x·x (as mul of the same node) → dy/dx = 2x.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[3.0]));
        let y = g.mul(x, x);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        assert!((grads.get(x).unwrap().data()[0] - 6.0).abs() < 1e-14);
    }

    #[test]
    fn hstack_splits_gradient() {
        let mut g = Graph::new();
        let a = g.input(Tensor::column(&[1.0, 2.0]));
        let b = g.input(Tensor::column(&[3.0, 4.0]));
        let s = g.hstack(&[a, b]);
        let sq = g.square(s);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 4.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[6.0, 8.0]);
    }

    #[test]
    fn weighted_mse_value_and_gradient() {
        let mut g = Graph::new();
        let r = g.input(Tensor::from_slice(&[1.0, -2.0]));
        let w = g.constant(Tensor::from_slice(&[2.0, 0.5]));
        let loss = g.weighted_mse(r, w);
        // (2·1 + 0.5·4)/2 = 2.0
        assert!((g.value(loss).item() - 2.0).abs() < 1e-14);
        let grads = g.backward(loss);
        // d/dr_i = 2 w_i r_i / n
        assert_eq!(grads.get(r).unwrap().data(), &[2.0, -1.0]);
    }

    #[test]
    fn fused_affine_tanh_matches_unfused_gradients() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let xs = Tensor::randn([5, 3], 1.0, &mut rng);
        let ws = Tensor::randn([3, 4], 1.0, &mut rng);
        let bs = Tensor::randn([4], 1.0, &mut rng);

        // Unfused reference: matmul → add_bias → tanh.
        let mut g1 = Graph::new();
        let (x1, w1, b1) = (
            g1.input(xs.clone()),
            g1.input(ws.clone()),
            g1.input(bs.clone()),
        );
        let mm = g1.matmul(x1, w1);
        let z1 = g1.add_bias(mm, b1);
        let y1 = g1.tanh(z1);
        let l1 = g1.mse(y1);
        let r1 = g1.backward(l1);

        // Fused path.
        let mut g2 = Graph::new();
        let (x2, w2, b2) = (
            g2.input(xs.clone()),
            g2.input(ws.clone()),
            g2.input(bs.clone()),
        );
        let y2 = g2.affine_tanh(x2, w2, b2);
        let l2 = g2.mse(y2);
        assert!(g2.value(y2).approx_eq(g1.value(y1), 1e-12));
        let r2 = g2.backward(l2);
        for (u, f) in [(x1, x2), (w1, w2), (b1, b2)] {
            assert!(
                r2.get(f).unwrap().approx_eq(r1.get(u).unwrap(), 1e-12),
                "fused affine_tanh gradient diverged"
            );
        }

        // Identity affine as well.
        let mut g3 = Graph::new();
        let (x3, w3, b3) = (g3.input(xs), g3.input(ws), g3.input(bs));
        let y3 = g3.affine(x3, w3, b3);
        let l3 = g3.mse(y3);
        let r3 = g3.backward(l3);
        let mm3 = g1.matmul(x1, w1);
        let z3 = g1.add_bias(mm3, b1);
        let l1b = g1.mse(z3);
        let r1b = g1.backward(l1b);
        for (u, f) in [(x1, x3), (w1, w3), (b1, b3)] {
            assert!(
                r3.get(f).unwrap().approx_eq(r1b.get(u).unwrap(), 1e-12),
                "fused affine gradient diverged"
            );
        }
    }

    #[test]
    fn tanh_with_deriv_nodes_match_composites() {
        let xs = Tensor::from_slice(&[-1.2, -0.3, 0.0, 0.4, 2.5]);
        let mut g = Graph::new();
        let x = g.input(xs.clone());
        let (t, d) = g.tanh_with_deriv(x);
        let tr = g.tanh(x);
        let dr = g.one_minus_square(tr);
        assert!(g.value(t).approx_eq(g.value(tr), 0.0));
        assert!(g.value(d).approx_eq(g.value(dr), 0.0));
        // Gradients through the derivative node: loss = sum(1 − tanh²x),
        // dloss/dx = −2·tanh·(1 − tanh²).
        let loss = g.sum(d);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        for (gi, &xi) in gx.data().iter().zip(xs.data()) {
            let t = xi.tanh();
            let manual = -2.0 * t * (1.0 - t * t);
            assert!((gi - manual).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn backward_from_vector_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[1.0, 2.0]));
        let y = g.square(x);
        let _ = g.backward(y);
    }

    #[test]
    fn div_and_transcendental_gradients() {
        // f = sum(sin(x)/exp(x)); f' = (cos - sin)/exp.
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[0.4, 1.2]));
        let s = g.sin(x);
        let e = g.exp(x);
        let q = g.div(s, e);
        let loss = g.sum(q);
        let grads = g.backward(loss);
        for (i, &xi) in [0.4f64, 1.2].iter().enumerate() {
            let manual = (xi.cos() - xi.sin()) / xi.exp();
            assert!(
                (grads.get(x).unwrap().data()[i] - manual).abs() < 1e-12,
                "i={i}"
            );
        }
    }

    #[test]
    fn custom_op_roundtrip() {
        struct Double;
        impl CustomOp for Double {
            fn name(&self) -> &str {
                "double"
            }
            fn backward(
                &self,
                _inputs: &[&Tensor],
                _output: &Tensor,
                out_grad: &Tensor,
            ) -> Vec<Option<Tensor>> {
                vec![Some(out_grad.scale(2.0))]
            }
        }
        let mut g = Graph::new();
        let x = g.input(Tensor::from_slice(&[1.5, 2.5]));
        let fwd = g.value(x).scale(2.0);
        let y = g.custom(Box::new(Double), &[x], fwd);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn col_slice_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let c1 = g.col(x, 1);
        assert_eq!(g.value(c1).data(), &[2.0, 4.0]);
        assert_eq!(g.value(c1).shape().dims(), &[2, 1]);
        let sq = g.square(c1);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        assert_eq!(gx.row(0), &[0.0, 4.0]);
        assert_eq!(gx.row(1), &[0.0, 8.0]);
    }

    #[test]
    fn mean_groups_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.input(Tensor::column(&[1.0, 3.0, 10.0, 20.0]));
        let m = g.mean_groups(x, 2);
        assert_eq!(g.value(m).data(), &[2.0, 15.0]);
        let sq = g.square(m);
        let loss = g.sum(sq);
        let grads = g.backward(loss);
        // d/dx_i = 2·mean_g · (1/gs)
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 15.0, 15.0]);
    }

    #[test]
    fn lincomb_matches_manual() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_slice(&[1.0, 2.0]));
        let b = g.input(Tensor::from_slice(&[3.0, 4.0]));
        let l = g.lincomb(&[(2.0, a), (-1.0, b)]);
        assert_eq!(g.value(l).data(), &[-1.0, 0.0]);
        let loss = g.sum(l);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[-1.0, -1.0]);
    }
}
