//! Taylor-mode jets: propagate `(value, ∂/∂cᵢ, ∂²/∂cᵢ²)` per coordinate
//! through a computation as ordinary tape ops.
//!
//! A [`Jet`] bundles the batched value of a quantity together with its first
//! and (diagonal) second derivatives with respect to each of `k` input
//! coordinates. Every component is itself a differentiable [`Var`], so
//! after assembling a PDE residual from jet components, a single
//! [`Graph::backward`] pass yields exact parameter gradients of the
//! residual loss.
//!
//! Only diagonal second derivatives are tracked — exactly what
//! Laplacian-type operators (∂²/∂x², ∂²/∂y²) need. Mixed spatial
//! derivatives are not required by the Schrödinger systems implemented
//! here.

use crate::{Graph, Var};

/// A batched quantity with per-coordinate first and second derivatives.
///
/// All component tensors share the shape `[batch, width]`.
#[derive(Clone, Debug)]
pub struct Jet {
    /// The value.
    pub v: Var,
    /// First derivatives, one per tracked coordinate.
    pub d: Vec<Var>,
    /// Diagonal second derivatives, one per tracked coordinate.
    pub dd: Vec<Var>,
}

impl Jet {
    /// Number of tracked coordinates.
    pub fn n_coords(&self) -> usize {
        self.d.len()
    }

    /// Seed a jet for input coordinate `coord` out of `n_coords`: the value
    /// column itself, unit first derivative along its own coordinate, zero
    /// elsewhere, zero second derivatives.
    pub fn seed_coordinate(g: &mut Graph, column: Var, coord: usize, n_coords: usize) -> Jet {
        let shape = g.value(column).shape().clone();
        let ones = g.constant(qpinn_tensor::Tensor::ones(shape.clone()));
        let zeros = g.constant(qpinn_tensor::Tensor::zeros(shape));
        let d = (0..n_coords)
            .map(|i| if i == coord { ones } else { zeros })
            .collect();
        let dd = vec![zeros; n_coords];
        Jet {
            v: column,
            d,
            dd,
        }
    }

    /// A jet that is constant with respect to all tracked coordinates.
    pub fn constant(g: &mut Graph, value: Var, n_coords: usize) -> Jet {
        let shape = g.value(value).shape().clone();
        let zeros = g.constant(qpinn_tensor::Tensor::zeros(shape));
        Jet {
            v: value,
            d: vec![zeros; n_coords],
            dd: vec![zeros; n_coords],
        }
    }

    /// Apply a linear map slot-wise: `f` must be linear for the result to be
    /// a valid jet (used by dense layers: matmul and bias are linear).
    pub fn map_linear(&self, g: &mut Graph, mut f: impl FnMut(&mut Graph, Var) -> Var) -> Jet {
        Jet {
            v: f(g, self.v),
            d: self.d.iter().map(|&x| f(g, x)).collect(),
            dd: self.dd.iter().map(|&x| f(g, x)).collect(),
        }
    }

    /// Jet sum.
    pub fn add(&self, g: &mut Graph, other: &Jet) -> Jet {
        assert_eq!(self.n_coords(), other.n_coords());
        Jet {
            v: g.add(self.v, other.v),
            d: self
                .d
                .iter()
                .zip(&other.d)
                .map(|(&a, &b)| g.add(a, b))
                .collect(),
            dd: self
                .dd
                .iter()
                .zip(&other.dd)
                .map(|(&a, &b)| g.add(a, b))
                .collect(),
        }
    }

    /// Jet difference.
    pub fn sub(&self, g: &mut Graph, other: &Jet) -> Jet {
        assert_eq!(self.n_coords(), other.n_coords());
        Jet {
            v: g.sub(self.v, other.v),
            d: self
                .d
                .iter()
                .zip(&other.d)
                .map(|(&a, &b)| g.sub(a, b))
                .collect(),
            dd: self
                .dd
                .iter()
                .zip(&other.dd)
                .map(|(&a, &b)| g.sub(a, b))
                .collect(),
        }
    }

    /// Jet product (Leibniz to second order):
    /// `(fg)' = f'g + fg'`, `(fg)'' = f''g + 2f'g' + fg''`.
    pub fn mul(&self, g: &mut Graph, other: &Jet) -> Jet {
        assert_eq!(self.n_coords(), other.n_coords());
        let v = g.mul(self.v, other.v);
        let mut d = Vec::with_capacity(self.n_coords());
        let mut dd = Vec::with_capacity(self.n_coords());
        for i in 0..self.n_coords() {
            let fg_p = g.mul(self.d[i], other.v);
            let f_gp = g.mul(self.v, other.d[i]);
            d.push(g.add(fg_p, f_gp));
            let fpp_g = g.mul(self.dd[i], other.v);
            let fp_gp = g.mul(self.d[i], other.d[i]);
            let two_fp_gp = g.scale(fp_gp, 2.0);
            let f_gpp = g.mul(self.v, other.dd[i]);
            let s1 = g.add(fpp_g, two_fp_gp);
            dd.push(g.add(s1, f_gpp));
        }
        Jet { v, d, dd }
    }

    /// Scale by a constant.
    pub fn scale(&self, g: &mut Graph, c: f64) -> Jet {
        self.map_linear(g, |g, x| g.scale(x, c))
    }

    /// Apply a smooth elementwise nonlinearity given its first and second
    /// derivative (expressed as tape functions of the *pre-activation*):
    ///
    /// `u = σ(z)`, `u' = σ'(z)·z'`, `u'' = σ''(z)·(z')² + σ'(z)·z''`.
    pub fn apply_nonlinearity(
        &self,
        g: &mut Graph,
        sigma: impl Fn(&mut Graph, Var) -> Var,
        sigma_p: impl Fn(&mut Graph, Var) -> Var,
        sigma_pp: impl Fn(&mut Graph, Var) -> Var,
    ) -> Jet {
        let u = sigma(g, self.v);
        let sp = sigma_p(g, self.v);
        let spp = sigma_pp(g, self.v);
        let mut d = Vec::with_capacity(self.n_coords());
        let mut dd = Vec::with_capacity(self.n_coords());
        for i in 0..self.n_coords() {
            d.push(g.mul(sp, self.d[i]));
            let zp_sq = g.square(self.d[i]);
            let t1 = g.mul(spp, zp_sq);
            let t2 = g.mul(sp, self.dd[i]);
            dd.push(g.add(t1, t2));
        }
        Jet { v: u, d, dd }
    }

    /// Tanh nonlinearity with derivatives expressed through the output:
    /// `σ' = 1 − u²`, `σ'' = −2u(1 − u²)`.
    ///
    /// The value and `σ'` come from the fused
    /// [`Graph::tanh_with_deriv`] — one sweep instead of the four-node
    /// `tanh → square → neg → add_scalar` chain.
    pub fn tanh(&self, g: &mut Graph) -> Jet {
        let (u, sp) = g.tanh_with_deriv(self.v);
        let minus_two_u = g.scale(u, -2.0);
        let spp = g.mul(minus_two_u, sp);
        let mut d = Vec::with_capacity(self.n_coords());
        let mut dd = Vec::with_capacity(self.n_coords());
        for i in 0..self.n_coords() {
            d.push(g.mul(sp, self.d[i]));
            let zp_sq = g.square(self.d[i]);
            let t1 = g.mul(spp, zp_sq);
            let t2 = g.mul(sp, self.dd[i]);
            dd.push(g.add(t1, t2));
        }
        Jet { v: u, d, dd }
    }

    /// Sine nonlinearity: `σ' = cos`, `σ'' = −sin`.
    pub fn sin(&self, g: &mut Graph) -> Jet {
        self.apply_nonlinearity(
            g,
            |g, z| g.sin(z),
            |g, z| g.cos(z),
            |g, z| {
                let s = g.sin(z);
                g.neg(s)
            },
        )
    }

    /// Cosine nonlinearity: `σ' = −sin`, `σ'' = −cos`.
    pub fn cos(&self, g: &mut Graph) -> Jet {
        self.apply_nonlinearity(
            g,
            |g, z| g.cos(z),
            |g, z| {
                let s = g.sin(z);
                g.neg(s)
            },
            |g, z| {
                let c = g.cos(z);
                g.neg(c)
            },
        )
    }

    /// Square: `u = v²` via the product rule.
    pub fn square(&self, g: &mut Graph) -> Jet {
        self.mul(g, &self.clone())
    }

    /// Slice one column out of every slot: the jet of a single output
    /// field from a multi-field network head.
    pub fn col(&self, g: &mut Graph, col: usize) -> Jet {
        Jet {
            v: g.col(self.v, col),
            d: self.d.iter().map(|&s| g.col(s, col)).collect(),
            dd: self.dd.iter().map(|&s| g.col(s, col)).collect(),
        }
    }

    /// Horizontally stack jets slot-wise (all parts must track the same
    /// coordinates and have equal row counts).
    ///
    /// # Panics
    /// Panics when `parts` is empty or coordinate counts disagree.
    pub fn hstack(g: &mut Graph, parts: &[&Jet]) -> Jet {
        assert!(!parts.is_empty(), "hstack of no jets");
        let k = parts[0].n_coords();
        assert!(
            parts.iter().all(|p| p.n_coords() == k),
            "jet hstack coordinate mismatch"
        );
        let vs: Vec<Var> = parts.iter().map(|p| p.v).collect();
        let v = g.hstack(&vs);
        let mut d = Vec::with_capacity(k);
        let mut dd = Vec::with_capacity(k);
        for i in 0..k {
            let di: Vec<Var> = parts.iter().map(|p| p.d[i]).collect();
            d.push(g.hstack(&di));
            let ddi: Vec<Var> = parts.iter().map(|p| p.dd[i]).collect();
            dd.push(g.hstack(&ddi));
        }
        Jet { v, d, dd }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_tensor::Tensor;

    /// Check the jet of f(x) against finite differences on a scalar batch.
    fn check_jet(
        build: impl Fn(&mut Graph, &Jet) -> Jet,
        f: impl Fn(f64) -> f64,
        xs: &[f64],
        tol: f64,
    ) {
        let mut g = Graph::new();
        let col = g.constant(Tensor::column(xs));
        let jet = Jet::seed_coordinate(&mut g, col, 0, 1);
        let out = build(&mut g, &jet);
        let h = 1e-5;
        for (i, &x) in xs.iter().enumerate() {
            let v = g.value(out.v).data()[i];
            let d1 = g.value(out.d[0]).data()[i];
            let d2 = g.value(out.dd[0]).data()[i];
            assert!((v - f(x)).abs() < 1e-12, "value at {x}: {v} vs {}", f(x));
            let fd1 = (f(x + h) - f(x - h)) / (2.0 * h);
            let fd2 = (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
            assert!((d1 - fd1).abs() < tol, "d1 at {x}: {d1} vs {fd1}");
            assert!((d2 - fd2).abs() < tol * 100.0, "d2 at {x}: {d2} vs {fd2}");
        }
    }

    #[test]
    fn tanh_jet_matches_finite_differences() {
        check_jet(
            |g, j| j.tanh(g),
            |x| x.tanh(),
            &[-1.2, -0.3, 0.0, 0.7, 1.9],
            1e-7,
        );
    }

    #[test]
    fn sin_jet_matches_finite_differences() {
        check_jet(|g, j| j.sin(g), |x| x.sin(), &[-2.0, 0.4, 1.1], 1e-7);
    }

    #[test]
    fn product_rule_second_order() {
        // f(x) = x²·sin(x) assembled as jet product.
        check_jet(
            |g, j| {
                let sq = j.square(g);
                let s = j.sin(g);
                sq.mul(g, &s)
            },
            |x| x * x * x.sin(),
            &[-1.5, 0.2, 0.9],
            1e-5,
        );
    }

    #[test]
    fn composed_tanh_of_sin() {
        check_jet(
            |g, j| j.sin(g).tanh(g),
            |x| x.sin().tanh(),
            &[-0.8, 0.1, 1.3],
            1e-6,
        );
    }

    #[test]
    fn seed_has_unit_first_derivative() {
        let mut g = Graph::new();
        let col = g.constant(Tensor::column(&[0.5, 1.5]));
        let jet = Jet::seed_coordinate(&mut g, col, 1, 3);
        assert_eq!(g.value(jet.d[1]).data(), &[1.0, 1.0]);
        assert_eq!(g.value(jet.d[0]).data(), &[0.0, 0.0]);
        assert_eq!(g.value(jet.dd[1]).data(), &[0.0, 0.0]);
    }

    #[test]
    fn jets_are_differentiable_wrt_parameters() {
        // u(x) = w·x (a 1-param linear "network"); residual r = u_x − w = 0
        // identically. Check that d(mse(u_x))/dw = 2·w (since u_x = w).
        let mut g = Graph::new();
        let w = g.input(Tensor::from_vec([1, 1], vec![3.0]));
        let x = g.constant(Tensor::column(&[0.1, 0.2, 0.3]));
        let jet = Jet::seed_coordinate(&mut g, x, 0, 1);
        let out = jet.map_linear(&mut g, |g, s| g.matmul(s, w));
        let loss = g.mse(out.d[0]);
        assert!((g.value(loss).item() - 9.0).abs() < 1e-12);
        let grads = g.backward(loss);
        assert!((grads.get(w).unwrap().data()[0] - 6.0).abs() < 1e-12);
    }
}
