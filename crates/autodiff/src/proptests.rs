//! Property-based tests: tape gradients agree with finite differences for
//! randomly generated expressions and inputs.

use crate::gradcheck;
use crate::{Graph, Var};
use proptest::prelude::*;
use qpinn_tensor::Tensor;

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0..2.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_elementwise_chains_pass_gradcheck(data in vec_strategy(5), picks in proptest::collection::vec(0usize..6, 1..5)) {
        let t = Tensor::from_slice(&data);
        let picks2 = picks.clone();
        let report = gradcheck::check(
            move |g: &mut Graph, vars: &[Var]| {
                let mut x = vars[0];
                for &p in &picks2 {
                    x = match p {
                        0 => g.tanh(x),
                        1 => g.sin(x),
                        2 => g.cos(x),
                        3 => { let h = g.scale(x, 0.5); g.add_scalar(h, 0.1) }
                        4 => g.square(x),
                        _ => { let e = g.scale(x, 0.3); g.exp(e) }
                    };
                }
                g.mse(x)
            },
            &[t],
            1e-5,
        );
        prop_assert!(report.passes(5e-4), "max rel err {}", report.max_rel_err);
    }

    #[test]
    fn matmul_chain_passes_gradcheck(
        wdata in vec_strategy(6),
        bdata in vec_strategy(3),
        xdata in vec_strategy(8),
    ) {
        let w = Tensor::from_vec([2, 3], wdata);
        let b = Tensor::from_slice(&bdata);
        let x = Tensor::from_vec([4, 2], xdata);
        let report = gradcheck::check(
            move |g, vars| {
                let xc = g.constant(x.clone());
                let z = g.matmul(xc, vars[0]);
                let zb = g.add_bias(z, vars[1]);
                let t = g.tanh(zb);
                g.mse(t)
            },
            &[w, b],
            1e-5,
        );
        prop_assert!(report.passes(5e-4), "max rel err {}", report.max_rel_err);
    }

    #[test]
    fn sum_and_mean_linear_in_input(data in vec_strategy(6), c in -3.0..3.0f64) {
        // grad of sum(c·x) is c everywhere; grad of mean is c/n.
        let t = Tensor::from_slice(&data);
        let mut g = Graph::new();
        let x = g.input(t.clone());
        let s = g.scale(x, c);
        let loss = g.sum(s);
        let grads = g.backward(loss);
        for &v in grads.get(x).unwrap().data() {
            prop_assert!((v - c).abs() < 1e-12);
        }
        let mut g2 = Graph::new();
        let x2 = g2.input(t);
        let s2 = g2.scale(x2, c);
        let loss2 = g2.mean(s2);
        let grads2 = g2.backward(loss2);
        for &v in grads2.get(x2).unwrap().data() {
            prop_assert!((v - c / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_of_constant_branch_is_isolated(data in vec_strategy(4)) {
        // Adding a constant-derived term must not change the input gradient.
        let t = Tensor::from_slice(&data);
        let mut g = Graph::new();
        let x = g.input(t.clone());
        let k = g.constant(Tensor::from_slice(&[5.0, -1.0, 2.0, 0.5]));
        let ksq = g.square(k);
        let xsq = g.square(x);
        let both = g.add(xsq, ksq);
        let loss = g.sum(both);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        for (v, want) in gx.data().iter().zip(t.data()) {
            prop_assert!((v - 2.0 * want).abs() < 1e-12);
        }
        prop_assert!(grads.get(k).is_none());
    }

    #[test]
    fn backward_twice_is_consistent(data in vec_strategy(5)) {
        // backward is a pure function of the tape: running it twice on the
        // same graph must yield identical gradients.
        let t = Tensor::from_slice(&data);
        let mut g = Graph::new();
        let x = g.input(t);
        let u = g.tanh(x);
        let loss = g.mse(u);
        let g1 = g.backward(loss);
        let g2 = g.backward(loss);
        prop_assert!(g1.get(x).unwrap().approx_eq(g2.get(x).unwrap(), 0.0));
    }
}
