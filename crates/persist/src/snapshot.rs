//! The [`Snapshot`] — everything needed to continue a training run exactly
//! where it stopped — and its binary encoding into the container format of
//! [`crate::format`].

use crate::codec::{Reader, Writer};
use crate::crc::{crc32, Crc32};
use crate::format::{section, PersistError, Result, FORMAT_VERSION, MAGIC};
use qpinn_nn::ParamSet;
use qpinn_optim::AdamState;
use qpinn_tensor::{Shape, Tensor};

/// Identity and progress of the run a snapshot belongs to.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Free-form run identifier (experiment id, problem name, …).
    pub run_id: String,
    /// The first epoch the resumed run must execute (everything before it
    /// is already reflected in the parameters and optimizer state).
    pub next_epoch: u64,
    /// Total epochs the run was configured for, for progress reporting.
    pub planned_epochs: u64,
    /// Evaluation error at snapshot time — drives best-snapshot retention.
    pub eval_error: f64,
}

/// Plain-data mirror of the trainer's accumulated trajectory log.
///
/// Lives here (rather than reusing `qpinn-core`'s `TrainLog`) because the
/// core trainer depends on this crate; the two types convert losslessly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainLogRecord {
    /// Epoch indices of the loss records.
    pub epochs: Vec<u64>,
    /// Total loss at those epochs.
    pub loss: Vec<f64>,
    /// Global gradient norm at those epochs.
    pub grad_norm: Vec<f64>,
    /// Epoch indices of the error records.
    pub eval_epochs: Vec<u64>,
    /// Evaluation error at those epochs.
    pub error: Vec<f64>,
    /// Wall-clock seconds accumulated so far (across all segments).
    pub wall_s: f64,
    /// Loss at the last completed epoch.
    pub final_loss: f64,
    /// Evaluation error at the last completed epoch.
    pub final_error: f64,
}

/// A complete, self-contained training checkpoint.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Run identity and epoch counters.
    pub meta: RunMeta,
    /// All trainable parameters (names, shapes, data).
    pub params: ParamSet,
    /// Adam optimizer state (step count, hyperparameters, moments).
    pub optim: AdamState,
    /// Accumulated training log.
    pub log: TrainLogRecord,
    /// Opaque task-defined state (e.g. curriculum weights); empty when the
    /// task is stateless.
    pub task_state: Vec<u8>,
}

fn put_tensor(w: &mut Writer, t: &Tensor) {
    w.put_usize_slice(t.shape().dims());
    w.put_f64_slice(t.data());
}

fn get_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let dims = r.get_usize_vec()?;
    let data = r.get_f64_vec()?;
    let shape = Shape::new(&dims);
    if shape.len() != data.len() {
        return Err(PersistError::Malformed(format!(
            "tensor shape {dims:?} wants {} elements, payload has {}",
            shape.len(),
            data.len()
        )));
    }
    Ok(Tensor::from_vec(shape, data))
}

fn encode_meta(meta: &RunMeta) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&meta.run_id);
    w.put_u64(meta.next_epoch);
    w.put_u64(meta.planned_epochs);
    w.put_f64(meta.eval_error);
    w.into_bytes()
}

fn decode_meta(bytes: &[u8]) -> Result<RunMeta> {
    let mut r = Reader::new(bytes, "meta section");
    Ok(RunMeta {
        run_id: r.get_str()?,
        next_epoch: r.get_u64()?,
        planned_epochs: r.get_u64()?,
        eval_error: r.get_f64()?,
    })
}

fn encode_params(params: &ParamSet) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(params.len() as u32);
    for (_, name, t) in params.iter() {
        w.put_str(name);
        put_tensor(&mut w, t);
    }
    w.into_bytes()
}

fn decode_params(bytes: &[u8]) -> Result<ParamSet> {
    let mut r = Reader::new(bytes, "params section");
    let n = r.get_u32()?;
    let mut params = ParamSet::new();
    for _ in 0..n {
        let name = r.get_str()?;
        let t = get_tensor(&mut r)?;
        params.add(name, t);
    }
    Ok(params)
}

fn encode_optim(state: &AdamState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_f64(state.lr);
    w.put_f64(state.beta1);
    w.put_f64(state.beta2);
    w.put_f64(state.eps);
    w.put_f64(state.weight_decay);
    w.put_u64(state.t);
    w.put_u32(state.m.len() as u32);
    for t in state.m.iter().chain(state.v.iter()) {
        put_tensor(&mut w, t);
    }
    w.into_bytes()
}

fn decode_optim(bytes: &[u8]) -> Result<AdamState> {
    let mut r = Reader::new(bytes, "optim section");
    let lr = r.get_f64()?;
    let beta1 = r.get_f64()?;
    let beta2 = r.get_f64()?;
    let eps = r.get_f64()?;
    let weight_decay = r.get_f64()?;
    let t = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut m = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        m.push(get_tensor(&mut r)?);
    }
    for _ in 0..n {
        v.push(get_tensor(&mut r)?);
    }
    Ok(AdamState {
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        t,
        m,
        v,
    })
}

fn encode_log(log: &TrainLogRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64_slice(&log.epochs);
    w.put_f64_slice(&log.loss);
    w.put_f64_slice(&log.grad_norm);
    w.put_u64_slice(&log.eval_epochs);
    w.put_f64_slice(&log.error);
    w.put_f64(log.wall_s);
    w.put_f64(log.final_loss);
    w.put_f64(log.final_error);
    w.into_bytes()
}

fn decode_log(bytes: &[u8]) -> Result<TrainLogRecord> {
    let mut r = Reader::new(bytes, "log section");
    Ok(TrainLogRecord {
        epochs: r.get_u64_vec()?,
        loss: r.get_f64_vec()?,
        grad_norm: r.get_f64_vec()?,
        eval_epochs: r.get_u64_vec()?,
        error: r.get_f64_vec()?,
        wall_s: r.get_f64()?,
        final_loss: r.get_f64()?,
        final_error: r.get_f64()?,
    })
}

impl Snapshot {
    /// Serialize into the container format (see [`crate::format`]).
    pub fn encode(&self) -> Vec<u8> {
        let sections: Vec<(u32, Vec<u8>)> = vec![
            (section::META, encode_meta(&self.meta)),
            (section::PARAMS, encode_params(&self.params)),
            (section::OPTIM, encode_optim(&self.optim)),
            (section::LOG, encode_log(&self.log)),
            (section::TASK, self.task_state.clone()),
        ];
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(sections.len() as u32);
        for (tag, payload) in &sections {
            w.put_u32(*tag);
            w.put_u64(payload.len() as u64);
            w.put_bytes(payload);
            w.put_u32(crc32(payload));
        }
        let mut bytes = w.into_bytes();
        let mut file_crc = Crc32::new();
        file_crc.update(&bytes);
        bytes.extend_from_slice(&file_crc.finish().to_le_bytes());
        bytes
    }

    /// Deserialize and fully verify a container produced by
    /// [`Snapshot::encode`].
    ///
    /// Verification order: magic → version → whole-file CRC (covers header
    /// and framing) → per-section CRCs → section payload decoding. Any
    /// truncation or bit flip surfaces as an error; nothing panics on
    /// arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
        // Trailer: whole-file CRC over everything before it.
        if bytes.len() < MAGIC.len() + 4 + 4 + 4 {
            return Err(PersistError::Truncated { what: "container header" });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored_file_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        let computed_file_crc = crc32(body);
        if computed_file_crc != stored_file_crc {
            return Err(PersistError::ChecksumMismatch {
                what: "file",
                computed: computed_file_crc,
                stored: stored_file_crc,
            });
        }

        let mut r = Reader::new(body, "container");
        let magic = r.get_bytes(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.get_u32()?;
        if version > FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n_sections = r.get_u32()?;

        let mut meta = None;
        let mut params = None;
        let mut optim = None;
        let mut log = None;
        let mut task_state = Vec::new();
        for _ in 0..n_sections {
            let tag = r.get_u32()?;
            let len = r.get_len()?;
            let payload = r.get_bytes(len)?;
            let stored = r.get_u32()?;
            let computed = crc32(payload);
            if computed != stored {
                return Err(PersistError::ChecksumMismatch {
                    what: section_name(tag),
                    computed,
                    stored,
                });
            }
            match tag {
                section::META => meta = Some(decode_meta(payload)?),
                section::PARAMS => params = Some(decode_params(payload)?),
                section::OPTIM => optim = Some(decode_optim(payload)?),
                section::LOG => log = Some(decode_log(payload)?),
                section::TASK => task_state = payload.to_vec(),
                // Forward-compatibility: skip unknown sections written by a
                // same-major writer that added new data.
                _ => {}
            }
        }
        Ok(Snapshot {
            meta: meta.ok_or(PersistError::MissingSection(section::META))?,
            params: params.ok_or(PersistError::MissingSection(section::PARAMS))?,
            optim: optim.ok_or(PersistError::MissingSection(section::OPTIM))?,
            log: log.ok_or(PersistError::MissingSection(section::LOG))?,
            task_state,
        })
    }

    /// Decode only the [`RunMeta`] of a container, verifying the file CRC
    /// and the meta section CRC but skipping the (much larger) parameter
    /// and optimizer payloads. Used by retention to rank snapshots cheaply.
    pub fn decode_meta_only(bytes: &[u8]) -> Result<RunMeta> {
        if bytes.len() < MAGIC.len() + 4 + 4 + 4 {
            return Err(PersistError::Truncated { what: "container header" });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored_file_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        let computed_file_crc = crc32(body);
        if computed_file_crc != stored_file_crc {
            return Err(PersistError::ChecksumMismatch {
                what: "file",
                computed: computed_file_crc,
                stored: stored_file_crc,
            });
        }
        let mut r = Reader::new(body, "container");
        let magic = r.get_bytes(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.get_u32()?;
        if version > FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n_sections = r.get_u32()?;
        for _ in 0..n_sections {
            let tag = r.get_u32()?;
            let len = r.get_len()?;
            let payload = r.get_bytes(len)?;
            let stored = r.get_u32()?;
            if tag == section::META {
                let computed = crc32(payload);
                if computed != stored {
                    return Err(PersistError::ChecksumMismatch {
                        what: section_name(tag),
                        computed,
                        stored,
                    });
                }
                return decode_meta(payload);
            }
        }
        Err(PersistError::MissingSection(section::META))
    }
}

fn section_name(tag: u32) -> &'static str {
    match tag {
        section::META => "meta section",
        section::PARAMS => "params section",
        section::OPTIM => "optim section",
        section::LOG => "log section",
        section::TASK => "task section",
        _ => "unknown section",
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        let mut params = ParamSet::new();
        params.add("w1", Tensor::from_vec([2, 3], vec![1.0, -2.0, 3.5, 0.25, -0.125, 9.0]));
        params.add("b1", Tensor::from_slice(&[0.1, 0.2, 0.3]));
        let optim = AdamState {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            t: 1234,
            m: vec![
                Tensor::from_vec([2, 3], vec![0.01; 6]),
                Tensor::from_slice(&[0.5, -0.5, 0.0]),
            ],
            v: vec![
                Tensor::from_vec([2, 3], vec![0.002; 6]),
                Tensor::from_slice(&[1e-4, 2e-4, 3e-4]),
            ],
        };
        Snapshot {
            meta: RunMeta {
                run_id: "nls-flagship".into(),
                next_epoch: 1500,
                planned_epochs: 20_000,
                eval_error: 3.25e-3,
            },
            params,
            optim,
            log: TrainLogRecord {
                epochs: vec![0, 500, 1000],
                loss: vec![1.0, 0.1, 0.01],
                grad_norm: vec![10.0, 2.0, 0.3],
                eval_epochs: vec![1000],
                error: vec![4.5e-3],
                wall_s: 12.75,
                final_loss: 0.01,
                final_error: 4.5e-3,
            },
            task_state: vec![1, 2, 3, 255],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.meta, snap.meta);
        assert_eq!(back.log, snap.log);
        assert_eq!(back.task_state, snap.task_state);
        assert_eq!(back.params.len(), snap.params.len());
        for ((_, n1, t1), (_, n2, t2)) in back.params.iter().zip(snap.params.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            assert_eq!(t1.data(), t2.data(), "bit-exact parameter data");
        }
        assert_eq!(back.optim.t, snap.optim.t);
        assert_eq!(back.optim.lr, snap.optim.lr);
        for (a, b) in back.optim.m.iter().zip(&snap.optim.m) {
            assert_eq!(a.data(), b.data());
        }
        for (a, b) in back.optim.v.iter().zip(&snap.optim.v) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample_snapshot().encode();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            assert!(
                Snapshot::decode(&corrupted).is_err(),
                "flip at byte {i}/{} must be detected",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be detected"
            );
        }
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut bytes = sample_snapshot().encode();
        // Overwrite the version field (bytes 8..12) and re-seal both CRCs
        // to isolate the version check from the corruption checks.
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let n = bytes.len();
        let crc = crate::crc::crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match Snapshot::decode(&bytes) {
            Err(PersistError::UnsupportedVersion(v)) => assert_eq!(v, FORMAT_VERSION + 1),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn meta_only_decode_matches_full_decode() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let meta = Snapshot::decode_meta_only(&bytes).unwrap();
        assert_eq!(meta, snap.meta);
    }

    #[test]
    fn nan_and_signed_zero_survive() {
        let mut snap = sample_snapshot();
        snap.log.final_loss = f64::NAN;
        snap.log.wall_s = -0.0;
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert!(back.log.final_loss.is_nan());
        assert_eq!(back.log.wall_s.to_bits(), (-0.0f64).to_bits());
    }
}
