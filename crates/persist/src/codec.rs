//! Little-endian primitive encoding: the byte-level writer/reader both the
//! section payloads and the container framing are built from. No serde —
//! the format is hand-rolled so the on-disk layout is explicit and stable.

use crate::format::{PersistError, Result};

/// Append-only encoder over a growable byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Raw bytes, verbatim.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its IEEE-754 bit pattern — exact roundtrip, including NaN
    /// payloads and signed zeros.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string (`u32` length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }

    /// Length-prefixed `f64` vector (`u64` count).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Length-prefixed `usize` vector, stored as `u64`s (`u32` count —
    /// used for tensor shapes, which are tiny).
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u64(x as u64);
        }
    }

    /// Length-prefixed `u64` vector (`u64` count).
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }
}

/// Bounds-checked decoder over a byte slice. Every read that would run past
/// the end reports [`PersistError::Truncated`] instead of panicking — this
/// is what turns arbitrary corruption into a recoverable error.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string used in truncation errors.
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Decode from `buf`; `what` names the structure for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { what: self.what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Raw bytes, verbatim.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A `usize` stored as `u64`, rejecting values that overflow the
    /// platform (or that are absurd for an in-memory length).
    pub fn get_len(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Malformed(format!("length {v} overflows usize")))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("non-UTF-8 string".into()))
    }

    /// Length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.get_len()?;
        // Guard against corrupted lengths asking for absurd allocations:
        // each element needs 8 bytes that must actually be present.
        if self.remaining() < n.saturating_mul(8) {
            return Err(PersistError::Truncated { what: self.what });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }

    /// Length-prefixed `usize` vector (see [`Writer::put_usize_slice`]).
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>> {
        let n = self.get_u32()? as usize;
        if self.remaining() < n.saturating_mul(8) {
            return Err(PersistError::Truncated { what: self.what });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let x = self.get_u64()?;
            v.push(usize::try_from(x).map_err(|_| {
                PersistError::Malformed(format!("dimension {x} overflows usize"))
            })?);
        }
        Ok(v)
    }

    /// Length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.get_len()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(PersistError::Truncated { what: self.what });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("ψ-field");
        w.put_f64_slice(&[1.5, -2.5, 3.25]);
        w.put_usize_slice(&[4, 0, 9]);
        w.put_u64_slice(&[10, 20]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        let z = r.get_f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "ψ-field");
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.5, -2.5, 3.25]);
        assert_eq!(r.get_usize_vec().unwrap(), vec![4, 0, 9]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![10, 20]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut], "cut");
            assert!(r.get_f64_vec().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "absurd");
        assert!(r.get_f64_vec().is_err());
    }
}
