//! Retention policy: which snapshots survive after each save.

use std::collections::BTreeSet;

/// Which snapshots to keep when a store is pruned.
///
/// A snapshot survives if it is one of the newest `keep_last` by epoch, or
/// (when `keep_best` is set) it has the smallest recorded evaluation error
/// of any snapshot in the store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetentionPolicy {
    /// Number of most-recent snapshots (by epoch) always kept. `0` with
    /// `keep_best: false` would delete everything, so `survivors` treats
    /// `0` as `1` — a store never prunes itself empty.
    pub keep_last: usize,
    /// Additionally keep the snapshot with the smallest evaluation error.
    pub keep_best: bool,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            keep_last: 3,
            keep_best: true,
        }
    }
}

impl RetentionPolicy {
    /// A policy that never deletes anything.
    pub fn keep_all() -> Self {
        RetentionPolicy {
            keep_last: usize::MAX,
            keep_best: false,
        }
    }

    /// Indices (into `ranked`) of the snapshots that survive pruning.
    ///
    /// `ranked` must be sorted by ascending epoch. Each entry carries an
    /// arbitrary payload `T` (the store passes file paths) and the
    /// evaluation error recorded in its metadata — `None` when the metadata
    /// could not be read, which makes the entry ineligible for "best" but
    /// still counted for "last K".
    pub fn survivors<T>(&self, ranked: &[(u64, T, Option<f64>)]) -> BTreeSet<usize> {
        let mut keep = BTreeSet::new();
        let last = self.keep_last.max(1);
        let start = ranked.len().saturating_sub(last);
        for i in start..ranked.len() {
            keep.insert(i);
        }
        if self.keep_best {
            let best = ranked
                .iter()
                .enumerate()
                .filter_map(|(i, (_, _, err))| err.filter(|e| !e.is_nan()).map(|e| (i, e)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((i, _)) = best {
                keep.insert(i);
            }
        }
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(entries: &[(u64, f64)]) -> Vec<(u64, (), Option<f64>)> {
        entries.iter().map(|&(e, err)| (e, (), Some(err))).collect()
    }

    #[test]
    fn keeps_last_k() {
        let p = RetentionPolicy {
            keep_last: 2,
            keep_best: false,
        };
        let r = ranked(&[(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.6)]);
        let keep = p.survivors(&r);
        assert_eq!(keep.into_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn best_survives_outside_last_k() {
        let p = RetentionPolicy {
            keep_last: 1,
            keep_best: true,
        };
        let r = ranked(&[(1, 0.01), (2, 0.8), (3, 0.7)]);
        let keep = p.survivors(&r);
        assert_eq!(keep.into_iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn zero_keep_last_still_keeps_newest() {
        let p = RetentionPolicy {
            keep_last: 0,
            keep_best: false,
        };
        let r = ranked(&[(1, 0.9), (2, 0.8)]);
        let keep = p.survivors(&r);
        assert_eq!(keep.into_iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn nan_and_unreadable_errors_are_ineligible_for_best() {
        let p = RetentionPolicy {
            keep_last: 1,
            keep_best: true,
        };
        let r = vec![
            (1u64, (), Some(f64::NAN)),
            (2u64, (), None),
            (3u64, (), Some(0.5)),
            (4u64, (), Some(0.9)),
        ];
        let keep = p.survivors(&r);
        assert_eq!(keep.into_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn keep_all_keeps_everything() {
        let p = RetentionPolicy::keep_all();
        let r = ranked(&[(1, 0.9), (2, 0.8), (3, 0.7)]);
        assert_eq!(p.survivors(&r).len(), 3);
    }
}
