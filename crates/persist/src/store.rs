//! Directory-backed snapshot store: crash-safe writes, newest-intact
//! loading with corruption fallback, and retention enforcement.

use crate::format::{PersistError, Result};
use crate::retention::RetentionPolicy;
use crate::snapshot::{RunMeta, Snapshot};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File extension of finished snapshots.
pub const SNAPSHOT_EXT: &str = "qps";

/// One snapshot file as seen by [`SnapshotStore::entries`]: identity and
/// integrity without the cost of decoding parameter tensors.
#[derive(Clone, Debug)]
pub struct SnapshotEntry {
    /// Epoch (or model version) encoded in the file name.
    pub epoch: u64,
    /// Path of the snapshot file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Decoded run metadata when the container's file CRC and meta
    /// section verify; `None` for corrupt or truncated files.
    pub meta: Option<RunMeta>,
    /// Why metadata could not be read, when `meta` is `None`.
    pub error: Option<String>,
}

impl SnapshotEntry {
    /// True when the file-level CRC and meta section verified cleanly.
    pub fn intact(&self) -> bool {
        self.meta.is_some()
    }
}

/// A directory of snapshots for one training run.
///
/// # Crash safety
///
/// [`SnapshotStore::save`] writes the full container to a `*.tmp` sibling,
/// `fsync`s it, then atomically renames it over the final name and (best
/// effort) `fsync`s the directory. A crash at any point leaves either the
/// previous set of intact snapshots or the previous set plus one new intact
/// snapshot — never a half-written file under a final name. Stale `*.tmp`
/// files from a crashed writer are swept on [`SnapshotStore::open`].
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating if needed) the store at `dir` and sweep leftover
    /// temporary files from crashed writers.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = SnapshotStore { dir };
        for tmp in store.scan_ext("tmp") {
            let _ = fs::remove_file(tmp);
        }
        Ok(store)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File name a snapshot at `next_epoch` is stored under. Zero-padded so
    /// lexicographic order equals epoch order.
    pub fn file_name(next_epoch: u64) -> String {
        format!("snap-{next_epoch:010}.{SNAPSHOT_EXT}")
    }

    /// Epoch encoded in a snapshot file name, if it is one of ours.
    fn parse_epoch(path: &Path) -> Option<u64> {
        let stem = path.file_name()?.to_str()?;
        let rest = stem.strip_prefix("snap-")?;
        let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
        digits.parse().ok()
    }

    fn scan_ext(&self, ext: &str) -> Vec<PathBuf> {
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some(ext) {
                    out.push(path);
                }
            }
        }
        out
    }

    /// All finished snapshot files, sorted by ascending epoch.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let mut out: Vec<(u64, PathBuf)> = self
            .scan_ext(SNAPSHOT_EXT)
            .into_iter()
            .filter_map(|p| Self::parse_epoch(&p).map(|e| (e, p)))
            .collect();
        out.sort_by_key(|(e, _)| *e);
        out
    }

    /// All finished snapshot files with metadata and integrity status,
    /// sorted by ascending epoch. Each entry reads the file once and
    /// verifies the whole-file CRC plus the meta-section CRC (via
    /// [`Snapshot::decode_meta_only`]) but never decodes parameter or
    /// optimizer tensors, so enumerating a directory of large
    /// checkpoints stays cheap. Corrupt files come back with
    /// `meta: None` and the decode error instead of being skipped — the
    /// inspection view must show damage, not hide it.
    pub fn entries(&self) -> Vec<SnapshotEntry> {
        self.list()
            .into_iter()
            .map(|(epoch, path)| {
                let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let (meta, error) = match fs::read(&path) {
                    Ok(raw) => match Snapshot::decode_meta_only(&raw) {
                        Ok(m) => (Some(m), None),
                        Err(e) => (None, Some(e.to_string())),
                    },
                    Err(e) => (None, Some(e.to_string())),
                };
                SnapshotEntry {
                    epoch,
                    path,
                    bytes,
                    meta,
                    error,
                }
            })
            .collect()
    }

    /// Crash-safely persist `snap`, then enforce `policy`.
    ///
    /// Returns the path of the finished snapshot file.
    pub fn save(&self, snap: &Snapshot, policy: &RetentionPolicy) -> Result<PathBuf> {
        let _span = qpinn_telemetry::span("checkpoint_write");
        let bytes = snap.encode();
        let final_path = self.dir.join(Self::file_name(snap.meta.next_epoch));
        let tmp_path = final_path.with_extension("tmp");
        // Failpoint: the disk fills up before anything lands.
        qpinn_testkit::fail_io("fs.enospc")?;
        {
            let mut f = File::create(&tmp_path)?;
            // Failpoint: crash mid-write — half the payload reaches the tmp
            // file, which stays behind under its temporary name (exactly the
            // debris `open` must sweep and `load_latest` must never see).
            if qpinn_testkit::should_fail("persist.write_short") {
                f.write_all(&bytes[..bytes.len() / 2])?;
                let _ = f.sync_all();
                return Err(qpinn_testkit::injected_io_error("persist.write_short").into());
            }
            f.write_all(&bytes)?;
            // Data must be durable before the rename publishes the name.
            f.sync_all()?;
        }
        // Failpoint: torn publish — a truncated payload appears under the
        // *final* name, as if the rename landed but the data blocks did not.
        // `load_latest` must skip it via CRC fallback.
        if qpinn_testkit::should_fail("persist.rename_torn") {
            fs::write(&final_path, &bytes[..bytes.len() / 3])?;
            let _ = fs::remove_file(&tmp_path);
            return Err(qpinn_testkit::injected_io_error("persist.rename_torn").into());
        }
        fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable. Directory fsync is
        // platform-dependent; failure here cannot un-publish the file, so
        // it is best-effort.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Failpoint: silent storage rot — one byte of the published snapshot
        // flips *after* a fully successful save. The caller sees `Ok`; only
        // the CRC check at load time can catch this.
        if qpinn_testkit::should_fail("persist.bitflip") {
            if let Ok(mut rotted) = fs::read(&final_path) {
                let mid = rotted.len() / 2;
                rotted[mid] ^= 0x01;
                let _ = fs::write(&final_path, &rotted);
            }
        }
        self.apply_retention(policy)?;
        qpinn_telemetry::counter("persist.checkpoint.writes").inc();
        qpinn_telemetry::counter("persist.checkpoint.bytes").add(bytes.len() as u64);
        qpinn_telemetry::mark("checkpoint_saved", |e| {
            e.field("next_epoch", snap.meta.next_epoch)
                .field("bytes", bytes.len())
                .field("eval_error", snap.meta.eval_error)
                .field("path", final_path.display().to_string())
        });
        Ok(final_path)
    }

    /// Load the newest snapshot that decodes and verifies cleanly.
    ///
    /// Corrupt or truncated files (CRC mismatch, bad magic, short reads) are
    /// skipped — the store falls back to the next-newest intact snapshot.
    /// Returns the snapshot together with the path it came from, or an error
    /// naming the directory when no intact snapshot exists.
    pub fn load_latest(&self) -> Result<(Snapshot, PathBuf)> {
        let mut corrupt_skipped = 0usize;
        for (_, path) in self.list().into_iter().rev() {
            let err = match fs::read(&path) {
                Ok(bytes) => match Snapshot::decode(&bytes) {
                    Ok(snap) => {
                        if corrupt_skipped > 0 {
                            qpinn_telemetry::mark("checkpoint_fallback_used", |e| {
                                e.field("corrupt_skipped", corrupt_skipped)
                                    .field("path", path.display().to_string())
                            });
                        }
                        return Ok((snap, path));
                    }
                    Err(e) => e.to_string(),
                },
                Err(e) => e.to_string(),
            };
            corrupt_skipped += 1;
            qpinn_telemetry::warn(
                "checkpoint_corrupt_skipped",
                format!("{}: {err}", path.display()),
            );
        }
        Err(PersistError::NoIntactSnapshot {
            dir: self.dir.display().to_string(),
            corrupt_skipped,
        })
    }

    /// Load and fully verify the snapshot saved at exactly `epoch`.
    /// Unlike [`SnapshotStore::load_latest`] there is no fallback: the
    /// caller asked for a specific version, so a missing or corrupt file
    /// is an error. Used by the `qpinn-serve` model registry to resolve
    /// `id@version` references.
    pub fn load_epoch(&self, epoch: u64) -> Result<(Snapshot, PathBuf)> {
        let path = self.dir.join(Self::file_name(epoch));
        let bytes = fs::read(&path)?;
        let snap = Snapshot::decode(&bytes)?;
        Ok((snap, path))
    }

    /// True when the directory holds at least one finished snapshot file
    /// (intact or not).
    pub fn has_snapshots(&self) -> bool {
        !self.list().is_empty()
    }

    /// Delete snapshots not covered by `policy` (see
    /// [`RetentionPolicy::survivors`]).
    pub fn apply_retention(&self, policy: &RetentionPolicy) -> Result<Vec<PathBuf>> {
        let listed = self.list();
        // Rank candidates by (epoch, eval_error); unreadable metadata makes
        // a file ineligible for "best" but it still counts for "last K" so
        // a corrupt newest file cannot silently evict good history.
        let ranked: Vec<(u64, PathBuf, Option<f64>)> = listed
            .into_iter()
            .map(|(epoch, path)| {
                let err = fs::read(&path)
                    .ok()
                    .and_then(|b| Snapshot::decode_meta_only(&b).ok())
                    .map(|m| m.eval_error);
                (epoch, path, err)
            })
            .collect();
        let survivors = policy.survivors(&ranked);
        let mut removed = Vec::new();
        for (i, (_, path, _)) in ranked.iter().enumerate() {
            if !survivors.contains(&i) {
                fs::remove_file(path)?;
                removed.push(path.clone());
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::RetentionPolicy;
    use crate::snapshot::tests::sample_snapshot;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qpinn-persist-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snap_at(epoch: u64, eval_error: f64) -> Snapshot {
        let mut s = sample_snapshot();
        s.meta.next_epoch = epoch;
        s.meta.eval_error = eval_error;
        s
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        store.save(&snap_at(100, 0.5), &keep_all).unwrap();
        store.save(&snap_at(200, 0.25), &keep_all).unwrap();
        let (snap, path) = store.load_latest().unwrap();
        assert_eq!(snap.meta.next_epoch, 200);
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), "snap-0000000200.qps");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let dir = tmp_dir("atomic");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(&snap_at(1, 0.1), &RetentionPolicy::keep_all()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp file leaked: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("snap-0000000007.tmp");
        fs::write(&stale, b"half-written garbage from a crashed writer").unwrap();
        let _store = SnapshotStore::open(&dir).unwrap();
        assert!(!stale.exists(), "stale tmp must be swept on open");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_intact() {
        let dir = tmp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        store.save(&snap_at(100, 0.5), &keep_all).unwrap();
        let newest = store.save(&snap_at(200, 0.4), &keep_all).unwrap();
        // Flip one byte in the newest snapshot.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (snap, path) = store.load_latest().unwrap();
        assert_eq!(snap.meta.next_epoch, 100, "must fall back past the corrupt file");
        assert!(path.to_str().unwrap().contains("0000000100"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_newest_falls_back_to_previous_intact() {
        let dir = tmp_dir("truncated");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        store.save(&snap_at(100, 0.5), &keep_all).unwrap();
        let newest = store.save(&snap_at(200, 0.4), &keep_all).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
        let (snap, _) = store.load_latest().unwrap();
        assert_eq!(snap.meta.next_epoch, 100);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_reports_directory_and_count() {
        let dir = tmp_dir("allbad");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        for e in [10, 20] {
            let p = store.save(&snap_at(e, 0.5), &keep_all).unwrap();
            fs::write(&p, b"QPNSNAP\0 but then nonsense").unwrap();
        }
        match store.load_latest() {
            Err(PersistError::NoIntactSnapshot {
                dir: d,
                corrupt_skipped,
            }) => {
                assert_eq!(corrupt_skipped, 2);
                assert!(d.contains("allbad"));
            }
            other => panic!("expected NoIntactSnapshot, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_last_k_and_best() {
        let dir = tmp_dir("retention");
        let store = SnapshotStore::open(&dir).unwrap();
        let policy = RetentionPolicy {
            keep_last: 2,
            keep_best: true,
        };
        // Epoch 200 has the best (smallest) eval error; later snapshots are
        // worse, so retention must preserve 200 alongside the last two.
        for (e, err) in [(100, 0.9), (200, 0.01), (300, 0.5), (400, 0.3), (500, 0.2)] {
            store.save(&snap_at(e, err), &policy).unwrap();
        }
        let left: Vec<u64> = store.list().into_iter().map(|(e, _)| e).collect();
        assert_eq!(left, vec![200, 400, 500], "best + last two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_report_metadata_without_decoding_tensors() {
        let dir = tmp_dir("entries");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        store.save(&snap_at(100, 0.5), &keep_all).unwrap();
        let corrupt = store.save(&snap_at(200, 0.25), &keep_all).unwrap();
        let mut bytes = fs::read(&corrupt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&corrupt, &bytes).unwrap();

        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].epoch, 100);
        assert!(entries[0].intact());
        let meta = entries[0].meta.as_ref().unwrap();
        assert_eq!(meta.run_id, "nls-flagship");
        assert_eq!(meta.eval_error, 0.5);
        assert!(entries[0].bytes > 0);
        // The bit-flipped file must surface as damaged, not vanish.
        assert_eq!(entries[1].epoch, 200);
        assert!(!entries[1].intact());
        assert!(entries[1].error.as_ref().unwrap().contains("checksum"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_epoch_is_exact_with_no_fallback() {
        let dir = tmp_dir("byepoch");
        let store = SnapshotStore::open(&dir).unwrap();
        let keep_all = RetentionPolicy::keep_all();
        store.save(&snap_at(7, 0.5), &keep_all).unwrap();
        store.save(&snap_at(9, 0.4), &keep_all).unwrap();
        let (snap, _) = store.load_epoch(7).unwrap();
        assert_eq!(snap.meta.next_epoch, 7);
        assert!(store.load_epoch(8).is_err(), "missing version must error");
        // Corrupt version 9: no silent fallback to 7.
        let p9 = dir.join(SnapshotStore::file_name(9));
        let mut bytes = fs::read(&p9).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&p9, &bytes).unwrap();
        assert!(store.load_epoch(9).is_err(), "corrupt version must error");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_ignored_and_untouched() {
        let dir = tmp_dir("foreign");
        let store = SnapshotStore::open(&dir).unwrap();
        let notes = dir.join("notes.txt");
        fs::write(&notes, "do not delete").unwrap();
        store
            .save(&snap_at(1, 0.5), &RetentionPolicy { keep_last: 1, keep_best: false })
            .unwrap();
        store
            .save(&snap_at(2, 0.4), &RetentionPolicy { keep_last: 1, keep_best: false })
            .unwrap();
        assert!(notes.exists(), "retention must only touch snapshot files");
        assert_eq!(store.list().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
