//! The snapshot container format: magic, version, tagged sections, and the
//! error type every decode path reports through.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "QPNSNAP\0"
//! 8       4     format version (u32, currently 1)
//! 12      4     section count (u32)
//! --- per section ---
//!         4     section tag (u32)
//!         8     payload length in bytes (u64)
//!         n     payload
//!         4     CRC-32 of the payload
//! --- trailer ---
//!         4     CRC-32 of every preceding byte (magic through last section)
//! ```
//!
//! The per-section CRC localizes corruption to a section; the trailing
//! whole-file CRC additionally covers the header and the section framing
//! (tags and lengths), so a bit flip anywhere in the file is detected.
//!
//! # Versioning rules
//!
//! * The magic never changes.
//! * Adding a new section tag is a **minor** change: old readers must skip
//!   unknown tags (the framing makes that possible), so the version stays.
//! * Changing the payload layout of an existing section is a **major**
//!   change: bump [`FORMAT_VERSION`]; readers reject newer versions.

use std::fmt;
use std::io;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"QPNSNAP\0";

/// Current container version. See the module docs for when to bump.
pub const FORMAT_VERSION: u32 = 1;

/// Section tags. Values are part of the on-disk format; never reuse one.
pub mod section {
    /// Run metadata: id, epoch counters, evaluation error.
    pub const META: u32 = 1;
    /// Parameter tensors: names, shapes, f64 data.
    pub const PARAMS: u32 = 2;
    /// Adam optimizer state: step count, hyperparameters, moment buffers.
    pub const OPTIM: u32 = 3;
    /// Accumulated training log trajectories.
    pub const LOG: u32 = 4;
    /// Opaque task-defined state (curriculum weights, …).
    pub const TASK: u32 = 5;
}

/// Everything that can go wrong while writing or reading snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file declares a container version this reader does not support.
    UnsupportedVersion(u32),
    /// The file ended before a declared structure was complete.
    Truncated {
        /// What was being read when the data ran out.
        what: &'static str,
    },
    /// A CRC-32 check failed.
    ChecksumMismatch {
        /// Which checksum failed ("file" or the section name).
        what: &'static str,
        /// Checksum recomputed from the bytes read.
        computed: u32,
        /// Checksum stored in the file.
        stored: u32,
    },
    /// The container parsed but its contents are not usable.
    Malformed(String),
    /// A required section is missing from the container.
    MissingSection(u32),
    /// No intact snapshot exists where one was required.
    NoIntactSnapshot {
        /// Directory that was searched.
        dir: String,
        /// Number of corrupt snapshot files skipped during the search.
        corrupt_skipped: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a qpinn snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} is newer than supported ({FORMAT_VERSION})")
            }
            PersistError::Truncated { what } => write!(f, "snapshot truncated while reading {what}"),
            PersistError::ChecksumMismatch {
                what,
                computed,
                stored,
            } => write!(
                f,
                "checksum mismatch in {what}: computed {computed:#010x}, stored {stored:#010x}"
            ),
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            PersistError::MissingSection(tag) => write!(f, "snapshot missing section tag {tag}"),
            PersistError::NoIntactSnapshot {
                dir,
                corrupt_skipped,
            } => write!(
                f,
                "no intact snapshot in {dir} ({corrupt_skipped} corrupt file(s) skipped)"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Result alias for persistence operations.
pub type Result<T> = std::result::Result<T, PersistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let msgs = [
            PersistError::BadMagic.to_string(),
            PersistError::UnsupportedVersion(9).to_string(),
            PersistError::Truncated { what: "params" }.to_string(),
            PersistError::ChecksumMismatch {
                what: "file",
                computed: 1,
                stored: 2,
            }
            .to_string(),
            PersistError::MissingSection(section::OPTIM).to_string(),
        ];
        assert!(msgs[0].contains("magic"));
        assert!(msgs[1].contains("version 9"));
        assert!(msgs[2].contains("params"));
        assert!(msgs[3].contains("0x00000001"));
        assert!(msgs[4].contains('3'));
    }
}
