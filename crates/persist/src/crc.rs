//! CRC-32 (IEEE 802.3 / ISO-HDLC, reflected polynomial `0xEDB88320`) —
//! the checksum guarding every snapshot section against truncation and
//! bit flips. Table-driven, table built at compile time.

/// The 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC-32 accumulator.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let before = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), before, "flip at byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
