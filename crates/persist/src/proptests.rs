//! Property tests for the snapshot codec: **no corrupted container may
//! decode successfully, and none may panic.**
//!
//! Strategy: generate an arbitrary (but valid) snapshot, encode it, then
//! apply each corruption class — truncation at any offset, a single bit
//! flip at any position, garbage appended past the trailer — and require
//! `Snapshot::decode` to return `Err` every time. A fourth property feeds
//! the decoder pure byte soup. The vendored proptest harness draws every
//! case from a fixed deterministic seed, so failures reproduce exactly.

use crate::snapshot::{RunMeta, Snapshot, TrainLogRecord};
use proptest::collection::vec;
use proptest::prelude::*;
use qpinn_nn::ParamSet;
use qpinn_optim::AdamState;
use qpinn_tensor::Tensor;

fn snapshot_from(vals: &[f64], epoch: u64, task_state: Vec<u8>) -> Snapshot {
    let mut params = ParamSet::new();
    params.add("w", Tensor::from_slice(vals));
    Snapshot {
        meta: RunMeta {
            run_id: "prop".into(),
            next_epoch: epoch,
            planned_epochs: epoch + 10,
            eval_error: 0.125,
        },
        params,
        optim: AdamState {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: epoch,
            m: vec![Tensor::from_slice(vals)],
            v: vec![Tensor::from_slice(vals)],
        },
        log: TrainLogRecord {
            epochs: vec![0, epoch],
            loss: vec![1.0, 0.5],
            grad_norm: vec![2.0, 0.25],
            eval_epochs: vec![epoch],
            error: vec![0.125],
            wall_s: 1.5,
            final_loss: 0.5,
            final_error: 0.25,
        },
        task_state,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_at_any_offset_is_an_error(
        vals in vec(-1.0e3..1.0e3f64, 1..24),
        epoch in 1u64..1_000_000,
        state in vec(0u8..=255, 0..12),
        cut in 0.0..1.0f64,
    ) {
        let bytes = snapshot_from(&vals, epoch, state).encode();
        prop_assert!(Snapshot::decode(&bytes).is_ok(), "sanity: intact container decodes");
        // Any strictly shorter prefix, down to and including empty.
        let keep = (cut * bytes.len() as f64) as usize; // in [0, len-1]
        prop_assert!(
            Snapshot::decode(&bytes[..keep]).is_err(),
            "decode accepted a container truncated to {keep}/{} bytes",
            bytes.len()
        );
        prop_assert!(Snapshot::decode_meta_only(&bytes[..keep]).is_err());
    }

    #[test]
    fn any_single_bit_flip_is_an_error(
        vals in vec(-1.0e3..1.0e3f64, 1..24),
        epoch in 1u64..1_000_000,
        state in vec(0u8..=255, 0..12),
        pos in 0.0..1.0f64,
        bit in 0u32..8,
    ) {
        let mut bytes = snapshot_from(&vals, epoch, state).encode();
        let idx = (pos * bytes.len() as f64) as usize;
        bytes[idx] ^= 1u8 << bit;
        // CRC-32 detects every single-bit error; a flip inside the trailer
        // itself breaks the stored/computed comparison instead.
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "decode accepted a container with bit {bit} of byte {idx} flipped"
        );
    }

    #[test]
    fn appended_garbage_is_an_error(
        vals in vec(-1.0e3..1.0e3f64, 1..24),
        epoch in 1u64..1_000_000,
        garbage in vec(0u8..=255, 1..32),
    ) {
        let mut bytes = snapshot_from(&vals, epoch, Vec::new()).encode();
        bytes.extend_from_slice(&garbage);
        // The whole-file CRC trailer must sit at the very end; anything
        // after it shifts the trailer window and must fail verification.
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "decode accepted a container with {} garbage bytes appended",
            garbage.len()
        );
    }

    #[test]
    fn byte_soup_never_panics(soup in vec(0u8..=255, 0..256)) {
        // Plain random bytes: Err is acceptable, a panic is not. (With a
        // 32-bit whole-file CRC plus magic/version checks, an accidental
        // pass is out of reach for random input.)
        prop_assert!(Snapshot::decode(&soup).is_err());
        prop_assert!(Snapshot::decode_meta_only(&soup).is_err());
    }
}
