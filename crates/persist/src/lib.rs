//! `qpinn-persist` — checkpointing and crash-safe run artifacts for qpinn
//! training.
//!
//! This crate defines a versioned, checksummed binary snapshot format (no
//! serde — the byte layout is hand-rolled and documented in [`format`])
//! that persists everything needed to resume a training run bit-exactly:
//!
//! * the parameter set (names, shapes, raw f64 bit patterns),
//! * Adam optimizer state (step count, hyperparameters, moment buffers),
//! * the learning-rate schedule position and epoch counter,
//! * the accumulated training log, and
//! * an opaque task-defined state blob.
//!
//! [`SnapshotStore`] provides crash-safe directory management: writes go
//! through a `*.tmp` + fsync + atomic-rename protocol, loads verify CRC-32
//! checksums and fall back to the newest intact snapshot when the newest
//! file is truncated or bit-flipped, and a [`RetentionPolicy`] bounds disk
//! usage (keep the last K plus the best-by-eval-error).

#![deny(missing_docs)]

pub mod codec;
pub mod crc;
pub mod format;
#[cfg(test)]
mod proptests;
pub mod retention;
pub mod snapshot;
pub mod store;

pub use crc::crc32;
pub use format::{PersistError, Result, FORMAT_VERSION, MAGIC};
pub use retention::RetentionPolicy;
pub use snapshot::{RunMeta, Snapshot, TrainLogRecord};
pub use store::{SnapshotEntry, SnapshotStore};
