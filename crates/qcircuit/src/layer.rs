//! The batched quantum layer: angle embedding → ansatz → per-qubit Pauli-Z
//! readout, with exact dual-number derivatives packaged for the autodiff
//! tape (the `CustomOp` glue lives in `qpinn-core`).
//!
//! Every derivative below is exact — computed by instantiating the *same*
//! simulation code with [`Dual64`] or [`HyperDual64`] scalars. The input
//! scaling `θ_j = σ(a_j)` is folded into the seeds analytically via
//! [`InputScaling::dangle`]/[`InputScaling::ddangle`].

use crate::ansatz::Ansatz;
use crate::encoding::{angle_embed, InputScaling};
use crate::state::State;
use qpinn_dual::{Dual, Dual64, HyperDual64, Scalar};
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Configuration of a quantum layer with `n_qubits` inputs/outputs.
#[derive(Clone, Copy, Debug)]
pub struct QuantumLayer {
    /// Number of qubits (= input width = output width).
    pub n_qubits: usize,
    /// Ansatz repetitions.
    pub layers: usize,
    /// Variational template.
    pub ansatz: Ansatz,
    /// Input-angle scaling.
    pub scaling: InputScaling,
    /// Data re-uploading (Pérez-Salinas et al. 2020): re-apply the angle
    /// embedding before every ansatz layer instead of only once, which
    /// enriches the Fourier spectrum the circuit can express.
    pub reupload: bool,
}

impl QuantumLayer {
    /// Number of trainable circuit parameters.
    pub fn n_params(&self) -> usize {
        self.ansatz.n_params(self.n_qubits, self.layers)
    }

    /// Random initialization `U(0, 2π)` (the standard choice).
    pub fn init_params(&self, rng: &mut StdRng) -> Vec<f64> {
        (0..self.n_params())
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect()
    }

    /// Run the circuit for generic scalars: `angles` are the (already
    /// scaled) embedding angles, `theta` the circuit parameters.
    fn run<S: Scalar>(&self, angles: &[S], theta: &[S]) -> Vec<S> {
        debug_assert_eq!(angles.len(), self.n_qubits);
        let mut state: State<S> = angle_embed(angles);
        if self.reupload {
            // embedding → layer → embedding → layer → … with the repeated
            // RX embedding fused into each layer's leading rotations (one
            // gate sweep per qubit instead of two).
            let per = self.ansatz.params_per_layer(self.n_qubits);
            let embed: Vec<_> = angles.iter().map(|&a| crate::gates::rx(a)).collect();
            for layer in 0..self.layers {
                let slice = &theta[layer * per..(layer + 1) * per];
                if layer > 0 {
                    self.ansatz
                        .apply_layer_fused(&mut state, layer, slice, &embed);
                } else {
                    self.ansatz.apply_layer(&mut state, layer, slice);
                }
            }
        } else {
            self.ansatz.apply(&mut state, self.layers, theta);
        }
        state.all_expectations_z()
    }

    /// Expectation outputs for one sample of raw activations `a ∈ [−1,1]`.
    pub fn forward_sample(&self, a: &[f64], theta: &[f64]) -> Vec<f64> {
        let angles: Vec<f64> = a.iter().map(|&x| self.scaling.angle(x)).collect();
        self.run(&angles, theta)
    }

    /// Batched forward pass over `batch` rows stored flat
    /// (`inputs[r·n_qubits + j]`), parallelized over rows.
    pub fn forward_batch(&self, inputs: &[f64], batch: usize, theta: &[f64]) -> Vec<f64> {
        assert_eq!(inputs.len(), batch * self.n_qubits, "flat input length");
        let nq = self.n_qubits;
        let mut out = vec![0.0; batch * nq];
        out.par_chunks_mut(nq)
            .zip(inputs.par_chunks(nq))
            .for_each(|(o, row)| {
                o.copy_from_slice(&self.forward_sample(row, theta));
            });
        out
    }

    /// Outputs plus full Jacobians for one sample:
    /// returns `(e, de/da, de/dθ)` with `de/da[j][k] = ∂e_k/∂a_j` and
    /// `de/dθ[p][k] = ∂e_k/∂θ_p`. Cost: `n_qubits + n_params` dual runs.
    #[allow(clippy::type_complexity)]
    pub fn jacobians_sample(
        &self,
        a: &[f64],
        theta: &[f64],
    ) -> (Vec<f64>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let nq = self.n_qubits;
        let base_angles: Vec<f64> = a.iter().map(|&x| self.scaling.angle(x)).collect();

        // The input-Jacobian block and the parameter-Jacobian block are
        // independent dual-number sweeps; fork them across the pool.
        let ((e, ja), jt) = rayon::join(
            || {
                let theta_c: Vec<Dual64> = theta.iter().map(|&t| Dual::constant(t)).collect();
                let mut ja: Vec<Vec<f64>> = Vec::with_capacity(nq);
                let mut e = Vec::new();
                for j in 0..nq {
                    let angles: Vec<Dual64> = base_angles
                        .iter()
                        .enumerate()
                        .map(|(i, &ang)| {
                            if i == j {
                                // seed dθ/da through the scaling chain rule
                                Dual::new(ang, self.scaling.dangle(a[j]))
                            } else {
                                Dual::constant(ang)
                            }
                        })
                        .collect();
                    let out = self.run(&angles, &theta_c);
                    if j == 0 {
                        e = out.iter().map(|d| d.re).collect();
                    }
                    ja.push(out.iter().map(|d| d.eps).collect());
                }
                (e, ja)
            },
            || {
                let angles_c: Vec<Dual64> =
                    base_angles.iter().map(|&x| Dual::constant(x)).collect();
                let mut jt: Vec<Vec<f64>> = Vec::with_capacity(theta.len());
                for p in 0..theta.len() {
                    let th: Vec<Dual64> = theta
                        .iter()
                        .enumerate()
                        .map(|(q, &t)| if q == p { Dual64::var(t) } else { Dual::constant(t) })
                        .collect();
                    let out = self.run(&angles_c, &th);
                    jt.push(out.iter().map(|d| d.eps).collect());
                }
                jt
            },
        );
        (e, ja, jt)
    }

    /// Directional derivative (JVP) through the inputs for one sample:
    /// `(e, J_a·t)` where `t` is a tangent on the raw activations. One dual
    /// run.
    pub fn jvp_sample(&self, a: &[f64], tangent: &[f64], theta: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(tangent.len(), self.n_qubits);
        let angles: Vec<Dual64> = a
            .iter()
            .zip(tangent)
            .map(|(&x, &t)| Dual::new(self.scaling.angle(x), self.scaling.dangle(x) * t))
            .collect();
        let theta_c: Vec<Dual64> = theta.iter().map(|&t| Dual::constant(t)).collect();
        let out = self.run(&angles, &theta_c);
        (
            out.iter().map(|d| d.re).collect(),
            out.iter().map(|d| d.eps).collect(),
        )
    }

    /// Gradients of a cotangent-contracted JVP, for the tape backward of
    /// the jet quantity `y = J_a(a, θ)·t`:
    ///
    /// given `cot` with `s = Σ_k cot_k y_k`, returns
    /// `(∂s/∂a, ∂s/∂t, ∂s/∂θ)`. Uses hyper-dual runs: `n_qubits` for
    /// `∂s/∂a`, `n_qubits` dual runs for `∂s/∂t`, `n_params` hyper-dual
    /// runs for `∂s/∂θ`.
    #[allow(clippy::type_complexity)]
    pub fn jvp_grads_sample(
        &self,
        a: &[f64],
        tangent: &[f64],
        theta: &[f64],
        cot: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let nq = self.n_qubits;
        let base: Vec<f64> = a.iter().map(|&x| self.scaling.angle(x)).collect();
        let d1: Vec<f64> = a.iter().map(|&x| self.scaling.dangle(x)).collect();
        let d2: Vec<f64> = a.iter().map(|&x| self.scaling.ddangle(x)).collect();

        // ∂s/∂t_j = Σ_k cot_k (J_a)_{jk}: plain Jacobian rows.
        let theta_c1: Vec<Dual64> = theta.iter().map(|&t| Dual::constant(t)).collect();
        let mut grad_t = vec![0.0; nq];
        for (j, gt) in grad_t.iter_mut().enumerate() {
            let angles: Vec<Dual64> = base
                .iter()
                .enumerate()
                .map(|(i, &ang)| {
                    if i == j {
                        Dual::new(ang, d1[j])
                    } else {
                        Dual::constant(ang)
                    }
                })
                .collect();
            let out = self.run(&angles, &theta_c1);
            *gt = out.iter().zip(cot).map(|(d, c)| d.eps * c).sum();
        }

        // ∂s/∂a_i: hyper-dual with outer seed = tangent direction (through
        // the scaling 2-jet) and inner seed = e_i.
        let theta_c2: Vec<HyperDual64> = theta
            .iter()
            .map(|&t| <HyperDual64 as Scalar>::from_f64(t))
            .collect();
        let mut grad_a = vec![0.0; nq];
        for (i, ga) in grad_a.iter_mut().enumerate() {
            let angles: Vec<HyperDual64> = (0..nq)
                .map(|j| {
                    // θ_j(a + α t + β e_i) to second order:
                    // value σ(a_j); ∂α = σ'·t_j; ∂β = σ'·δ_ij;
                    // ∂α∂β = σ''·t_j·δ_ij.
                    let dd = if i == j { d2[j] * tangent[j] } else { 0.0 };
                    Dual {
                        re: Dual {
                            re: base[j],
                            eps: if i == j { d1[j] } else { 0.0 },
                        },
                        eps: Dual {
                            re: d1[j] * tangent[j],
                            eps: dd,
                        },
                    }
                })
                .collect();
            let out = self.run(&angles, &theta_c2);
            *ga = out.iter().zip(cot).map(|(h, c)| h.dd() * c).sum();
        }

        // ∂s/∂θ_p: outer seed = tangent over inputs, inner seed = e_p over
        // parameters.
        let mut grad_theta = vec![0.0; theta.len()];
        let angles_t: Vec<HyperDual64> = (0..nq)
            .map(|j| Dual {
                re: Dual {
                    re: base[j],
                    eps: 0.0,
                },
                eps: Dual {
                    re: d1[j] * tangent[j],
                    eps: 0.0,
                },
            })
            .collect();
        for (p, gt) in grad_theta.iter_mut().enumerate() {
            let th: Vec<HyperDual64> = theta
                .iter()
                .enumerate()
                .map(|(q, &t)| Dual {
                    re: Dual {
                        re: t,
                        eps: if q == p { 1.0 } else { 0.0 },
                    },
                    eps: Dual { re: 0.0, eps: 0.0 },
                })
                .collect();
            let out = self.run(&angles_t, &th);
            *gt = out.iter().zip(cot).map(|(h, c)| h.dd() * c).sum();
        }
        (grad_a, grad_t, grad_theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer() -> QuantumLayer {
        QuantumLayer {
            n_qubits: 3,
            layers: 2,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Acos,
            reupload: false,
        }
    }

    fn fd_eps() -> f64 {
        1e-6
    }

    #[test]
    fn forward_outputs_are_bounded_expectations() {
        let l = layer();
        let mut rng = StdRng::seed_from_u64(0);
        let theta = l.init_params(&mut rng);
        let e = l.forward_sample(&[0.2, -0.6, 0.9], &theta);
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn batch_matches_per_sample() {
        let l = layer();
        let mut rng = StdRng::seed_from_u64(1);
        let theta = l.init_params(&mut rng);
        let rows = [[0.1, 0.2, 0.3], [-0.5, 0.7, 0.0], [0.9, -0.9, 0.4]];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let out = l.forward_batch(&flat, 3, &theta);
        for (r, row) in rows.iter().enumerate() {
            let single = l.forward_sample(row, &theta);
            for k in 0..3 {
                assert!((out[r * 3 + k] - single[k]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn jacobians_match_finite_differences() {
        let l = layer();
        let mut rng = StdRng::seed_from_u64(2);
        let theta = l.init_params(&mut rng);
        let a = [0.3, -0.4, 0.6];
        let (e, ja, jt) = l.jacobians_sample(&a, &theta);
        let h = fd_eps();
        for j in 0..3 {
            let mut ap = a;
            ap[j] += h;
            let mut am = a;
            am[j] -= h;
            let fp = l.forward_sample(&ap, &theta);
            let fm = l.forward_sample(&am, &theta);
            for k in 0..3 {
                let fd = (fp[k] - fm[k]) / (2.0 * h);
                assert!(
                    (ja[j][k] - fd).abs() < 1e-6,
                    "input ({j},{k}): {} vs {fd}",
                    ja[j][k]
                );
            }
        }
        for p in [0usize, 5, theta.len() - 1] {
            let mut tp = theta.clone();
            tp[p] += h;
            let mut tm = theta.clone();
            tm[p] -= h;
            let fp = l.forward_sample(&a, &tp);
            let fm = l.forward_sample(&a, &tm);
            for k in 0..3 {
                let fd = (fp[k] - fm[k]) / (2.0 * h);
                assert!(
                    (jt[p][k] - fd).abs() < 1e-6,
                    "param ({p},{k}): {} vs {fd}",
                    jt[p][k]
                );
            }
        }
        let base = l.forward_sample(&a, &theta);
        for k in 0..3 {
            assert!((e[k] - base[k]).abs() < 1e-14);
        }
    }

    #[test]
    fn jvp_is_jacobian_contraction() {
        let l = layer();
        let mut rng = StdRng::seed_from_u64(3);
        let theta = l.init_params(&mut rng);
        let a = [0.1, 0.5, -0.3];
        let t = [0.7, -0.2, 0.4];
        let (_, ja, _) = l.jacobians_sample(&a, &theta);
        let (_, jvp) = l.jvp_sample(&a, &t, &theta);
        for k in 0..3 {
            let want: f64 = (0..3).map(|j| ja[j][k] * t[j]).sum();
            assert!((jvp[k] - want).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn jvp_grads_match_finite_differences() {
        let l = QuantumLayer {
            n_qubits: 2,
            layers: 1,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Pi,
            reupload: false,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let theta = l.init_params(&mut rng);
        let a = [0.25, -0.55];
        let t = [0.9, 0.3];
        let cot = [0.8, -1.2];
        let s = |a: &[f64], t: &[f64], th: &[f64]| -> f64 {
            let (_, jvp) = l.jvp_sample(a, t, th);
            jvp.iter().zip(&cot).map(|(y, c)| y * c).sum()
        };
        let (ga, gt, gth) = l.jvp_grads_sample(&a, &t, &theta, &cot);
        let h = fd_eps();
        for i in 0..2 {
            let mut ap = a;
            ap[i] += h;
            let mut am = a;
            am[i] -= h;
            let fd = (s(&ap, &t, &theta) - s(&am, &t, &theta)) / (2.0 * h);
            assert!((ga[i] - fd).abs() < 1e-5, "a[{i}]: {} vs {fd}", ga[i]);
        }
        for i in 0..2 {
            let mut tp = t;
            tp[i] += h;
            let mut tm = t;
            tm[i] -= h;
            let fd = (s(&a, &tp, &theta) - s(&a, &tm, &theta)) / (2.0 * h);
            assert!((gt[i] - fd).abs() < 1e-6, "t[{i}]: {} vs {fd}", gt[i]);
        }
        for p in 0..theta.len() {
            let mut thp = theta.clone();
            thp[p] += h;
            let mut thm = theta.clone();
            thm[p] -= h;
            let fd = (s(&a, &t, &thp) - s(&a, &t, &thm)) / (2.0 * h);
            assert!((gth[p] - fd).abs() < 1e-5, "θ[{p}]: {} vs {fd}", gth[p]);
        }
    }

    #[test]
    fn reupload_jacobians_match_finite_differences() {
        let l = QuantumLayer {
            n_qubits: 2,
            layers: 3,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Pi,
            reupload: true,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let theta = l.init_params(&mut rng);
        let a = [0.35, -0.15];
        let (_, ja, jt) = l.jacobians_sample(&a, &theta);
        let h = fd_eps();
        for j in 0..2 {
            let mut ap = a;
            ap[j] += h;
            let mut am = a;
            am[j] -= h;
            let fp = l.forward_sample(&ap, &theta);
            let fm = l.forward_sample(&am, &theta);
            for k in 0..2 {
                let fd = (fp[k] - fm[k]) / (2.0 * h);
                assert!((ja[j][k] - fd).abs() < 1e-6, "input ({j},{k})");
            }
        }
        for p in 0..theta.len() {
            let mut tp = theta.clone();
            tp[p] += h;
            let mut tm = theta.clone();
            tm[p] -= h;
            let fp = l.forward_sample(&a, &tp);
            let fm = l.forward_sample(&a, &tm);
            for k in 0..2 {
                let fd = (fp[k] - fm[k]) / (2.0 * h);
                assert!((jt[p][k] - fd).abs() < 1e-6, "param ({p},{k})");
            }
        }
    }

    #[test]
    fn reupload_enriches_the_fourier_spectrum() {
        // With a single encoding the output e(θ) of a 1-qubit circuit is a
        // first-harmonic trig polynomial in the embedding angle; with data
        // re-uploading across 2 layers, second-harmonic content appears.
        let harmonic_power = |reupload: bool, k: usize| -> f64 {
            let l = QuantumLayer {
                n_qubits: 1,
                layers: 2,
                ansatz: Ansatz::NoEntangling,
                scaling: InputScaling::Pi,
                reupload,
            };
            let mut rng = StdRng::seed_from_u64(3);
            let theta = l.init_params(&mut rng);
            let n = 64;
            // sample e over a full period of the embedding angle
            let mut re = 0.0;
            let mut im = 0.0;
            for i in 0..n {
                let a = -1.0 + 2.0 * i as f64 / n as f64; // θ = πa covers 2π
                let e = l.forward_sample(&[a], &theta)[0];
                let phase = 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                re += e * phase.cos();
                im -= e * phase.sin();
            }
            (re * re + im * im).sqrt() / n as f64
        };
        assert!(
            harmonic_power(false, 2) < 1e-10,
            "single encoding must have no 2nd harmonic: {}",
            harmonic_power(false, 2)
        );
        assert!(
            harmonic_power(true, 2) > 1e-3,
            "re-uploading should create 2nd-harmonic content: {}",
            harmonic_power(true, 2)
        );
    }

    #[test]
    fn param_count_and_init_range() {
        let l = layer();
        assert_eq!(l.n_params(), 18);
        let mut rng = StdRng::seed_from_u64(5);
        let p = l.init_params(&mut rng);
        assert!(p
            .iter()
            .all(|&x| (0.0..2.0 * std::f64::consts::PI).contains(&x)));
    }
}
