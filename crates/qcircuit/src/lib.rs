//! # qpinn-qcircuit
//!
//! An analytic (noiseless, statevector) quantum-circuit simulator, generic
//! over the [`qpinn_dual::Scalar`] type so the *same* gate code yields
//! values (`f64`), exact first derivatives (`Dual64`), and exact mixed
//! second derivatives (`HyperDual64`) — no nested tapes, no finite
//! differences.
//!
//! On top of the simulator sit the pieces a hybrid quantum-classical PINN
//! needs:
//!
//! * [`ansatz`] — the standard variational circuit templates (basic
//!   entangling, strongly entangling, cross-mesh CRZ, no-entanglement);
//! * [`encoding`] — angle embedding of classical activations with the five
//!   input scalings studied in the QPINN literature;
//! * [`layer`] — a batched "quantum layer" (angle embedding → ansatz →
//!   per-qubit Pauli-Z readout) with dual-number Jacobians, spliced into
//!   the autodiff tape by `qpinn-core`;
//! * [`shift`] — the parameter-shift rule, used on hardware and kept here
//!   as an independent oracle for the dual-number gradients;
//! * [`entanglement`] — the Meyer–Wallach global entanglement measure.
//!
//! ```
//! use qpinn_qcircuit::{gates, State};
//! // Bell pair: H on qubit 0, CNOT(0 → 1)
//! let mut s: State<f64> = State::zero(2);
//! s.apply_1q(0, &gates::hadamard());
//! s.apply_cnot(0, 1);
//! let p = s.probabilities();
//! assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod ansatz;
pub mod encoding;
pub mod entanglement;
pub mod gates;
pub mod layer;
pub mod measure;
pub mod shift;
pub mod state;

pub use ansatz::Ansatz;
pub use encoding::InputScaling;
pub use layer::QuantumLayer;
pub use state::State;
