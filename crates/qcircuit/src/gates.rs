//! Gate matrices, generic over the scalar (so rotations by `Dual` angles
//! carry derivatives through the simulation).

use qpinn_dual::{Cplx, Scalar};

/// `RX(θ) = [[cos θ/2, −i sin θ/2], [−i sin θ/2, cos θ/2]]`.
pub fn rx<S: Scalar>(theta: S) -> [[Cplx<S>; 2]; 2] {
    let half = theta * S::from_f64(0.5);
    let c = Cplx::from_real(half.cos());
    let ms = Cplx::new(S::zero(), -half.sin());
    [[c, ms], [ms, c]]
}

/// `RY(θ) = [[cos θ/2, −sin θ/2], [sin θ/2, cos θ/2]]`.
pub fn ry<S: Scalar>(theta: S) -> [[Cplx<S>; 2]; 2] {
    let half = theta * S::from_f64(0.5);
    let c = Cplx::from_real(half.cos());
    let s = Cplx::from_real(half.sin());
    [[c, -s], [s, c]]
}

/// `RZ(θ) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz<S: Scalar>(theta: S) -> [[Cplx<S>; 2]; 2] {
    let half = theta * S::from_f64(0.5);
    [
        [Cplx::cis(-half), Cplx::zero()],
        [Cplx::zero(), Cplx::cis(half)],
    ]
}

/// The general single-qubit rotation `Rot(α, β, γ) = RZ(γ)·RY(β)·RZ(α)`
/// (PennyLane convention).
pub fn rot<S: Scalar>(alpha: S, beta: S, gamma: S) -> [[Cplx<S>; 2]; 2] {
    mat_mul(&rz(gamma), &mat_mul(&ry(beta), &rz(alpha)))
}

/// Hadamard.
pub fn hadamard<S: Scalar>() -> [[Cplx<S>; 2]; 2] {
    let h = Cplx::from_f64(std::f64::consts::FRAC_1_SQRT_2);
    [[h, h], [h, -h]]
}

/// 2×2 complex matrix product.
pub fn mat_mul<S: Scalar>(a: &[[Cplx<S>; 2]; 2], b: &[[Cplx<S>; 2]; 2]) -> [[Cplx<S>; 2]; 2] {
    let mut out = [[Cplx::zero(); 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Check unitarity of a 2×2 matrix to tolerance (test helper, `f64` only).
pub fn is_unitary(g: &[[Cplx<f64>; 2]; 2], tol: f64) -> bool {
    // G†G = I
    let mut gg = [[Cplx::zero(); 2]; 2];
    for (i, row) in gg.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = g[0][i].conj() * g[0][j] + g[1][i].conj() * g[1][j];
        }
    }
    let id = |i: usize, j: usize| if i == j { 1.0 } else { 0.0 };
    (0..2).all(|i| {
        (0..2).all(|j| {
            (gg[i][j].re - id(i, j)).abs() < tol && gg[i][j].im.abs() < tol
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_dual::Dual64;

    #[test]
    fn rotations_are_unitary() {
        for &t in &[0.0, 0.3, 1.9, -2.4] {
            assert!(is_unitary(&rx(t), 1e-12));
            assert!(is_unitary(&ry(t), 1e-12));
            assert!(is_unitary(&rz(t), 1e-12));
            assert!(is_unitary(&rot(t, 0.7, -1.1), 1e-12));
        }
        assert!(is_unitary(&hadamard(), 1e-12));
    }

    #[test]
    fn rx_at_zero_is_identity() {
        let g = rx::<f64>(0.0);
        assert_eq!(g[0][0].re, 1.0);
        assert!(g[0][1].abs() < 1e-15);
    }

    #[test]
    fn rot_composition_matches_sequential_application() {
        use crate::state::State;
        let (a, b, c) = (0.4, -0.9, 1.3);
        let mut s1: State<f64> = State::zero(1);
        s1.apply_1q(0, &rot(a, b, c));
        let mut s2: State<f64> = State::zero(1);
        s2.apply_1q(0, &rz(a));
        s2.apply_1q(0, &ry(b));
        s2.apply_1q(0, &rz(c));
        for (x, y) in s1.amplitudes().iter().zip(s2.amplitudes()) {
            assert!((x.re - y.re).abs() < 1e-13 && (x.im - y.im).abs() < 1e-13);
        }
    }

    #[test]
    fn dual_angle_carries_derivative() {
        // d⟨Z⟩/dθ for RX(θ)|0⟩ is −sin θ.
        use crate::state::State;
        let theta = 0.8;
        let mut s: State<Dual64> = State::zero(1);
        s.apply_1q(0, &rx(Dual64::var(theta)));
        let e = s.expectation_z(0);
        assert!((e.re - theta.cos()).abs() < 1e-13);
        assert!((e.eps + theta.sin()).abs() < 1e-13);
    }

    #[test]
    fn matmul_identity() {
        let i = [[Cplx::<f64>::one(), Cplx::zero()], [Cplx::zero(), Cplx::one()]];
        let g = rx::<f64>(0.77);
        let p = mat_mul(&g, &i);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(p[r][c], g[r][c]);
            }
        }
    }
}
