//! The parameter-shift rule: exact gradients of Pauli-rotation circuits
//! from two shifted evaluations, `∂f/∂θ = (f(θ+π/2) − f(θ−π/2))/2`.
//!
//! On hardware this is the only exact option; in this repository it serves
//! as an independent oracle for the dual-number derivatives (they must
//! agree to machine precision).

use std::f64::consts::FRAC_PI_2;

/// Gradient of a scalar function of circuit parameters via the
/// parameter-shift rule. `f` is evaluated `2·θ.len()` times.
pub fn parameter_shift_gradient(f: &dyn Fn(&[f64]) -> f64, theta: &[f64]) -> Vec<f64> {
    let mut grad = Vec::with_capacity(theta.len());
    let mut work = theta.to_vec();
    for i in 0..theta.len() {
        work[i] = theta[i] + FRAC_PI_2;
        let plus = f(&work);
        work[i] = theta[i] - FRAC_PI_2;
        let minus = f(&work);
        work[i] = theta[i];
        grad.push(0.5 * (plus - minus));
    }
    grad
}

/// Gradient via the **four-term** shift rule, exact for controlled Pauli
/// rotations (generator eigenvalues `{0, ±½}`, hence two frequencies):
///
/// `∂f/∂θ = d₊·[f(θ+π/2) − f(θ−π/2)] − d₋·[f(θ+3π/2) − f(θ−3π/2)]`
///
/// with `d₊ = (√2+1)/(4√2)` and `d₋ = (√2−1)/(4√2)`. For plain one-qubit
/// rotations both frequencies collapse and this reduces to the two-term
/// rule, so it is a safe (4× cost) universal oracle across every ansatz
/// template, including `cross-mesh-crz`'s CRZ parameters where
/// [`parameter_shift_gradient`] is *wrong*.
pub fn controlled_shift_gradient(f: &dyn Fn(&[f64]) -> f64, theta: &[f64]) -> Vec<f64> {
    let sqrt2 = std::f64::consts::SQRT_2;
    let d_plus = (sqrt2 + 1.0) / (4.0 * sqrt2);
    let d_minus = (sqrt2 - 1.0) / (4.0 * sqrt2);
    let (s1, s2) = (FRAC_PI_2, 3.0 * FRAC_PI_2);
    let mut grad = Vec::with_capacity(theta.len());
    let mut work = theta.to_vec();
    for i in 0..theta.len() {
        let mut at = |v: f64| {
            work[i] = v;
            f(&work)
        };
        let near = at(theta[i] + s1) - at(theta[i] - s1);
        let far = at(theta[i] + s2) - at(theta[i] - s2);
        work[i] = theta[i];
        grad.push(d_plus * near - d_minus * far);
    }
    grad
}

/// Exact second derivative along one Pauli-rotation parameter, from the
/// composition of two first-order shifts:
/// `∂²f/∂θᵢ² = ¼·(f(θ+π·eᵢ) − 2f(θ) + f(θ−π·eᵢ))`.
///
/// (Any single-Pauli-generator expectation is `A·cos(θ+φ) + C`, for which
/// this identity is exact.)
pub fn parameter_shift_second(f: &dyn Fn(&[f64]) -> f64, theta: &[f64], i: usize) -> f64 {
    let mut work = theta.to_vec();
    let base = f(theta);
    work[i] = theta[i] + std::f64::consts::PI;
    let plus = f(&work);
    work[i] = theta[i] - std::f64::consts::PI;
    let minus = f(&work);
    0.25 * (plus + minus - 2.0 * base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::Ansatz;
    use crate::encoding::angle_embed;
    use crate::state::State;
    use qpinn_dual::{Dual, Dual64, Scalar};

    #[test]
    fn matches_cosine_rule() {
        // f(θ) = ⟨Z⟩ after RX(θ) = cos θ; f' = −sin θ.
        let f = |t: &[f64]| {
            let s = angle_embed(&[t[0]]);
            s.expectation_z(0)
        };
        for &t in &[0.0, 0.6, 2.1] {
            let g = parameter_shift_gradient(&f, &[t]);
            assert!((g[0] + t.sin()).abs() < 1e-12, "θ={t}");
        }
    }

    #[test]
    fn agrees_with_dual_numbers_on_full_ansatz() {
        let ansatz = Ansatz::BasicEntangling;
        let (nq, layers) = (3, 2);
        let n = ansatz.n_params(nq, layers);
        let theta: Vec<f64> = (0..n).map(|i| 0.3 + 0.17 * i as f64).collect();
        let f = |t: &[f64]| {
            let mut s: State<f64> = State::zero(nq);
            ansatz.apply(&mut s, layers, t);
            s.expectation_z(1)
        };
        let shift_grad = parameter_shift_gradient(&f, &theta);
        // dual-number gradient, one direction at a time
        for i in 0..n {
            let td: Vec<Dual64> = theta
                .iter()
                .enumerate()
                .map(|(j, &v)| {
                    if j == i {
                        Dual64::var(v)
                    } else {
                        Dual::constant(v)
                    }
                })
                .collect();
            let mut s: State<Dual64> = State::zero(nq);
            ansatz.apply(&mut s, layers, &td);
            let e = s.expectation_z(1);
            assert!(
                (e.eps - shift_grad[i]).abs() < 1e-11,
                "param {i}: dual {} vs shift {}",
                e.eps,
                shift_grad[i]
            );
            assert!((e.value() - f(&theta)).abs() < 1e-12);
        }
    }

    #[test]
    fn four_term_rule_reduces_to_two_term_on_plain_rotations() {
        let f = |t: &[f64]| {
            let s = angle_embed(&[t[0], t[1]]);
            s.expectation_z(0) * s.expectation_z(1)
        };
        let theta = [0.4, 1.3];
        let two = parameter_shift_gradient(&f, &theta);
        let four = controlled_shift_gradient(&f, &theta);
        for (a, b) in two.iter().zip(&four) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn four_term_rule_is_exact_on_controlled_rotations() {
        // CrossMeshCrz parametrizes CRZ gates, where the two-term rule is
        // *not* exact. The four-term rule must match dual numbers to
        // machine precision on every parameter.
        let ansatz = Ansatz::CrossMeshCrz;
        let (nq, layers) = (3, 1);
        let n = ansatz.n_params(nq, layers);
        let theta: Vec<f64> = (0..n).map(|i| 0.25 + 0.31 * i as f64).collect();
        let f = |t: &[f64]| {
            let mut s: State<f64> = State::zero(nq);
            // seed superposition so the CRZ controls are non-trivial
            for q in 0..nq {
                s.apply_1q(q, &crate::gates::ry(0.9 + 0.2 * q as f64));
            }
            ansatz.apply(&mut s, layers, t);
            s.expectation_z(1)
        };
        let four = controlled_shift_gradient(&f, &theta);
        for i in 0..n {
            let td: Vec<Dual64> = theta
                .iter()
                .enumerate()
                .map(|(j, &v)| if j == i { Dual64::var(v) } else { Dual::constant(v) })
                .collect();
            let mut s: State<Dual64> = State::zero(nq);
            for q in 0..nq {
                s.apply_1q(q, &crate::gates::ry(Dual::constant(0.9 + 0.2 * q as f64)));
            }
            ansatz.apply(&mut s, layers, &td);
            let e = s.expectation_z(1);
            assert!(
                (e.eps - four[i]).abs() < 1e-11,
                "param {i}: dual {} vs 4-term {}",
                e.eps,
                four[i]
            );
        }
    }

    #[test]
    fn second_derivative_of_cosine() {
        let f = |t: &[f64]| {
            let s = angle_embed(&[t[0]]);
            s.expectation_z(0)
        };
        for &t in &[0.2, 1.0, 2.4] {
            let d2 = parameter_shift_second(&f, &[t], 0);
            assert!((d2 + t.cos()).abs() < 1e-12, "θ={t}: {d2} vs {}", -t.cos());
        }
    }
}
