//! Variational circuit templates.
//!
//! Each ansatz is `layers` repetitions of a single-qubit rotation block
//! followed by an entangling block. The templates mirror the designs
//! ablated in the QPINN literature (and PennyLane's template library):
//!
//! * [`Ansatz::BasicEntangling`] — `Rot` per qubit + nearest-neighbour
//!   CNOT ring ("hardware-efficient");
//! * [`Ansatz::StronglyEntangling`] — `Rot` per qubit + CNOT ring whose
//!   control-target distance grows with the layer index;
//! * [`Ansatz::CrossMeshCrz`] — `RX` per qubit + parametrized `CRZ`
//!   between every ordered qubit pair ("fully connected");
//! * [`Ansatz::NoEntangling`] — `Rot` per qubit only (the classical-like
//!   control);
//! * [`Ansatz::Cascade`] — `RY` per qubit + downward CNOT cascade (the
//!   cheapest entangling template: one parameter per qubit per layer);
//! * [`Ansatz::Layered`] — `RY`+`RZ` per qubit + open CNOT chain;
//! * [`Ansatz::Farhi`] — `RX` per qubit followed by parametrized ZZ
//!   blocks (`CNOT·RZ·CNOT`) on adjacent pairs, after Farhi–Neven-style
//!   learning circuits;
//! * [`Ansatz::SimCirc15`] — two `RY` sweeps separated by
//!   counter-rotating CNOT rings (circuit 15 of the Sim et al.
//!   expressibility study).
//!
//! Templates are addressable by their stable report name through
//! [`Ansatz::from_name`] — the same key the bench `--ansatz` flag and the
//! serve training API accept. All templates parametrize only plain
//! single-qubit Pauli rotations (the `CRZ`s of [`Ansatz::CrossMeshCrz`]
//! are the one exception), so the two-term parameter-shift rule is an
//! exact gradient oracle for every family except `cross-mesh-crz`, which
//! needs the four-term controlled-rotation rule in [`crate::shift`].

use crate::gates;
use crate::state::State;
use qpinn_dual::{Cplx, Scalar};

/// The ansatz family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ansatz {
    /// Rot + nearest-neighbour CNOT ring.
    BasicEntangling,
    /// Rot + layer-dependent-range CNOT ring.
    StronglyEntangling,
    /// RX + all-pairs parametrized CRZ.
    CrossMeshCrz,
    /// Rot only, no two-qubit gates.
    NoEntangling,
    /// RY + downward CNOT cascade.
    Cascade,
    /// RY + RZ + open CNOT chain.
    Layered,
    /// RX + parametrized adjacent-pair ZZ blocks.
    Farhi,
    /// RY, CNOT ring, RY, counter-rotated CNOT ring.
    SimCirc15,
}

impl Ansatz {
    /// All templates, for ablation sweeps.
    pub fn all() -> [Ansatz; 8] {
        [
            Ansatz::BasicEntangling,
            Ansatz::StronglyEntangling,
            Ansatz::CrossMeshCrz,
            Ansatz::NoEntangling,
            Ansatz::Cascade,
            Ansatz::Layered,
            Ansatz::Farhi,
            Ansatz::SimCirc15,
        ]
    }

    /// All report names, sorted exactly like [`Ansatz::all`].
    pub fn names() -> Vec<&'static str> {
        Ansatz::all().iter().map(|a| a.name()).collect()
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            Ansatz::BasicEntangling => "basic-entangling",
            Ansatz::StronglyEntangling => "strongly-entangling",
            Ansatz::CrossMeshCrz => "cross-mesh-crz",
            Ansatz::NoEntangling => "no-entangling",
            Ansatz::Cascade => "cascade",
            Ansatz::Layered => "layered",
            Ansatz::Farhi => "farhi",
            Ansatz::SimCirc15 => "sim-circ-15",
        }
    }

    /// Resolve a report name (as printed by [`Ansatz::name`]) back to the
    /// template. Underscores are accepted in place of dashes so shell-
    /// quoted flags like `sim_circ_15` also resolve. Unknown names return
    /// `None`, never panic.
    pub fn from_name(name: &str) -> Option<Ansatz> {
        let normalized = name.replace('_', "-");
        Ansatz::all().into_iter().find(|a| a.name() == normalized)
    }

    /// Number of trainable parameters for `n_qubits` qubits and `layers`
    /// layers.
    pub fn n_params(&self, n_qubits: usize, layers: usize) -> usize {
        match self {
            Ansatz::BasicEntangling | Ansatz::StronglyEntangling | Ansatz::NoEntangling => {
                3 * n_qubits * layers
            }
            // RX per qubit + CRZ per ordered pair
            Ansatz::CrossMeshCrz => layers * (n_qubits + n_qubits * (n_qubits - 1)),
            Ansatz::Cascade => n_qubits * layers,
            Ansatz::Layered | Ansatz::SimCirc15 => 2 * n_qubits * layers,
            // RX per qubit + one ZZ angle per adjacent pair
            Ansatz::Farhi => layers * (n_qubits + n_qubits.saturating_sub(1)),
        }
    }

    /// Parameters consumed by a single layer on `n_qubits` qubits.
    pub fn params_per_layer(&self, n_qubits: usize) -> usize {
        self.n_params(n_qubits, 1)
    }

    /// Apply one ansatz layer (`layer` is the 0-based layer index, which
    /// selects the entangling wiring for the strongly entangling template).
    ///
    /// # Panics
    /// Panics on a parameter-count mismatch.
    pub fn apply_layer<S: Scalar>(&self, state: &mut State<S>, layer: usize, params: &[S]) {
        let nq = state.n_qubits();
        assert_eq!(
            params.len(),
            self.params_per_layer(nq),
            "{}: wrong per-layer parameter count",
            self.name()
        );
        self.apply_layer_inner(state, layer, params, None);
    }

    /// Apply one ansatz layer with a per-qubit **pre-gate** fused into the
    /// layer's leading single-qubit rotation: the two 2×2 matrices are
    /// pre-multiplied, so the state sees one gate sweep instead of two.
    /// `pre[q]` is applied *before* the layer's rotation on qubit `q`
    /// (matrix product `rotation · pre`). Used by data re-uploading, where
    /// every layer is preceded by an `RX` embedding on each qubit.
    ///
    /// # Panics
    /// Panics on a parameter-count mismatch or when `pre` does not hold
    /// one gate per qubit.
    pub fn apply_layer_fused<S: Scalar>(
        &self,
        state: &mut State<S>,
        layer: usize,
        params: &[S],
        pre: &[[[Cplx<S>; 2]; 2]],
    ) {
        let nq = state.n_qubits();
        assert_eq!(
            params.len(),
            self.params_per_layer(nq),
            "{}: wrong per-layer parameter count",
            self.name()
        );
        assert_eq!(pre.len(), nq, "one pre-gate per qubit");
        self.apply_layer_inner(state, layer, params, Some(pre));
    }

    /// Apply the full ansatz to `state` using `params` (length must equal
    /// [`Ansatz::n_params`]).
    ///
    /// # Panics
    /// Panics on a parameter-count mismatch.
    pub fn apply<S: Scalar>(&self, state: &mut State<S>, layers: usize, params: &[S]) {
        let nq = state.n_qubits();
        assert_eq!(
            params.len(),
            self.n_params(nq, layers),
            "{}: wrong parameter count",
            self.name()
        );
        let per = self.params_per_layer(nq);
        if matches!(self, Ansatz::NoEntangling) {
            // Cross-layer gate fusion: with no entangler between layers,
            // each qubit sees `layers` consecutive `Rot` gates. Their 2×2
            // product is computed once and applied in a single sweep over
            // the state — `nq` gate applications total instead of
            // `nq · layers`.
            for q in 0..nq {
                let pq = 3 * q;
                let mut g = gates::rot(params[pq], params[pq + 1], params[pq + 2]);
                for layer in 1..layers {
                    let p = layer * per + pq;
                    g = gates::mat_mul(&gates::rot(params[p], params[p + 1], params[p + 2]), &g);
                }
                state.apply_1q(q, &g);
            }
            return;
        }
        for layer in 0..layers {
            self.apply_layer_inner(state, layer, &params[layer * per..(layer + 1) * per], None);
        }
    }

    fn apply_layer_inner<S: Scalar>(
        &self,
        state: &mut State<S>,
        layer: usize,
        params: &[S],
        pre: Option<&[[[Cplx<S>; 2]; 2]]>,
    ) {
        let nq = state.n_qubits();
        {
            let mut p = 0usize;
            match self {
                Ansatz::BasicEntangling | Ansatz::StronglyEntangling | Ansatz::NoEntangling => {
                    for q in 0..nq {
                        let mut g = gates::rot(params[p], params[p + 1], params[p + 2]);
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                        p += 3;
                    }
                    match self {
                        Ansatz::NoEntangling => {}
                        Ansatz::BasicEntangling => {
                            if nq > 1 {
                                for q in 0..nq {
                                    state.apply_cnot(q, (q + 1) % nq);
                                }
                            }
                        }
                        Ansatz::StronglyEntangling => {
                            if nq > 1 {
                                let range = 1 + layer % (nq - 1).max(1);
                                for q in 0..nq {
                                    state.apply_cnot(q, (q + range) % nq);
                                }
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                Ansatz::CrossMeshCrz => {
                    for q in 0..nq {
                        let mut g = gates::rx(params[p]);
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                        p += 1;
                    }
                    for c in 0..nq {
                        for t in 0..nq {
                            if c != t {
                                state.apply_controlled_1q(c, t, &gates::rz(params[p]));
                                p += 1;
                            }
                        }
                    }
                }
                Ansatz::Cascade => {
                    for q in 0..nq {
                        let mut g = gates::ry(params[q]);
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                    }
                    for q in 0..nq.saturating_sub(1) {
                        state.apply_cnot(q, q + 1);
                    }
                }
                Ansatz::Layered => {
                    // The per-qubit RY then RZ collapse into one fused 2×2.
                    for q in 0..nq {
                        let mut g =
                            gates::mat_mul(&gates::rz(params[nq + q]), &gates::ry(params[q]));
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                    }
                    for q in 0..nq.saturating_sub(1) {
                        state.apply_cnot(q, q + 1);
                    }
                }
                Ansatz::Farhi => {
                    for q in 0..nq {
                        let mut g = gates::rx(params[q]);
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                    }
                    // exp(−iθ ZZ/2) on (q, q+1) as CNOT · RZ(target) · CNOT
                    for q in 0..nq.saturating_sub(1) {
                        state.apply_cnot(q, q + 1);
                        state.apply_1q(q + 1, &gates::rz(params[nq + q]));
                        state.apply_cnot(q, q + 1);
                    }
                }
                Ansatz::SimCirc15 => {
                    for q in 0..nq {
                        let mut g = gates::ry(params[q]);
                        if let Some(pre) = pre {
                            g = gates::mat_mul(&g, &pre[q]);
                        }
                        state.apply_1q(q, &g);
                    }
                    if nq > 1 {
                        for q in 0..nq {
                            state.apply_cnot(q, (q + 1) % nq);
                        }
                    }
                    for q in 0..nq {
                        state.apply_1q(q, &gates::ry(params[nq + q]));
                    }
                    if nq > 1 {
                        for q in 0..nq {
                            state.apply_cnot(q, (q + nq - 1) % nq);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_params(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(0.0..2.0 * std::f64::consts::PI))
            .collect()
    }

    #[test]
    fn parameter_counts() {
        assert_eq!(Ansatz::BasicEntangling.n_params(7, 4), 84);
        assert_eq!(Ansatz::StronglyEntangling.n_params(7, 4), 84);
        assert_eq!(Ansatz::NoEntangling.n_params(7, 4), 84);
        // 7 RX + 42 CRZ per layer × 4 layers = 196
        assert_eq!(Ansatz::CrossMeshCrz.n_params(7, 4), 196);
        assert_eq!(Ansatz::Cascade.n_params(7, 4), 28);
        assert_eq!(Ansatz::Layered.n_params(7, 4), 56);
        assert_eq!(Ansatz::SimCirc15.n_params(7, 4), 56);
        // 7 RX + 6 ZZ per layer × 4 layers = 52
        assert_eq!(Ansatz::Farhi.n_params(7, 4), 52);
        // degenerate single-qubit circuits still have well-defined counts
        assert_eq!(Ansatz::Farhi.n_params(1, 3), 3);
        assert_eq!(Ansatz::Cascade.n_params(1, 3), 3);
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for a in Ansatz::all() {
            assert_eq!(Ansatz::from_name(a.name()), Some(a));
        }
        // underscore spelling resolves too
        assert_eq!(Ansatz::from_name("sim_circ_15"), Some(Ansatz::SimCirc15));
        assert_eq!(Ansatz::from_name("no-such-ansatz"), None);
    }

    #[test]
    fn cascade_and_layered_entangle_neighbours() {
        for a in [Ansatz::Cascade, Ansatz::Layered, Ansatz::Farhi, Ansatz::SimCirc15] {
            // Farhi's entanglers are diagonal, so ⟨Z₂⟩ is exactly blind to
            // qubit 0's angles at any depth; probe the q0→q1 coupling
            // there and the full q0→q2 chain everywhere else.
            let probe = if a == Ansatz::Farhi { 1 } else { 2 };
            let mut p = random_params(a.n_params(3, 3), 11);
            let mut s1: State<f64> = State::zero(3);
            a.apply(&mut s1, 3, &p);
            let z_before = s1.expectation_z(probe);
            // perturbing qubit 0's leading angle must reach the probe qubit
            // through the entangler
            p[0] += 0.9;
            let mut s2: State<f64> = State::zero(3);
            a.apply(&mut s2, 3, &p);
            assert!(
                (s2.expectation_z(probe) - z_before).abs() > 1e-6,
                "{} failed to couple qubit 0 to qubit {probe}",
                a.name()
            );
        }
    }

    #[test]
    fn farhi_zz_block_matches_exact_zz_evolution() {
        // On 2 qubits with zero RX angles, one Farhi layer is exactly
        // exp(−iθ Z⊗Z/2): ⟨Z⟩ stays 1 on |00⟩ and the acquired phase is
        // diag(e^{−iθ/2}, e^{iθ/2}, e^{iθ/2}, e^{−iθ/2}).
        let theta = 0.73f64;
        let mut s: State<f64> = State::zero(2);
        // superpose first so phases are visible: H⊗H via RY(π/2) up to sign
        let h_like = gates::ry(std::f64::consts::FRAC_PI_2);
        s.apply_1q(0, &h_like);
        s.apply_1q(1, &h_like);
        Ansatz::Farhi.apply(&mut s, 1, &[0.0, 0.0, theta]);
        let amps = s.amplitudes().to_vec();
        for (i, a) in amps.iter().enumerate() {
            let parity = ((i.count_ones() % 2) as f64) * 2.0 - 1.0; // +1 odd, −1 even
            let expect_phase = 0.5 * theta * parity;
            let rotated = *a * qpinn_dual::Cplx::cis(-expect_phase);
            assert!(
                rotated.im.abs() < 1e-12,
                "amp {i} phase mismatch: {:?}",
                a
            );
        }
    }

    #[test]
    fn all_ansaetze_preserve_norm() {
        for a in Ansatz::all() {
            let mut s: State<f64> = State::zero(4);
            let params = random_params(a.n_params(4, 3), 42);
            a.apply(&mut s, 3, &params);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10, "{}", a.name());
        }
    }

    #[test]
    fn no_entangling_keeps_product_structure() {
        // With a product ansatz, ⟨Z_q⟩ depends only on qubit q's own
        // parameters: changing qubit 0's parameters must not affect ⟨Z_1⟩.
        let a = Ansatz::NoEntangling;
        let mut p1 = random_params(a.n_params(3, 2), 1);
        let mut s1: State<f64> = State::zero(3);
        a.apply(&mut s1, 2, &p1);
        let z1_before = s1.expectation_z(1);
        // perturb qubit 0's parameters in both layers (indices 0..3, 9..12)
        p1[0] += 0.7;
        p1[9] -= 0.3;
        let mut s2: State<f64> = State::zero(3);
        a.apply(&mut s2, 2, &p1);
        assert!((s2.expectation_z(1) - z1_before).abs() < 1e-12);
    }

    #[test]
    fn entangling_ansatz_couples_qubits() {
        // In contrast, the basic entangler propagates changes across qubits.
        let a = Ansatz::BasicEntangling;
        let mut p = random_params(a.n_params(3, 2), 2);
        let mut s1: State<f64> = State::zero(3);
        a.apply(&mut s1, 2, &p);
        let z1_before = s1.expectation_z(1);
        // perturb qubit 0's RY angle (the leading RZ on |0⟩ is a pure phase)
        p[1] += 0.9;
        let mut s2: State<f64> = State::zero(3);
        a.apply(&mut s2, 2, &p);
        assert!((s2.expectation_z(1) - z1_before).abs() > 1e-4);
    }

    #[test]
    fn strongly_entangling_differs_from_basic_beyond_first_layer() {
        let nq = 4;
        let layers = 2;
        let p = random_params(Ansatz::BasicEntangling.n_params(nq, layers), 3);
        let mut sb: State<f64> = State::zero(nq);
        Ansatz::BasicEntangling.apply(&mut sb, layers, &p);
        let mut ss: State<f64> = State::zero(nq);
        Ansatz::StronglyEntangling.apply(&mut ss, layers, &p);
        let diff: f64 = sb
            .amplitudes()
            .iter()
            .zip(ss.amplitudes())
            .map(|(x, y)| (*x - *y).norm_sqr())
            .sum();
        assert!(diff > 1e-6, "layer-2 wiring should differ: {diff}");
    }

    #[test]
    fn single_qubit_edge_case() {
        for a in Ansatz::all() {
            let mut s: State<f64> = State::zero(1);
            let params = random_params(a.n_params(1, 2), 4);
            a.apply(&mut s, 2, &params);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-12, "{}", a.name());
        }
    }
}
