//! The Meyer–Wallach global entanglement measure
//! `Q(ψ) = 2·(1 − (1/n) Σ_q Tr ρ_q²)`, where `ρ_q` is the single-qubit
//! reduced density matrix. `Q = 0` exactly for product states and
//! approaches 1 for highly entangled ones — the diagnostic used when
//! studying barren-plateau-like collapse phenomena.

use crate::state::State;
use qpinn_dual::Complex64;

/// Purity `Tr ρ_q²` of one qubit's reduced state.
pub fn single_qubit_purity(state: &State<f64>, q: usize) -> f64 {
    let bit = 1usize << q;
    let amps = state.amplitudes();
    let mut a = 0.0; // ρ00
    let mut c = 0.0; // ρ11
    let mut b = Complex64::zero(); // ρ01
    for (i, &amp) in amps.iter().enumerate() {
        if i & bit == 0 {
            a += amp.norm_sqr();
            let j = i | bit;
            b += amp * amps[j].conj();
        } else {
            c += amp.norm_sqr();
        }
    }
    a * a + c * c + 2.0 * b.norm_sqr()
}

/// The Meyer–Wallach measure of a (normalized) pure state.
pub fn meyer_wallach(state: &State<f64>) -> f64 {
    let n = state.n_qubits();
    let avg_purity: f64 =
        (0..n).map(|q| single_qubit_purity(state, q)).sum::<f64>() / n as f64;
    2.0 * (1.0 - avg_purity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn product_state_has_zero_entanglement() {
        let mut s: State<f64> = State::zero(3);
        s.apply_1q(0, &gates::rx(0.7));
        s.apply_1q(1, &gates::ry(1.9));
        s.apply_1q(2, &gates::hadamard());
        assert!(meyer_wallach(&s).abs() < 1e-12);
    }

    #[test]
    fn bell_state_is_maximally_entangled() {
        let mut s: State<f64> = State::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_cnot(0, 1);
        // each qubit of a Bell pair is maximally mixed: purity ½ → Q = 1
        assert!((meyer_wallach(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_entanglement() {
        // GHZ on n qubits: every single-qubit purity is ½ → Q = 1.
        let mut s: State<f64> = State::zero(4);
        s.apply_1q(0, &gates::hadamard());
        for q in 1..4 {
            s.apply_cnot(0, q);
        }
        assert!((meyer_wallach(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_entanglement_is_between_bounds() {
        let mut s: State<f64> = State::zero(2);
        s.apply_1q(0, &gates::ry(0.8));
        s.apply_cnot(0, 1);
        let q = meyer_wallach(&s);
        assert!(q > 0.01 && q < 0.99, "Q = {q}");
    }

    #[test]
    fn purity_bounds() {
        let mut s: State<f64> = State::zero(3);
        s.apply_1q(0, &gates::hadamard());
        s.apply_cnot(0, 1);
        for q in 0..3 {
            let p = single_qubit_purity(&s, q);
            assert!((0.5..=1.0 + 1e-12).contains(&p), "qubit {q}: {p}");
        }
        // qubit 2 untouched → pure
        assert!((single_qubit_purity(&s, 2) - 1.0).abs() < 1e-12);
    }
}
