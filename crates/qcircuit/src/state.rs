//! The statevector and its gate-application kernels.
//!
//! Qubit `q` corresponds to bit `q` of the basis index (little-endian):
//! `|b_{n−1} … b_1 b_0⟩` has amplitude index `Σ b_q 2^q`.
//!
//! The apply kernels are **stride-free**: instead of scanning all `2ⁿ`
//! indices and testing bits (a 50–75% wasted, branch-mispredicting scan),
//! they enumerate exactly the amplitude pairs a gate touches — `apply_1q`
//! by walking `2·2^t`-sized chunks split at the target bit, the controlled
//! kernels by expanding a compressed `2^{n−2}` counter around the two
//! fixed bits. Per-pair arithmetic is unchanged, and pairs are visited in
//! ascending index order, so states are bit-identical to the naive scan.
//!
//! When the amplitudes carry plain `f64` (the forward/inference path) and
//! the tensor crate's SIMD dispatch selected an AVX width, `apply_1q`
//! reinterprets the `repr(C)` `Cplx<f64>` buffer as interleaved doubles
//! and updates two amplitude pairs per iteration with AVX2 complex
//! arithmetic. The vector kernel performs the exact scalar operation
//! sequence (`mul`, `permute`, `addsub` — each product and sum rounded
//! once, no FMA), so it is bit-identical to the generic path; dual-number
//! sweeps and forced-scalar dispatch (`QPINN_SIMD=scalar`) keep the
//! generic loop.

use core::any::TypeId;
use qpinn_dual::{Cplx, Scalar};

/// Expand `k` by inserting a zero bit at position `bit` (a power of two):
/// the bits of `k` below `bit` stay, the rest shift up one position.
#[inline(always)]
fn insert_zero_bit(k: usize, bit: usize) -> usize {
    (k & (bit - 1)) | ((k & !(bit - 1)) << 1)
}

/// A pure `n`-qubit state, generic over the scalar carried by its
/// amplitudes.
#[derive(Clone, Debug)]
pub struct State<S> {
    n_qubits: usize,
    amps: Vec<Cplx<S>>,
}

impl<S: Scalar> State<S> {
    /// The computational basis state `|0…0⟩`.
    pub fn zero(n_qubits: usize) -> Self {
        assert!((1..=24).contains(&n_qubits), "unreasonable qubit count");
        let mut amps = vec![Cplx::zero(); 1 << n_qubits];
        amps[0] = Cplx::one();
        State { n_qubits, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Amplitudes in basis order.
    pub fn amplitudes(&self) -> &[Cplx<S>] {
        &self.amps
    }

    /// Total norm `⟨ψ|ψ⟩`.
    pub fn norm_sqr(&self) -> S {
        let mut acc = S::zero();
        for a in &self.amps {
            acc += a.norm_sqr();
        }
        acc
    }

    /// Apply a single-qubit gate `[[g00, g01], [g10, g11]]` to `target`.
    ///
    /// # Panics
    /// Panics for an out-of-range target.
    pub fn apply_1q(&mut self, target: usize, g: &[[Cplx<S>; 2]; 2]) {
        assert!(target < self.n_qubits, "target {target} out of range");
        let bit = 1usize << target;
        #[cfg(target_arch = "x86_64")]
        if bit >= 2
            && TypeId::of::<S>() == TypeId::of::<f64>()
            && qpinn_tensor::simd::width() >= 4
        {
            // SAFETY: S is f64 (TypeId checked) and Cplx is repr(C), so the
            // amplitude buffer is exactly interleaved [re, im] doubles; the
            // dispatched width ≥ 4 certifies AVX2 on this CPU.
            unsafe {
                let amps = core::slice::from_raw_parts_mut(
                    self.amps.as_mut_ptr().cast::<f64>(),
                    self.amps.len() * 2,
                );
                let gf = &*(g as *const [[Cplx<S>; 2]; 2]).cast::<[[Cplx<f64>; 2]; 2]>();
                apply_1q_f64_avx2(amps, bit, gf);
            }
            return;
        }
        for chunk in self.amps.chunks_exact_mut(2 * bit) {
            let (lo, hi) = chunk.split_at_mut(bit);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let x0 = *a0;
                let x1 = *a1;
                *a0 = g[0][0] * x0 + g[0][1] * x1;
                *a1 = g[1][0] * x0 + g[1][1] * x1;
            }
        }
    }

    /// Apply a single-qubit gate to `target`, controlled on `control`.
    ///
    /// # Panics
    /// Panics for out-of-range or equal qubits.
    pub fn apply_controlled_1q(&mut self, control: usize, target: usize, g: &[[Cplx<S>; 2]; 2]) {
        assert!(control < self.n_qubits && target < self.n_qubits);
        assert_ne!(control, target, "control = target");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let (lo_bit, hi_bit) = if cbit < tbit { (cbit, tbit) } else { (tbit, cbit) };
        for k in 0..self.amps.len() / 4 {
            let i = insert_zero_bit(insert_zero_bit(k, lo_bit), hi_bit);
            let i0 = i | cbit; // control set, target clear
            let i1 = i0 | tbit;
            let a0 = self.amps[i0];
            let a1 = self.amps[i1];
            self.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
            self.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
        }
    }

    /// CNOT with the given control and target.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits);
        assert_ne!(control, target, "control = target");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let (lo_bit, hi_bit) = if cbit < tbit { (cbit, tbit) } else { (tbit, cbit) };
        for k in 0..self.amps.len() / 4 {
            let i = insert_zero_bit(insert_zero_bit(k, lo_bit), hi_bit);
            let i0 = i | cbit;
            self.amps.swap(i0, i0 | tbit);
        }
    }

    /// Expectation value `⟨Z_q⟩ = Σ (−1)^{bit q} |ψ_i|²`.
    ///
    /// Accumulation runs in ascending basis order (within each `2·2^q`
    /// chunk the `+` half precedes the `−` half, exactly as a full index
    /// scan would visit them), so the sum is bit-deterministic.
    pub fn expectation_z(&self, q: usize) -> S {
        assert!(q < self.n_qubits);
        let bit = 1usize << q;
        let mut acc = S::zero();
        for chunk in self.amps.chunks_exact(2 * bit) {
            let (lo, hi) = chunk.split_at(bit);
            for a in lo {
                acc += a.norm_sqr();
            }
            for a in hi {
                acc -= a.norm_sqr();
            }
        }
        acc
    }

    /// All per-qubit Z expectations.
    ///
    /// The `|ψ_i|²` values are computed once into a scratch buffer and
    /// reused for every qubit's signed sum (the naive per-qubit scan
    /// recomputes them `n` times). Accumulation order per qubit matches
    /// [`State::expectation_z`] exactly.
    pub fn all_expectations_z(&self) -> Vec<S> {
        let probs: Vec<S> = self.amps.iter().map(|a| a.norm_sqr()).collect();
        (0..self.n_qubits)
            .map(|q| {
                let bit = 1usize << q;
                let mut acc = S::zero();
                for chunk in probs.chunks_exact(2 * bit) {
                    let (lo, hi) = chunk.split_at(bit);
                    for &p in lo {
                        acc += p;
                    }
                    for &p in hi {
                        acc -= p;
                    }
                }
                acc
            })
            .collect()
    }
}

impl State<f64> {
    /// Measurement probabilities in basis order.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// AVX2 single-qubit gate kernel over interleaved `[re, im]` doubles, for
/// targets with `bit ≥ 2` (two complex amplitudes per 256-bit register).
///
/// Complex multiply by a broadcast gate element `g = gr + i·gi` is
/// `addsub(gr·v, gi·swap(v))`: lane-wise that is `gr·ar − gi·ai` and
/// `gr·ai + gi·ar` with every product and the final add/sub rounded once —
/// the identical operation sequence to the scalar `Cplx` multiply, so the
/// results are bit-for-bit equal to the generic loop. No FMA anywhere.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn apply_1q_f64_avx2(amps: &mut [f64], bit: usize, g: &[[Cplx<f64>; 2]; 2]) {
    use core::arch::x86_64::*;
    debug_assert!(bit >= 2 && bit.is_power_of_two());
    let g00r = _mm256_set1_pd(g[0][0].re);
    let g00i = _mm256_set1_pd(g[0][0].im);
    let g01r = _mm256_set1_pd(g[0][1].re);
    let g01i = _mm256_set1_pd(g[0][1].im);
    let g10r = _mm256_set1_pd(g[1][0].re);
    let g10i = _mm256_set1_pd(g[1][0].im);
    let g11r = _mm256_set1_pd(g[1][1].re);
    let g11i = _mm256_set1_pd(g[1][1].im);
    let half = 2 * bit; // doubles per lo/hi half of a chunk
    let mut base = 0;
    while base < amps.len() {
        let mut j = 0;
        while j < half {
            let p0 = amps.as_mut_ptr().add(base + j);
            let p1 = amps.as_mut_ptr().add(base + half + j);
            let x0 = _mm256_loadu_pd(p0);
            let x1 = _mm256_loadu_pd(p1);
            // Swap re/im within each complex slot for the cross terms.
            let x0s = _mm256_permute_pd(x0, 0b0101);
            let x1s = _mm256_permute_pd(x1, 0b0101);
            let a0 = _mm256_add_pd(
                _mm256_addsub_pd(_mm256_mul_pd(g00r, x0), _mm256_mul_pd(g00i, x0s)),
                _mm256_addsub_pd(_mm256_mul_pd(g01r, x1), _mm256_mul_pd(g01i, x1s)),
            );
            let a1 = _mm256_add_pd(
                _mm256_addsub_pd(_mm256_mul_pd(g10r, x0), _mm256_mul_pd(g10i, x0s)),
                _mm256_addsub_pd(_mm256_mul_pd(g11r, x1), _mm256_mul_pd(g11i, x1s)),
            );
            _mm256_storeu_pd(p0, a0);
            _mm256_storeu_pd(p1, a1);
            j += 4;
        }
        base += 2 * half;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use qpinn_dual::Complex64;

    type St = State<f64>;

    #[test]
    fn zero_state_is_normalized() {
        let s = St::zero(3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.amplitudes()[0], Complex64::one());
    }

    #[test]
    fn x_gate_flips() {
        // RX(π) = −i X up to phase: |0⟩ → −i|1⟩.
        let mut s = St::zero(1);
        s.apply_1q(0, &gates::rx(std::f64::consts::PI));
        assert!(s.amplitudes()[0].abs() < 1e-12);
        assert!((s.amplitudes()[1].abs() - 1.0).abs() < 1e-12);
        assert!((s.expectation_z(0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_gives_equal_superposition() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_1q(1, &gates::hadamard());
        for a in s.amplitudes() {
            assert!((a.re - 0.5).abs() < 1e-12 && a.im.abs() < 1e-12);
        }
        assert!(s.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_cnot() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_cnot(0, 1);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12); // |00⟩
        assert!((p[3] - 0.5).abs() < 1e-12); // |11⟩
        assert!(p[1].abs() < 1e-15 && p[2].abs() < 1e-15);
    }

    #[test]
    fn rx_rotation_expectation_is_cos_theta() {
        for &theta in &[0.0, 0.4, 1.1, 2.7] {
            let mut s = St::zero(1);
            s.apply_1q(0, &gates::rx(theta));
            assert!(
                (s.expectation_z(0) - theta.cos()).abs() < 1e-12,
                "θ = {theta}"
            );
        }
    }

    #[test]
    fn controlled_gate_ignores_zero_control() {
        let mut s = St::zero(2);
        s.apply_controlled_1q(0, 1, &gates::rx(1.3));
        // control qubit 0 is |0⟩ → nothing happens
        assert!((s.amplitudes()[0].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn crz_applies_phase_only_on_11() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_1q(1, &gates::hadamard());
        s.apply_controlled_1q(0, 1, &gates::rz(1.0));
        // |11⟩ picks up e^{+i/2}, |01⟩… wait: rz applies phases to target
        // basis; on the controlled subspace (control=1): |10⟩ (target 1 = 0)
        // gets e^{-i/2}, |11⟩ gets e^{+i/2}. Norm unchanged everywhere.
        let p = s.probabilities();
        for v in p {
            assert!((v - 0.25).abs() < 1e-12);
        }
        assert!((s.amplitudes()[3].arg() - 0.5).abs() < 1e-12);
        assert!((s.amplitudes()[1].arg() - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = St::zero(3);
        s.apply_1q(0, &gates::rx(0.7));
        s.apply_1q(1, &gates::ry(1.2));
        s.apply_1q(2, &gates::rz(-0.5));
        s.apply_cnot(0, 2);
        s.apply_controlled_1q(2, 1, &gates::rz(0.9));
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_free_kernels_match_naive_scan() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for nq in [2usize, 3, 5] {
            // A normalized random state shared by both implementations.
            let amps: Vec<Complex64> = (0..1usize << nq)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            let scale = Complex64::from_real(1.0 / norm);
            let amps: Vec<Complex64> = amps.iter().map(|a| *a * scale).collect();
            let g = gates::rot(0.8, -1.3, 0.4);
            for c in 0..nq {
                for t in 0..nq {
                    if c == t {
                        continue;
                    }
                    let mut fast = St::zero(nq);
                    fast.amps.copy_from_slice(&amps);
                    fast.apply_controlled_1q(c, t, &g);
                    // Naive reference: scan all indices, test bits.
                    let mut want = amps.clone();
                    let (cbit, tbit) = (1usize << c, 1usize << t);
                    for i0 in 0..want.len() {
                        if i0 & cbit != 0 && i0 & tbit == 0 {
                            let i1 = i0 | tbit;
                            let (a0, a1) = (want[i0], want[i1]);
                            want[i0] = g[0][0] * a0 + g[0][1] * a1;
                            want[i1] = g[1][0] * a0 + g[1][1] * a1;
                        }
                    }
                    for (got, w) in fast.amplitudes().iter().zip(&want) {
                        assert_eq!(got.re.to_bits(), w.re.to_bits(), "c={c} t={t}");
                        assert_eq!(got.im.to_bits(), w.im.to_bits(), "c={c} t={t}");
                    }
                    // CNOT against the same naive pattern.
                    let mut fast = St::zero(nq);
                    fast.amps.copy_from_slice(&amps);
                    fast.apply_cnot(c, t);
                    let mut want = amps.clone();
                    for i in 0..want.len() {
                        if i & cbit != 0 && i & tbit == 0 {
                            want.swap(i, i | tbit);
                        }
                    }
                    assert_eq!(fast.amps, want, "cnot c={c} t={t}");
                }
            }
            // all_expectations_z agrees bit-for-bit with per-qubit scans.
            let mut s = St::zero(nq);
            s.amps.copy_from_slice(&amps);
            let all = s.all_expectations_z();
            for (q, &e) in all.iter().enumerate() {
                assert_eq!(e.to_bits(), s.expectation_z(q).to_bits(), "qubit {q}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_apply_1q_matches_generic_bitwise() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let det = qpinn_tensor::simd::detected_width();
        if det < 4 {
            return; // no AVX fast path on this host; nothing to compare
        }
        let restore = qpinn_tensor::simd::width();
        let mut rng = StdRng::seed_from_u64(21);
        for nq in [2usize, 3, 5, 8] {
            let amps: Vec<Complex64> = (0..1usize << nq)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            for g in [
                gates::rot(0.8, -1.3, 0.4),
                gates::hadamard(),
                gates::ry(2.2),
                gates::rz(-0.7),
            ] {
                for t in 0..nq {
                    let mut fast = St::zero(nq);
                    fast.amps.copy_from_slice(&amps);
                    qpinn_tensor::simd::set_width(det);
                    fast.apply_1q(t, &g);
                    let mut want = St::zero(nq);
                    want.amps.copy_from_slice(&amps);
                    qpinn_tensor::simd::set_width(1);
                    want.apply_1q(t, &g);
                    for (got, w) in fast.amplitudes().iter().zip(want.amplitudes()) {
                        assert_eq!(got.re.to_bits(), w.re.to_bits(), "nq={nq} t={t}");
                        assert_eq!(got.im.to_bits(), w.im.to_bits(), "nq={nq} t={t}");
                    }
                }
            }
        }
        qpinn_tensor::simd::set_width(restore);
    }

    #[test]
    fn little_endian_indexing() {
        // Flip qubit 1 of |000⟩ → index 2.
        let mut s = St::zero(3);
        s.apply_1q(1, &gates::rx(std::f64::consts::PI));
        let p = s.probabilities();
        assert!((p[2] - 1.0).abs() < 1e-12);
    }
}
